//! End-to-end integration: reporters → simulated fabric → translator
//! (intercepting ToR) → RoCE → collector NIC → queryable stores.

use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_KW};
use dta::collector::{CollectorNode, QueryOutcome, QueryPolicy};
use dta::core::{DtaReport, TelemetryKey};
use dta::net::{FatTree, FaultConfig, FaultInjector, LinkConfig, Network, NodeId, Routing, SimTime};
use dta::rdma::cm::CmRequester;
use dta::reporter::reporter::Reporter;
use dta::reporter::ReporterConfig;
use dta::translator::{RateLimiterConfig, Translator, TranslatorConfig, TranslatorNode};

const COLLECTOR_IP: u32 = 0x0A00_0900;
const TRANSLATOR_IP: u32 = 0x0A00_0001;

/// Minimal line topology: reporter(0) -- translator(1) -- collector(2).
fn line_setup(
    svc: ServiceConfig,
    tr: TranslatorConfig,
    services: &[u16],
) -> (Network, Reporter) {
    let mut topo = dta::net::Topology::new(3);
    topo.connect(NodeId(0), NodeId(1));
    topo.connect(NodeId(1), NodeId(2));
    let mut net = Network::new(topo.shortest_path_routing());
    net.add_duplex_link(NodeId(0), NodeId(1), LinkConfig::dc_100g());
    net.add_duplex_link(NodeId(1), NodeId(2), LinkConfig::dc_100g());

    let mut service = CollectorService::new(svc);
    let mut translator = Translator::new(tr);
    for (i, &sid) in services.iter().enumerate() {
        let req = CmRequester::new(0x70 + i as u32, 0);
        let reply = service.handle_cm(&req.request(sid));
        let (qp, params) = req.complete(&reply).expect("service");
        match sid {
            SERVICE_KW => translator.connect_key_write(qp, params),
            SERVICE_APPEND => translator.connect_append(qp, params),
            s if s == dta::collector::SERVICE_POSTCARD => {
                translator.connect_postcarding(qp, params)
            }
            s if s == dta::collector::SERVICE_CMS => {
                translator.connect_key_increment(qp, params)
            }
            _ => unreachable!(),
        }
    }
    net.add_node(NodeId(2), Box::new(CollectorNode::new(service, NodeId(2), COLLECTOR_IP)));
    net.add_interceptor(
        NodeId(1),
        Box::new(TranslatorNode::new(translator, NodeId(1), TRANSLATOR_IP, NodeId(2), COLLECTOR_IP)),
    );
    let reporter = Reporter::new(ReporterConfig {
        my_id: NodeId(0),
        my_ip: 0x0A00_0002,
        collector_id: NodeId(2),
        collector_ip: COLLECTOR_IP,
        src_port: 4000,
    });
    (net, reporter)
}

fn take_collector(net: &mut Network) -> Box<CollectorNode> {
    let node: Box<dyn std::any::Any> = net.remove_node(NodeId(2)).expect("collector");
    node.downcast::<CollectorNode>().expect("collector type")
}

fn take_translator(net: &mut Network) -> Box<TranslatorNode> {
    let node: Box<dyn std::any::Any> = net.remove_node(NodeId(1)).expect("translator");
    node.downcast::<TranslatorNode>().expect("translator type")
}

#[test]
fn key_write_survives_the_network_path() {
    let (mut net, mut reporter) =
        line_setup(ServiceConfig::default(), TranslatorConfig::default(), &[SERVICE_KW]);
    for i in 0..100u64 {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![i as u8; 4]);
        let pkt = reporter.frame(&r);
        net.send_from(NodeId(0), pkt);
    }
    net.run_to_idle();
    let collector = take_collector(&mut net);
    let store = collector.service.keywrite.as_ref().unwrap();
    let mut found = 0;
    for i in 0..100u64 {
        if let QueryOutcome::Found(v) =
            store.query(&TelemetryKey::from_u64(i), 2, QueryPolicy::Plurality)
        {
            assert_eq!(v, vec![i as u8; 4]);
            found += 1;
        }
    }
    // 100 keys over 128K slots: losing any key is statistically impossible.
    assert_eq!(found, 100);
    // ACKs flowed back to the translator.
    assert_eq!(collector.stats.executed, 200);
}

#[test]
fn append_ordering_preserved_across_network() {
    let (mut net, mut reporter) = line_setup(
        ServiceConfig::default(),
        TranslatorConfig { append_batch: 4, ..TranslatorConfig::default() },
        &[SERVICE_APPEND],
    );
    for i in 0..64u32 {
        let pkt = reporter.frame(&DtaReport::append(i, 5, i.to_be_bytes().to_vec()));
        net.send_from(NodeId(0), pkt);
    }
    net.run_to_idle();
    let mut collector = take_collector(&mut net);
    let reader = collector.service.append.as_mut().unwrap();
    for i in 0..64u32 {
        assert_eq!(reader.poll(5), i.to_be_bytes().to_vec(), "entry {i} out of order");
    }
}

#[test]
fn report_loss_degrades_gracefully() {
    let (mut net, mut reporter) =
        line_setup(ServiceConfig::default(), TranslatorConfig::default(), &[SERVICE_KW]);
    // 30% loss between reporter and translator: DTA is best-effort.
    net.add_faults(NodeId(0), NodeId(1), FaultInjector::new(FaultConfig::lossy(0.3), 7));
    let n = 500u64;
    for i in 0..n {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![1; 4]);
        net.send_from(NodeId(0), reporter.frame(&r));
    }
    net.run_to_idle();
    let dropped = net.stats.dropped;
    assert!(dropped > 50, "fault injector should drop ~30%: {dropped}");
    let collector = take_collector(&mut net);
    let store = collector.service.keywrite.as_ref().unwrap();
    let found = (0..n)
        .filter(|i| {
            store
                .query(&TelemetryKey::from_u64(*i), 2, QueryPolicy::Plurality)
                .is_found()
        })
        .count() as u64;
    // Every delivered report must be queryable; every lost one must not.
    assert_eq!(found + dropped, n, "found {found} + dropped {dropped} != {n}");
}

#[test]
fn duplicated_key_write_reports_are_idempotent_at_the_collector() {
    // Duplicate delivery on the report hop: the translator translates the
    // same Key-Write twice, producing two RDMA writes of the same image to
    // the same slots — last-writer-wins makes the duplicate a no-op. This
    // is the RoCE-retransmit-shaped fault the primitives must absorb.
    let (mut net, mut reporter) =
        line_setup(ServiceConfig::default(), TranslatorConfig::default(), &[SERVICE_KW]);
    net.add_faults(
        NodeId(0),
        NodeId(1),
        FaultInjector::new(
            FaultConfig { duplicate_chance: 1.0, ..FaultConfig::none() },
            21,
        ),
    );
    let n = 50u64;
    for i in 0..n {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![i as u8; 4]);
        net.send_from(NodeId(0), reporter.frame(&r));
    }
    net.run_to_idle();
    let translator = take_translator(&mut net);
    assert_eq!(translator.translator.stats.reports_in, 2 * n, "every report seen twice");
    let collector = take_collector(&mut net);
    // 2 writes per copy, 2 copies per report — and every key still reads
    // back exactly its own value.
    assert_eq!(collector.stats.executed, 4 * n);
    let store = collector.service.keywrite.as_ref().unwrap();
    for i in 0..n {
        assert_eq!(
            store.query(&TelemetryKey::from_u64(i), 2, QueryPolicy::Plurality),
            QueryOutcome::Found(vec![i as u8; 4]),
            "key {i} corrupted by duplicate delivery"
        );
    }
}

#[test]
fn duplicated_roce_packets_are_dropped_by_psn_discipline() {
    // Duplicate delivery on the RDMA hop: the copy arrives with an
    // already-consumed PSN and the collector NIC silently drops it —
    // memory is written exactly once per report.
    let (mut net, mut reporter) =
        line_setup(ServiceConfig::default(), TranslatorConfig::default(), &[SERVICE_KW]);
    net.add_faults(
        NodeId(1),
        NodeId(2),
        FaultInjector::new(
            FaultConfig { duplicate_chance: 1.0, ..FaultConfig::none() },
            22,
        ),
    );
    let n = 50u64;
    for i in 0..n {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![7; 4]);
        net.send_from(NodeId(0), reporter.frame(&r));
        net.run_to_idle();
    }
    let collector = take_collector(&mut net);
    assert_eq!(collector.stats.executed, 2 * n, "each write executes once");
    assert_eq!(collector.stats.dropped, 2 * n, "each duplicate PSN-drops");
    let store = collector.service.keywrite.as_ref().unwrap();
    for i in 0..n {
        assert_eq!(
            store.query(&TelemetryKey::from_u64(i), 2, QueryPolicy::Plurality),
            QueryOutcome::Found(vec![7; 4]),
            "key {i}"
        );
    }
}

#[test]
fn corrupted_roce_packets_are_rejected_by_icrc() {
    let (mut net, mut reporter) =
        line_setup(ServiceConfig::default(), TranslatorConfig::default(), &[SERVICE_KW]);
    // Corruption on the translator->collector RDMA hop.
    net.add_faults(
        NodeId(1),
        NodeId(2),
        FaultInjector::new(
            FaultConfig { corrupt_chance: 0.5, ..FaultConfig::none() },
            3,
        ),
    );
    // Send sequentially so NAK-driven resynchronization can keep the PSN
    // stream alive between reports (steady-state traffic, not one burst).
    for i in 0..200u64 {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 1, vec![2; 4]);
        net.send_from(NodeId(0), reporter.frame(&r));
        net.run_to_idle();
    }
    let collector = take_collector(&mut net);
    // A corrupted packet is dropped (ICRC / IPv4 checksum), and the packet
    // after it is NAKed; with 50% corruption roughly a third execute. What
    // must never happen is silent mis-execution of corrupt bytes.
    let executed = collector.stats.executed;
    assert!(executed > 30 && executed < 180, "executed {executed}");
    assert!(collector.stats.dropped > 0, "corrupted packets must be dropped");
}

#[test]
fn nak_resynchronizes_translator_after_rdma_loss() {
    let (mut net, mut reporter) =
        line_setup(ServiceConfig::default(), TranslatorConfig::default(), &[SERVICE_KW]);
    // Loss on the RDMA hop creates PSN gaps at the collector. Reports flow
    // one at a time so NAKs can resynchronize between them.
    net.add_faults(NodeId(1), NodeId(2), FaultInjector::new(FaultConfig::lossy(0.2), 11));
    for i in 0..300u64 {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 1, vec![3; 4]);
        net.send_from(NodeId(0), reporter.frame(&r));
        net.run_to_idle();
    }
    let translator = take_translator(&mut net);
    let collector = take_collector(&mut net);
    assert!(collector.stats.naks > 0, "PSN gaps must trigger NAKs");
    assert!(
        translator.translator.stats.resyncs > 0,
        "translator must resync after NAKs"
    );
    // Post-resync traffic keeps executing: most packets landed.
    assert!(collector.stats.executed > 150);
}

#[test]
fn rate_limited_translator_nacks_reporters() {
    let (mut net, mut reporter) = line_setup(
        ServiceConfig::default(),
        TranslatorConfig {
            rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst: 10 }),
            ..TranslatorConfig::default()
        },
        &[SERVICE_KW],
    );
    for i in 0..50u64 {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 1, vec![4; 4])
            .with_flags(dta::core::DtaFlags { immediate: false, nack_on_drop: true });
        net.send_from(NodeId(0), reporter.frame(&r));
    }
    net.run_to_idle();
    let translator = take_translator(&mut net);
    assert_eq!(translator.translator.stats.rate_limited, 40);
    assert_eq!(translator.translator.stats.nacks_sent, 40);
    // NACKs travelled back to the reporter node (delivered to node 0).
    assert!(net.stats.delivered >= 40);
}

#[test]
fn fat_tree_reporters_from_every_pod_reach_the_collector() {
    let ft = FatTree::new(4);
    let collector_host = ft.host(0, 0, 0);
    let tor = ft.edge(0, 0);
    let mut net = Network::new(ft.topology.shortest_path_routing());
    for (a, b) in ft.topology.edges() {
        net.add_duplex_link(a, b, LinkConfig::dc_100g());
    }
    let mut service = CollectorService::new(ServiceConfig::default());
    let mut translator = Translator::new(TranslatorConfig::default());
    let req = CmRequester::new(1, 0);
    let reply = service.handle_cm(&req.request(SERVICE_KW));
    let (qp, params) = req.complete(&reply).unwrap();
    translator.connect_key_write(qp, params);
    net.add_node(collector_host, Box::new(CollectorNode::new(service, collector_host, COLLECTOR_IP)));
    net.add_interceptor(
        tor,
        Box::new(TranslatorNode::new(translator, tor, TRANSLATOR_IP, collector_host, COLLECTOR_IP)),
    );

    let mut key_id = 0u64;
    for pod in 0..4 {
        for e in 0..2 {
            let sw = ft.edge(pod, e);
            if sw == tor {
                continue;
            }
            let mut rep = Reporter::new(ReporterConfig {
                my_id: sw,
                my_ip: 0x0A02_0000 + sw.0,
                collector_id: collector_host,
                collector_ip: COLLECTOR_IP,
                src_port: 6000,
            });
            for _ in 0..10 {
                let r = DtaReport::key_write(0, TelemetryKey::from_u64(key_id), 2, vec![9; 4]);
                net.send_from(sw, rep.frame(&r));
                key_id += 1;
            }
        }
    }
    net.run_until(SimTime::from_millis(10));
    let node: Box<dyn std::any::Any> = net.remove_node(collector_host).unwrap();
    let collector = node.downcast::<CollectorNode>().unwrap();
    let store = collector.service.keywrite.as_ref().unwrap();
    for i in 0..key_id {
        assert!(
            store.query(&TelemetryKey::from_u64(i), 2, QueryPolicy::Plurality).is_found(),
            "key {i} from a remote pod missing"
        );
    }
}

#[test]
fn full_mesh_routing_works_for_harness_setups() {
    // Sanity for Routing::full_mesh used by micro-harnesses.
    let r = Routing::full_mesh(3);
    assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(2)));
}

//! Integration tests for the §7 extensions: multi-collector partitioning,
//! PFC lossless transport, the query-enhancing translator, and trajectory
//! sampling.

use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_KW};
use dta::collector::QueryPolicy;
use dta::core::{DtaReport, TelemetryKey};
use dta::net::{Link, LinkConfig, SimTime};
use dta::rdma::cm::CmRequester;
use dta::telemetry::trajectory::TrajectorySampling;
use dta::telemetry::traces::{TraceConfig, TraceGenerator};
use dta::translator::{LatencySumQuery, Partitioner, Translator, TranslatorConfig};

/// Connect a translator to one collector's KW service.
fn kw_pair() -> (CollectorService, Translator) {
    let mut c = CollectorService::new(ServiceConfig::default());
    let mut t = Translator::new(TranslatorConfig::default());
    let req = CmRequester::new(0x61, 0);
    let reply = c.handle_cm(&req.request(SERVICE_KW));
    let (qp, params) = req.complete(&reply).unwrap();
    t.connect_key_write(qp, params);
    (c, t)
}

#[test]
fn multi_collector_partitioning_shards_and_colocates() {
    // Two collectors, each with its own translator path; the partitioner
    // routes each report by key hash (§7: "Supporting Multiple Collectors").
    let mut shards: Vec<(CollectorService, Translator)> = (0..2).map(|_| kw_pair()).collect();
    let partitioner = Partitioner::new(2);

    let n = 400u64;
    for i in 0..n {
        let report = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![i as u8; 4]);
        let shard = partitioner.route(&report) as usize;
        let (c, t) = &mut shards[shard];
        for pkt in t.process(0, &report).packets {
            c.nic_ingress(&pkt);
        }
    }
    // Every key must be queryable on exactly the shard the partitioner
    // names — and absent from the other.
    for i in 0..n {
        let key = TelemetryKey::from_u64(i);
        let report = DtaReport::key_write(0, key, 2, vec![0; 4]);
        let home = partitioner.route(&report) as usize;
        let other = 1 - home;
        let home_store = shards[home].0.keywrite.as_ref().unwrap();
        assert!(
            home_store.query(&key, 2, QueryPolicy::Plurality).is_found(),
            "key {i} missing from its home shard"
        );
        let other_store = shards[other].0.keywrite.as_ref().unwrap();
        assert!(
            !other_store.query(&key, 2, QueryPolicy::Plurality).is_found(),
            "key {i} leaked to the wrong shard"
        );
    }
    // Both shards got meaningful load.
    let i0 = shards[0].0.memory_instructions();
    let i1 = shards[1].0.memory_instructions();
    assert!(i0 > 100 && i1 > 100, "imbalanced shards: {i0} vs {i1}");
}

#[test]
fn pfc_lossless_link_absorbs_burst_without_drops() {
    // §7 "Flow Control in DTA": with PFC, a burst that would overflow a
    // lossy queue is paused instead of dropped.
    let mut lossy = Link::new(LinkConfig {
        queue_bytes: 16 * 1024,
        ..LinkConfig::dc_100g()
    });
    let mut lossless = Link::new(LinkConfig {
        queue_bytes: 16 * 1024,
        ..LinkConfig::dc_100g_lossless()
    });
    let mut lossy_drops = 0;
    let mut lossless_drops = 0;
    for _ in 0..2000 {
        if matches!(
            lossy.enqueue(SimTime::ZERO, 1500),
            dta::net::link::EnqueueOutcome::Dropped
        ) {
            lossy_drops += 1;
        }
        if matches!(
            lossless.enqueue(SimTime::ZERO, 1500),
            dta::net::link::EnqueueOutcome::Dropped
        ) {
            lossless_drops += 1;
        }
    }
    assert!(lossy_drops > 0, "lossy link must tail-drop the burst");
    assert_eq!(lossless_drops, 0, "PFC link must never drop");
    assert!(lossless.is_paused(), "PFC must be asserting pause");
    assert!(lossless.stats.pauses > 0);
}

#[test]
fn latency_sum_query_reports_through_append() {
    // The standing query's alert reports flow through the normal Append
    // path to the collector.
    let mut c = CollectorService::new(ServiceConfig::default());
    let mut t = Translator::new(TranslatorConfig { append_batch: 1, ..TranslatorConfig::default() });
    let req = CmRequester::new(0x62, 0);
    let reply = c.handle_cm(&req.request(SERVICE_APPEND));
    let (qp, params) = req.complete(&reply).unwrap();
    t.connect_append(qp, params);

    let mut query = LatencySumQuery::new(1_000, 5, 7);
    let slow_flow = TelemetryKey::from_u64(500);
    let fast_flow = TelemetryKey::from_u64(501);
    for hop in 0..5u8 {
        // Slow flow: 300ns per hop -> 1500 > 1000. Fast flow: 100ns -> 500.
        if let Some((m, report)) = query.on_postcard(&slow_flow, hop, 5, 300) {
            assert_eq!(m.total, 1500);
            for pkt in t.process(0, &report).packets {
                c.nic_ingress(&pkt);
            }
        }
        assert!(query.on_postcard(&fast_flow, hop, 5, 100).is_none() || hop < 4);
    }
    assert_eq!(query.matched, 1);
    // The alert landed in list 7: flow key + total.
    let reader = c.append.as_mut().unwrap();
    let entry = reader.poll(7);
    assert_eq!(&entry[..4], &slow_flow.as_bytes()[..4]);
}

#[test]
fn trajectory_sampling_reconstructs_labels_via_postcarding() {
    use dta::collector::service::SERVICE_POSTCARD;
    use dta::collector::PostcardQueryOutcome;

    let mut c = CollectorService::new(ServiceConfig {
        postcard_values: 1 << 12,
        ..ServiceConfig::default()
    });
    let mut t = Translator::new(TranslatorConfig::default());
    let req = CmRequester::new(0x63, 0);
    let reply = c.handle_cm(&req.request(SERVICE_POSTCARD));
    let (qp, params) = req.complete(&reply).unwrap();
    t.connect_postcarding(qp, params);

    let mut ts = TrajectorySampling::new(0.02, 5, 1 << 12);
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut sampled_keys = Vec::new();
    for _ in 0..20_000 {
        let pkt = gen.next_packet();
        let reports = ts.on_packet(&pkt);
        if !reports.is_empty() {
            if let dta::core::PrimitiveHeader::Postcarding(h) = reports[0].primitive {
                if sampled_keys.len() < 20 && !sampled_keys.iter().any(|(k, _)| *k == h.key) {
                    sampled_keys.push((h.key, ts.label(&pkt)));
                }
            }
        }
        for r in reports {
            for pkt in t.process(0, &r).packets {
                c.nic_ingress(&pkt);
            }
        }
    }
    assert!(ts.sampled > 50, "sampler too quiet: {}", ts.sampled);
    // Each sampled packet's label is recoverable from every hop.
    let store = c.postcarding.as_ref().unwrap();
    let mut verified = 0;
    for (key, label) in &sampled_keys {
        if let PostcardQueryOutcome::Found(path) = store.query(key, 1) {
            assert!(path.iter().all(|v| v == label), "label mismatch on a hop");
            verified += 1;
        }
    }
    assert!(verified >= sampled_keys.len() / 2, "too few trajectories retrievable");
}

#[test]
fn push_notifications_deliver_immediates_in_order() {
    let (mut c, mut t) = kw_pair();
    for i in 0..5u32 {
        let r = DtaReport::key_write(i, TelemetryKey::from_u64(i as u64), 1, vec![0; 4])
            .with_flags(dta::core::DtaFlags { immediate: true, nack_on_drop: false });
        for pkt in t.process(0, &r).packets {
            c.nic_ingress(&pkt);
        }
    }
    let imms: Vec<u32> = std::iter::from_fn(|| c.nic.poll_completion())
        .map(|wc| wc.imm.expect("immediate set"))
        .collect();
    assert_eq!(imms, vec![0, 1, 2, 3, 4]);
}

#[test]
fn over_mtu_append_batches_segment_and_reassemble() {
    use dta::collector::service::SERVICE_APPEND;
    // 64 entries of 64B = 4KiB batches, far over the 1KiB MTU.
    let mut c = CollectorService::new(ServiceConfig {
        append_lists: 2,
        append_entries: 1 << 12,
        append_entry_bytes: 64,
        ..ServiceConfig::default()
    });
    let mut t = Translator::new(TranslatorConfig {
        append_batch: 64,
        ..TranslatorConfig::default()
    });
    let req = CmRequester::new(0x64, 0);
    let reply = c.handle_cm(&req.request(SERVICE_APPEND));
    let (qp, params) = req.complete(&reply).unwrap();
    t.connect_append(qp, params);

    let mut packets_out = 0;
    for i in 0..64u32 {
        let mut entry = vec![0u8; 64];
        entry[..4].copy_from_slice(&i.to_be_bytes());
        let out = t.process(0, &DtaReport::append(i, 0, entry));
        for pkt in &out.packets {
            assert!(matches!(
                c.nic_ingress(pkt),
                dta::rdma::nic::RxOutcome::Executed(_)
            ));
        }
        packets_out += out.packets.len();
    }
    // One 4KiB batch at MTU 1024 = 4 segments.
    assert_eq!(packets_out, 4, "expected a segmented 4-packet write");
    let reader = c.append.as_mut().unwrap();
    for i in 0..64u32 {
        let entry = reader.poll(0);
        assert_eq!(&entry[..4], &i.to_be_bytes(), "entry {i} corrupted");
    }
}

//! Property-based tests over the core invariants (proptest).

use bytes::Bytes;
use dta::collector::layout::{AppendLayout, CmsLayout, KwLayout, PostcardLayout};
use dta::collector::append::DirectAppender;
use dta::collector::{
    AppendReader, KeyIncrementStore, KeyWriteStore, PostcardQueryOutcome, PostcardStore,
    QueryOutcome, QueryPolicy, ValueCodec,
};
use dta::core::framing::UdpPacket;
use dta::core::{DtaReport, FlowTuple, TelemetryKey};
use dta::rdma::mr::{MemoryRegion, MrAccess};
use dta::rdma::packet::{Reth, RocePacket};
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FlowTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()).prop_map(
        |(s, d, sp, dp, proto)| FlowTuple {
            src_ip: s,
            dst_ip: d,
            src_port: sp,
            dst_port: dp,
            proto,
        },
    )
}

fn arb_key() -> impl Strategy<Value = TelemetryKey> {
    prop_oneof![
        any::<u64>().prop_map(TelemetryKey::from_u64),
        arb_flow().prop_map(|f| TelemetryKey::flow(&f)),
        any::<u32>().prop_map(TelemetryKey::src_ip),
    ]
}

proptest! {
    #[test]
    fn flow_tuple_roundtrips(f in arb_flow()) {
        prop_assert_eq!(FlowTuple::decode(&f.encode()), f);
    }

    #[test]
    fn dta_report_wire_roundtrips(
        key in arb_key(),
        redundancy in 1u8..=8,
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..=64),
    ) {
        let r = DtaReport::key_write(seq, key, redundancy, payload);
        let wire = r.encode().unwrap();
        prop_assert_eq!(DtaReport::decode(wire).unwrap(), r);
    }

    #[test]
    fn append_report_roundtrips(
        list in any::<u32>(),
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..=64),
    ) {
        let r = DtaReport::append(seq, list, payload);
        prop_assert_eq!(DtaReport::decode(r.encode().unwrap()).unwrap(), r);
    }

    #[test]
    fn roce_write_roundtrips(
        va in any::<u64>(),
        rkey in any::<u32>(),
        dest_qp in 0u32..=0xFF_FFFF,
        psn in 0u32..=0xFF_FFFF,
        payload in proptest::collection::vec(any::<u8>(), 0..=256),
    ) {
        let p = RocePacket::write(
            dest_qp,
            psn,
            Reth { va, rkey, dma_len: payload.len() as u32 },
            Bytes::from(payload),
        );
        prop_assert_eq!(RocePacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn udp_framing_roundtrips(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..=512),
    ) {
        let p = UdpPacket::frame(src, sport, dst, dport, Bytes::from(payload));
        prop_assert_eq!(UdpPacket::decode(p.encode()).unwrap(), p);
    }

    /// Serialize -> parse -> re-serialize is bit-exact, ICRC trailer
    /// included, and the parse is zero-copy: the decoded payload borrows
    /// the wire buffer rather than copying out of it.
    #[test]
    fn roce_serialize_parse_roundtrips_bit_exactly(
        va in any::<u64>(),
        rkey in any::<u32>(),
        dest_qp in 0u32..=0xFF_FFFF,
        psn in 0u32..=0xFF_FFFF,
        imm in any::<u32>(),
        solicited_imm in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 1..=256),
    ) {
        let reth = Reth { va, rkey, dma_len: payload.len() as u32 };
        let p = if solicited_imm {
            RocePacket::write_imm(dest_qp, psn, reth, imm, Bytes::from(payload))
        } else {
            RocePacket::write(dest_qp, psn, reth, Bytes::from(payload))
        };
        let wire = p.encode();
        let parsed = RocePacket::decode(wire.clone()).unwrap();
        // Bit-exact re-encode (covers every header field and the ICRC).
        let rewire = parsed.encode();
        prop_assert_eq!(&wire[..], &rewire[..]);
        // Zero-copy parse: the payload view points into the wire buffer.
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        prop_assert!(
            wire_range.contains(&(parsed.payload.as_ptr() as usize)),
            "decoded payload was copied out of the wire buffer"
        );
    }

    #[test]
    fn corrupting_any_roce_byte_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..=64),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let p = RocePacket::write(
            1, 2,
            Reth { va: 0x1000, rkey: 7, dma_len: payload.len() as u32 },
            Bytes::from(payload),
        );
        let wire = p.encode();
        let idx = byte_idx.index(wire.len());
        let mut corrupted = wire.to_vec();
        corrupted[idx] ^= 1 << bit;
        // Either the ICRC rejects it, or decode structurally fails; it must
        // never decode into the original packet unchanged.
        if let Ok(decoded) = RocePacket::decode(Bytes::from(corrupted)) { prop_assert_ne!(decoded, p) }
    }

    #[test]
    fn kw_store_reads_back_what_it_wrote(
        keys in proptest::collection::hash_set(any::<u64>(), 1..=40),
        redundancy in 1usize..=4,
    ) {
        let layout = KwLayout { base_va: 0, slots: 1 << 14, value_bytes: 8 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let store = KeyWriteStore::new(layout, region, 4);
        let keys: Vec<u64> = keys.into_iter().collect();
        for &k in &keys {
            store.insert_direct(&TelemetryKey::from_u64(k), &k.to_be_bytes(), redundancy);
        }
        // The store may lose a key whose every slot was overwritten by a
        // later key (that is its probabilistic contract), but it must never
        // return a *wrong* value — the 32-bit checksum guards that.
        let mut found = 0usize;
        for &k in &keys {
            match store.query(&TelemetryKey::from_u64(k), redundancy, QueryPolicy::Plurality) {
                QueryOutcome::Found(v) => {
                    prop_assert_eq!(v, k.to_be_bytes().to_vec(), "wrong value for key {}", k);
                    found += 1;
                }
                QueryOutcome::NotFound | QueryOutcome::Ambiguous => {}
            }
        }
        // At <=0.25% load, losing more than a couple of keys would mean the
        // slot addressing is broken rather than unlucky.
        prop_assert!(keys.len() - found <= 2, "lost {} of {} keys", keys.len() - found, keys.len());
    }

    #[test]
    fn postcard_store_roundtrips_any_path(
        key in any::<u64>(),
        path in proptest::collection::vec(0u32..(1 << 12), 0..=5),
    ) {
        let layout = PostcardLayout { base_va: 0, chunks: 1 << 10, hops: 5, slot_bits: 32 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let store = PostcardStore::new(layout, region, ValueCodec::switch_ids(1 << 12, 32), 2);
        let k = TelemetryKey::from_u64(key);
        store.insert_direct(&k, &path, 2);
        prop_assert_eq!(store.query(&k, 2), PostcardQueryOutcome::Found(path));
    }

    #[test]
    fn append_is_fifo_for_any_entry_sequence(
        entries in proptest::collection::vec(any::<u32>(), 1..=64),
    ) {
        let layout = AppendLayout { base_va: 0, lists: 1, entries_per_list: 128, entry_bytes: 4 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let mut writer = DirectAppender::new(layout, region.clone());
        let mut reader = AppendReader::new(layout, region);
        for e in &entries {
            writer.append(0, &e.to_be_bytes());
        }
        for e in &entries {
            prop_assert_eq!(reader.poll(0), e.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn count_min_never_underestimates(
        increments in proptest::collection::vec((0u64..32, 1u64..100), 1..=100),
    ) {
        let layout = CmsLayout { base_va: 0, slots: 64 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::ATOMIC);
        let store = KeyIncrementStore::new(layout, region, 2);
        let mut truth = std::collections::HashMap::new();
        for (key, delta) in &increments {
            store.increment_direct(&TelemetryKey::from_u64(*key), *delta, 2);
            *truth.entry(*key).or_insert(0u64) += delta;
        }
        for (key, total) in truth {
            prop_assert!(store.query(&TelemetryKey::from_u64(key), 2) >= total);
        }
    }

    #[test]
    fn kw_bounds_monotone_in_alpha(
        n in 1u32..=8,
        a in 0.0f64..2.0,
        b in 0.0f64..2.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let e_lo = dta::analysis::kw_empty_return_bound(n, 32, lo);
        let e_hi = dta::analysis::kw_empty_return_bound(n, 32, hi);
        prop_assert!(e_lo <= e_hi + 1e-12, "empty bound not monotone: {} > {}", e_lo, e_hi);
    }

    #[test]
    fn slot_addresses_always_in_region(
        key in arb_key(),
        slots in 1u64..(1 << 20),
        n in 1usize..=8,
    ) {
        let fam = dta::hash::HashFamily::new(8);
        let layout = KwLayout { base_va: 0x5000, slots, value_bytes: 4 };
        let va = layout.slot_va(&fam, n - 1, &key);
        prop_assert!(va >= layout.base_va);
        prop_assert!(va + 8 <= layout.base_va + layout.region_len());
    }
}

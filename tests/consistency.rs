//! Cross-validation: the byte-level stores, the abstract Monte-Carlo
//! simulators, and the closed-form bounds must all tell the same story.

use dta::analysis::keywrite::kw_success_rate;
use dta::analysis::montecarlo::simulate_keywrite;
use dta::collector::layout::KwLayout;
use dta::collector::{KeyWriteStore, QueryPolicy};
use dta::core::TelemetryKey;
use dta::rdma::mr::{MemoryRegion, MrAccess};

/// Scramble an index into a pseudo-random key id (splitmix64). Sequential
/// ids are adversarial for CRC-based slot indexing at power-of-two table
/// sizes (CRC is linear, so the low-bit projections of consecutive ids can
/// collapse into a small subspace); real telemetry keys are flow tuples
/// without that structure, which the scramble emulates.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Empirical success rate of the real byte-level store at load `alpha`.
fn byte_level_success(slots: u64, n: usize, alpha: f64, victims: u64, seed: u64) -> f64 {
    let layout = KwLayout { base_va: 0, slots, value_bytes: 4 };
    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
    let store = KeyWriteStore::new(layout, region, 8);
    // Write `victims` victim keys, then `alpha * slots` fresh keys.
    for v in 0..victims {
        store.insert_direct(&TelemetryKey::from_u64(scramble(v)), &[0xAA; 4], n);
    }
    let others = (alpha * slots as f64) as u64;
    for i in 0..others {
        store.insert_direct(
            &TelemetryKey::from_u64(scramble((1 << 40) + seed * (1 << 32) + i)),
            &[0x55; 4],
            n,
        );
    }
    let mut found = 0u64;
    for v in 0..victims {
        if let dta::collector::QueryOutcome::Found(val) =
            store.query(&TelemetryKey::from_u64(scramble(v)), n, QueryPolicy::Plurality)
        {
            assert_eq!(val, vec![0xAA; 4], "byte-level store returned a wrong value");
            found += 1;
        }
    }
    found as f64 / victims as f64
}

#[test]
fn byte_level_matches_monte_carlo_and_bound() {
    // Moderate load, N=2: all three estimates of the success rate must
    // agree within Monte-Carlo noise.
    let alpha = 0.2;
    let slots = 1 << 13;
    let real = byte_level_success(slots, 2, alpha, 800, 1);
    let mc = simulate_keywrite(slots, 2, 32, alpha, 1_500, 2).success_rate();
    let bound = kw_success_rate(2, 32, alpha);
    assert!(
        (real - mc).abs() < 0.06,
        "byte-level {real:.3} vs Monte-Carlo {mc:.3}"
    );
    assert!(
        (real - bound).abs() < 0.08,
        "byte-level {real:.3} vs analytic {bound:.3}"
    );
}

#[test]
fn byte_level_redundancy_ordering_matches_theory() {
    // At α = 0.1 theory says success(N=4) > success(N=2) > success(N=1).
    let alpha = 0.1;
    let slots = 1 << 13;
    let s1 = byte_level_success(slots, 1, alpha, 600, 10);
    let s2 = byte_level_success(slots, 2, alpha, 600, 11);
    let s4 = byte_level_success(slots, 4, alpha, 600, 12);
    assert!(s2 > s1 - 0.02, "N=2 {s2:.3} should beat N=1 {s1:.3}");
    assert!(s4 > s2 - 0.02, "N=4 {s4:.3} should beat N=2 {s2:.3}");
    assert!(s4 > 0.95, "N=4 at α=0.1 should be near-perfect: {s4:.3}");
}

#[test]
fn byte_level_tracks_figure12_curve() {
    // Sweep α and compare against the closed-form success curve for N=2.
    let slots = 1 << 12;
    for alpha in [0.1, 0.4, 0.8] {
        let real = byte_level_success(slots, 2, alpha, 400, 42);
        let bound = kw_success_rate(2, 32, alpha);
        assert!(
            (real - bound).abs() < 0.12,
            "α={alpha}: byte-level {real:.3} vs analytic {bound:.3}"
        );
    }
}

#[test]
fn stress_all_primitives_counter_consistency() {
    use dta::collector::service::{
        CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW,
        SERVICE_POSTCARD,
    };
    use dta::core::DtaReport;
    use dta::rdma::cm::CmRequester;
    use dta::translator::{Translator, TranslatorConfig};

    let mut c = CollectorService::new(ServiceConfig::default());
    let mut t = Translator::new(TranslatorConfig {
        append_batch: 16,
        postcard_redundancy: 2,
        ..TranslatorConfig::default()
    });
    for (sid, qpn) in [
        (SERVICE_KW, 1u32),
        (SERVICE_POSTCARD, 2),
        (SERVICE_APPEND, 3),
        (SERVICE_CMS, 4),
    ] {
        let req = CmRequester::new(qpn, 0);
        let reply = c.handle_cm(&req.request(sid));
        let (qp, params) = req.complete(&reply).unwrap();
        match sid {
            SERVICE_KW => t.connect_key_write(qp, params),
            SERVICE_POSTCARD => t.connect_postcarding(qp, params),
            SERVICE_APPEND => t.connect_append(qp, params),
            SERVICE_CMS => t.connect_key_increment(qp, params),
            _ => unreachable!(),
        }
    }

    // 40K mixed reports.
    let per_kind = 10_000u64;
    for i in 0..per_kind {
        let key = TelemetryKey::from_u64(i);
        for pkt in t.process(0, &DtaReport::key_write(0, key, 2, vec![1; 4])).packets {
            c.nic_ingress(&pkt);
        }
        for pkt in t
            .process(0, &DtaReport::postcard(0, key, (i % 5) as u8, 5, 7))
            .packets
        {
            c.nic_ingress(&pkt);
        }
        for pkt in t
            .process(0, &DtaReport::append(0, (i % 16) as u32, (i as u32).to_be_bytes().to_vec()))
            .packets
        {
            c.nic_ingress(&pkt);
        }
        for pkt in t.process(0, &DtaReport::key_increment(0, key, 2, 1)).packets {
            c.nic_ingress(&pkt);
        }
    }
    // Counter consistency: every RDMA message the translator emitted was
    // executed by the NIC (no loss in this run), and memory instructions
    // equal executed verbs.
    assert_eq!(t.stats.reports_in, 4 * per_kind);
    assert_eq!(c.nic.stats.executed, t.stats.rdma_out);
    assert_eq!(c.memory_instructions(), c.nic.stats.executed);
    assert_eq!(c.nic.stats.errors, 0);
    assert_eq!(c.nic.stats.naks, 0);

    // Expected message counts: KW = 2/report; postcards aggregate 5→2
    // (N=2, only when a flow completes all 5 hops — here each key sends one
    // hop, so flows complete every 5 keys... count via cache stats instead);
    // Append = 1/16 reports; KI = 2/report.
    let kw_msgs = 2 * per_kind;
    let ki_msgs = 2 * per_kind;
    // 10K appends round-robin over 16 lists = 625 per list = 39 full
    // batches of 16 each, with one entry left staged per list.
    let append_msgs = (per_kind / 16 / 16) * 16;
    let pc_msgs = 2 * (t.postcard_cache().stats.complete_emissions
        + t.postcard_cache().stats.early_emissions);
    assert_eq!(t.stats.rdma_out, kw_msgs + ki_msgs + append_msgs + pc_msgs);
}

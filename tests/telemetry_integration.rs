//! Table 2 coverage: every monitoring-system integration drives its mapped
//! primitive end to end (generator → translator → collector → query).

use dta::collector::service::{
    CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta::collector::{PostcardQueryOutcome, QueryOutcome, QueryPolicy};
use dta::core::{DtaOpcode, DtaReport, TelemetryKey};
use dta::rdma::cm::CmRequester;
use dta::telemetry::dshark::DsharkParser;
use dta::telemetry::int::{synthetic_path, IntCongestionEvents, IntPathTracing, IntPostcards};
use dta::telemetry::marple::{
    MarpleFlowletSizes, MarpleHostCounters, MarpleLossyFlows, MarpleTcpTimeouts,
};
use dta::telemetry::netseer::NetSeer;
use dta::telemetry::packetscope::PacketScope;
use dta::telemetry::pint::Pint;
use dta::telemetry::sonata::{SonataQuery, SonataRawTransfer};
use dta::telemetry::traces::{TraceConfig, TraceGenerator};
use dta::telemetry::turboflow::TurboFlow;
use dta::telemetry::TABLE2_INTEGRATIONS;
use dta::translator::{Translator, TranslatorConfig};

/// Fully-connected pair for integration runs.
fn pair() -> (CollectorService, Translator) {
    let mut collector = CollectorService::new(ServiceConfig {
        append_entry_bytes: 20, // large enough for every Table 2 event
        ..ServiceConfig::default()
    });
    let mut translator = Translator::new(TranslatorConfig {
        append_batch: 4,
        ..TranslatorConfig::default()
    });
    for (service, qpn) in [
        (SERVICE_KW, 0x51),
        (SERVICE_POSTCARD, 0x52),
        (SERVICE_APPEND, 0x53),
        (SERVICE_CMS, 0x54),
    ] {
        let req = CmRequester::new(qpn, 0);
        let reply = collector.handle_cm(&req.request(service));
        let (qp, params) = req.complete(&reply).unwrap();
        match service {
            SERVICE_KW => translator.connect_key_write(qp, params),
            SERVICE_POSTCARD => translator.connect_postcarding(qp, params),
            SERVICE_APPEND => translator.connect_append(qp, params),
            SERVICE_CMS => translator.connect_key_increment(qp, params),
            _ => unreachable!(),
        }
    }
    (collector, translator)
}

fn run(c: &mut CollectorService, t: &mut Translator, r: &DtaReport) {
    for pkt in t.process(0, r).packets {
        assert!(
            matches!(c.nic_ingress(&pkt), dta::rdma::nic::RxOutcome::Executed(_)),
            "collector rejected a translated packet"
        );
    }
}

#[test]
fn int_md_path_tracing_via_key_write() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut int = IntPathTracing::new(5, 1 << 12, 2);
    let pkt = gen.next_packet();
    let report = int.on_packet(&pkt);
    assert_eq!(report.header.opcode, DtaOpcode::KeyWrite);
    run(&mut c, &mut t, &report);
    // The paper's KW store is sized for 4B values by default; for 20B paths
    // the harness uses a 20B store — here we verify the first 4 bytes land.
    let kw = c.keywrite.as_ref().unwrap();
    let got = kw.query(&TelemetryKey::flow(&pkt.flow), 2, QueryPolicy::Plurality);
    let truth = synthetic_path(&pkt.flow, 5, 1 << 12);
    match got {
        QueryOutcome::Found(v) => {
            assert_eq!(&v[..4], &truth[0].to_be_bytes(), "first hop mismatch");
        }
        other => panic!("path not stored: {other:?}"),
    }
}

#[test]
fn int_xd_postcards_via_postcarding() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut int = IntPostcards::new(1.0, 5, 1 << 12, 5);
    let pkt = gen.next_packet();
    for report in int.on_packet(&pkt) {
        assert_eq!(report.header.opcode, DtaOpcode::Postcarding);
        run(&mut c, &mut t, &report);
    }
    let store = c.postcarding.as_ref().unwrap();
    assert_eq!(
        store.query(&TelemetryKey::flow(&pkt.flow), 1),
        PostcardQueryOutcome::Found(synthetic_path(&pkt.flow, 5, 1 << 12))
    );
}

#[test]
fn int_congestion_events_via_append() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut events = IntCongestionEvents::new(5_000, 2, 3);
    let mut emitted = 0;
    for _ in 0..5_000 {
        if let Some(r) = events.on_packet(&gen.next_packet()) {
            assert_eq!(r.header.opcode, DtaOpcode::Append);
            run(&mut c, &mut t, &r);
            emitted += 1;
        }
    }
    assert!(emitted > 0);
    // Entries are pollable after flushing partial batches.
    for pkt in t.flush(0).packets {
        c.nic_ingress(&pkt);
    }
    let reader = c.append.as_mut().unwrap();
    let first = reader.poll(2);
    let depth = u32::from_be_bytes(first[..4].try_into().unwrap());
    assert!(depth > 5_000);
}

#[test]
fn marple_flowlets_and_lossy_flows_via_append() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut flowlets = MarpleFlowletSizes::new(500_000, 8, 4);
    let mut lossy = MarpleLossyFlows::new(0.01, 0, 0.05, 64, 5);
    let mut n = 0;
    for _ in 0..100_000 {
        let pkt = gen.next_packet();
        for r in [flowlets.on_packet(&pkt), lossy.on_packet(&pkt)].into_iter().flatten() {
            assert_eq!(r.header.opcode, DtaOpcode::Append);
            run(&mut c, &mut t, &r);
            n += 1;
        }
    }
    assert!(n > 50, "only {n} Marple append reports");
}

#[test]
fn marple_timeouts_via_key_write_match_ground_truth() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig { flows: 64, ..TraceConfig::default() });
    let mut timeouts = MarpleTcpTimeouts::new(0.01, 2, 6);
    let mut flows = Vec::new();
    for _ in 0..50_000 {
        let pkt = gen.next_packet();
        if let Some(r) = timeouts.on_packet(&pkt) {
            run(&mut c, &mut t, &r);
            if !flows.contains(&pkt.flow) {
                flows.push(pkt.flow);
            }
        }
    }
    let kw = c.keywrite.as_ref().unwrap();
    let mut verified = 0;
    for flow in flows.iter().take(20) {
        if let QueryOutcome::Found(v) = kw.query(&TelemetryKey::flow(flow), 2, QueryPolicy::Plurality) {
            let count = u32::from_be_bytes(v[..4].try_into().unwrap());
            assert_eq!(count, timeouts.true_count(flow), "stale count for {flow}");
            verified += 1;
        }
    }
    assert!(verified > 10, "too few verifiable flows: {verified}");
}

#[test]
fn marple_host_counters_and_turboflow_via_key_increment() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig { hosts: 64, ..TraceConfig::default() });
    let mut hosts = MarpleHostCounters::new(16, 2);
    let mut tf = TurboFlow::new(64, 2);
    let n = 20_000u64;
    let mut host_truth = std::collections::HashMap::new();
    for _ in 0..n {
        let pkt = gen.next_packet();
        *host_truth.entry(pkt.flow.src_ip).or_insert(0u64) += 1;
        for r in [hosts.on_packet(&pkt), tf.on_packet(&pkt)].into_iter().flatten() {
            assert_eq!(r.header.opcode, DtaOpcode::KeyIncrement);
            run(&mut c, &mut t, &r);
        }
    }
    for r in hosts.flush().iter().chain(tf.flush().iter()) {
        run(&mut c, &mut t, r);
    }
    // Count-min: estimates are upper bounds of the truth; sum-preservation
    // was asserted by eviction totals. Verify per-host lower bound.
    let ki = c.key_increment.as_ref().unwrap();
    for (ip, truth) in host_truth {
        let est = ki.query(&TelemetryKey::src_ip(ip), 2);
        assert!(est >= truth, "host {ip:#x}: est {est} < truth {truth}");
    }
}

#[test]
fn netseer_packetscope_dshark_sonata_pint_cover_their_primitives() {
    let (mut c, mut t) = pair();
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut netseer = NetSeer::new(0.01, 4, 1, 1);
    let mut ps = PacketScope::new(3, 0.01, 4, 1, 2);
    let mut dshark = DsharkParser::new(4, 8);
    let mut sonata_q = SonataQuery::new(12, 1_000_000, 1);
    let mut sonata_raw = SonataRawTransfer::new(12);
    let mut pint = Pint::new(2, 1 << 12);
    let mut by_opcode = std::collections::HashMap::new();
    for _ in 0..20_000 {
        let pkt = gen.next_packet();
        let mut reports: Vec<DtaReport> = Vec::new();
        reports.extend(netseer.on_packet(&pkt));
        let (traversal, drop) = ps.on_packet(&pkt);
        reports.push(traversal);
        reports.extend(drop);
        reports.push(dshark.on_packet(&pkt));
        reports.extend(sonata_q.on_match(&pkt));
        reports.push(sonata_raw.on_match(&pkt));
        reports.push(pint.on_packet(&pkt));
        for r in reports {
            *by_opcode.entry(r.header.opcode).or_insert(0u64) += 1;
            run(&mut c, &mut t, &r);
        }
    }
    assert!(by_opcode[&DtaOpcode::Append] > 1_000, "append-backed systems silent");
    assert!(by_opcode[&DtaOpcode::KeyWrite] > 1_000, "kw-backed systems silent");
}

#[test]
fn table2_inventory_is_complete() {
    // 15 integrations across 4 primitives, as in the paper's Table 2.
    assert_eq!(TABLE2_INTEGRATIONS.len(), 15);
    for primitive in ["Key-Write", "Postcarding", "Append", "Key-Increment"] {
        assert!(
            TABLE2_INTEGRATIONS.iter().any(|(_, _, p)| *p == primitive),
            "no integration for {primitive}"
        );
    }
}

//! Offline stand-in for `criterion`.
//!
//! Provides the measurement surface the repo's benches use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`, the
//! `criterion_group!` / `criterion_main!` macros — over a simple
//! warmup-then-measure wall-clock loop. Bench targets must set
//! `harness = false` (as with the real crate).
//!
//! Measurement model: the routine is timed in growing batches during the
//! warm-up window to calibrate an iteration count that fills the
//! measurement window, then timed once at that count. Results print as
//! `group/id  time: [.. per-iter ..]  thrpt: [..]` lines.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation: how much work one iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (reports, packets, ops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Bare parameter id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    #[inline]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/id` label.
    pub label: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Throughput annotation in effect.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Work units per second implied by the throughput annotation.
    pub fn rate(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            per_iter / (self.ns_per_iter * 1e-9)
        })
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(r: f64, unit: &str) -> String {
    if r >= 1e9 {
        format!("{:.3} G{unit}/s", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3} M{unit}/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3} K{unit}/s", r / 1e3)
    } else {
        format!("{r:.1} {unit}/s")
    }
}

/// The benchmark manager.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
    /// All measurements taken so far (inspectable by custom harnesses).
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Respect the bench binary's CLI filter (cargo bench passes
        // `--bench`; a bare positional arg filters by substring).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 10,
            filter,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the nominal sample count (kept for API compatibility; the
    /// stand-in measures one large sample).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Bench outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        label: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up + calibration: grow the batch until the routine has run
        // for the warm-up window, estimating per-iteration cost.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut per_iter_ns = f64::MAX;
        while warm_start.elapsed() < self.warm_up {
            f(&mut b);
            let est = b.elapsed.as_nanos() as f64 / b.iters as f64;
            if est > 0.0 {
                per_iter_ns = per_iter_ns.min(est.max(0.1));
            }
            b.iters = (b.iters * 2).min(1 << 24);
        }
        if per_iter_ns == f64::MAX {
            per_iter_ns = 1.0;
        }
        // One measurement filling the window.
        let target = self.measurement.as_nanos() as f64;
        b.iters = ((target / per_iter_ns) as u64).clamp(1, 1 << 32);
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;

        let m = Measurement { label: label.clone(), ns_per_iter: ns, iters: b.iters, throughput };
        let thrpt = m
            .rate()
            .map(|r| {
                let unit = match throughput {
                    Some(Throughput::Bytes(_)) => "B",
                    _ => "elem",
                };
                format!("  thrpt: [{}]", human_rate(r, unit))
            })
            .unwrap_or_default();
        println!("{label:<44} time: [{}]{}", human_time(ns), thrpt);
        self.measurements.push(m);
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Bench a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        let t = self.throughput;
        self.c.run_one(label, t, f);
        self
    }

    /// Bench a closure that receives `input` under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        let t = self.throughput;
        self.c.run_one(label, t, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.measurements.len(), 1);
        assert!(c.measurements[0].ns_per_iter > 0.0);
        assert!(c.measurements[0].rate().unwrap() > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("key_write", 4).id, "key_write/4");
    }
}

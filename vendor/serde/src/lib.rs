//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. No serialization machinery exists: the repo's wire formats
//! are hand-rolled codecs and never go through serde.

pub use serde_derive::{Deserialize, Serialize};

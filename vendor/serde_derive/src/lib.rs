//! Offline stand-in for `serde_derive`.
//!
//! The repo only uses `#[derive(Serialize, Deserialize)]` as metadata — no
//! code path actually serializes through serde (the wire formats are all
//! hand-rolled big-endian codecs). These derives therefore accept the input
//! and expand to nothing, which keeps the annotations compiling without the
//! real proc-macro stack.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of the `bytes` API that DTA uses, with the same
//! semantics that matter to the hot path:
//!
//! * [`Bytes`] is a cheaply clonable, reference-counted view: `clone()` and
//!   [`Bytes::slice`] are O(1) and share the underlying buffer (no copy).
//! * [`BytesMut`] is a growable build buffer whose [`BytesMut::freeze`]
//!   transfers ownership into a [`Bytes`] without copying.
//! * [`Buf`] / [`BufMut`] are the big-endian cursor traits used by every
//!   wire codec in the repo.
//!
//! Zero-copy behaviour is observable: slices of the same `Bytes` report the
//! same backing-store pointer (the property the translator's redundancy
//! fan-out tests assert).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
    /// Exact-size shared slice: one allocation holds header and bytes
    /// together ([`Bytes::copy_from_slice`]'s hot-path representation).
    Slice(Arc<[u8]>),
}

/// A cheaply clonable, immutable, reference-counted byte buffer view.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Wrap a static slice (no allocation).
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s), start: 0, end: s.len() }
    }

    /// Copy a slice into a fresh shared buffer (a single allocation).
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { repr: Repr::Slice(Arc::from(s)), start: 0, end: s.len() }
    }

    /// Wrap an externally owned shared buffer without copying (the shim's
    /// version of `Bytes::from_owner`, restricted to `Arc<[u8]>`). The
    /// caller may keep its own reference — e.g., a recycling buffer pool
    /// that reuses the allocation once all `Bytes` views drop.
    pub fn from_owner(owner: Arc<[u8]>) -> Self {
        let end = owner.len();
        Bytes { repr: Repr::Slice(owner), start: 0, end }
    }

    /// View of the bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(a) => &a[self.start..self.end],
            Repr::Slice(a) => &a[self.start..self.end],
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same backing store (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice [{begin}, {end}) out of range for length {len}");
        Bytes { repr: self.repr.clone(), start: self.start + begin, end: self.start + end }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    /// O(1); both halves share the backing store.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to({at}) out of range for length {}", self.len());
        let head = Bytes { repr: self.repr.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::Index<I> for Bytes {
    type Output = I::Output;
    #[inline]
    fn index(&self, index: I) -> &Self::Output {
        &self.as_slice()[index]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte build buffer; [`BytesMut::freeze`] converts it into a
/// shareable [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Append a slice.
    #[inline]
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Resize, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Truncate to `len`.
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Convert into an immutable, shareable [`Bytes`] (ownership transfer,
    /// no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Take the contents, leaving an empty buffer that retains no capacity.
    pub fn split(&mut self) -> BytesMut {
        BytesMut { vec: std::mem::take(&mut self.vec) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl<'a> From<&'a [u8]> for BytesMut {
    fn from(s: &'a [u8]) -> Self {
        BytesMut { vec: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::Index<I> for BytesMut {
    type Output = I::Output;
    #[inline]
    fn index(&self, index: I) -> &Self::Output {
        &self.vec[index]
    }
}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::IndexMut<I> for BytesMut {
    #[inline]
    fn index_mut(&mut self, index: I) -> &mut Self::Output {
        &mut self.vec[index]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}

/// Read cursor over a byte source. All multi-byte reads are big-endian,
/// matching the network byte order of every DTA codec.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copy the next `len` bytes into an owned [`Bytes`], advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance({cnt}) past end of buffer");
        self.start += cnt;
    }

    /// Zero-copy: the returned [`Bytes`] shares this buffer's backing store.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        (**self).copy_to_bytes(len)
    }
}

/// Write cursor over a growable byte sink. All multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.vec.resize(self.vec.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        (**self).put_bytes(val, cnt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_backing_store() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s1 = b.slice(1..4);
        let s2 = b.clone();
        assert_eq!(s1.as_slice(), &[2, 3, 4]);
        assert_eq!(s1.as_ptr(), unsafe { b.as_ptr().add(1) });
        assert_eq!(s2.as_ptr(), b.as_ptr());
    }

    #[test]
    fn freeze_is_ownership_transfer() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0xDEAD_BEEF);
        let ptr = m.as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.as_slice(), &0xDEAD_BEEFu32.to_be_bytes());
    }

    #[test]
    fn buf_roundtrip_be() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u16(2);
        m.put_u32(3);
        m.put_u64(4);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 2);
        assert_eq!(b.get_u32(), 3);
        assert_eq!(b.get_u64(), 4);
        assert!(!b.has_remaining());
    }

    #[test]
    fn copy_to_bytes_on_bytes_is_zero_copy() {
        let mut b = Bytes::from(vec![9u8; 32]);
        let base = b.as_ptr();
        let head = b.copy_to_bytes(8);
        assert_eq!(head.as_ptr(), base);
        assert_eq!(b.as_ptr(), unsafe { base.add(8) });
        assert_eq!(b.remaining(), 24);
    }

    #[test]
    fn static_bytes_do_not_allocate() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.slice(1..3).as_slice(), b"el");
        assert_eq!(&b[..], b"hello");
    }

    #[test]
    fn index_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b[0], 1);
        assert_eq!(b[1..], [2, 3]);
        assert_eq!(b, vec![1, 2, 3]);
        let mut m = BytesMut::from(&b[..]);
        m[0] = 7;
        assert_eq!(&m[..], &[7, 2, 3]);
    }
}

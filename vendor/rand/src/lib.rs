//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset DTA uses — [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and the [`Rng`] extension methods
//! (`gen`, `gen_bool`, `gen_range`) — over a xoshiro256++ core. All
//! simulation streams are deterministic for a given seed, as the
//! experiments require; no OS entropy source is touched.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased rejection sampling (Lemire's method would be
                // faster; the simulator does not care).
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = (0..span).sample_from(rng);
                (self.start as i64 + off as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let off = (0..=span).sample_from(rng);
                (start as i64 + off as i64) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range over empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dst: &mut [u8]) {
        self.fill_bytes(dst)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ core seeded via
    /// SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Convenience process-local generator (deterministic here, unlike the real
/// crate: no OS entropy is available offline).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(10u32..=12);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the repo's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()`,
//! range and tuple strategies, `collection::{vec, hash_set}`,
//! `sample::Index`, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Each property runs `PROPTEST_CASES` (default 64) deterministic cases —
//! the RNG stream is derived from the test name and case number, so
//! failures are reproducible run-to-run. Unlike the real crate there is no
//! shrinking: a failing case reports its case number and message only.

use rand::rngs::StdRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

pub mod strategy {
    //! Strategy trait and combinators.

    use super::TestRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice between alternatives (the [`crate::prop_oneof!`]
    /// expansion).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::TestRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.gen())
        }
    }

    /// The canonical strategy for `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod sample {
    //! Index sampling (`prop::sample::Index`).

    /// A position sampled independently of the collection it will index:
    /// `index(len)` maps it uniformly into `0..len`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        pub(crate) fn new(unit: f64) -> Self {
            Index(unit.clamp(0.0, 1.0 - f64::EPSILON))
        }

        /// Map into `0..len`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::TestRng;
    use crate::strategy::Strategy;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Bound, RangeBounds};

    fn size_bounds(range: impl RangeBounds<usize>) -> (usize, usize) {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => lo + 100,
        };
        assert!(lo < hi, "empty size range");
        (lo, hi)
    }

    /// Vectors of `lo..hi` elements from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.lo..self.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, range: impl RangeBounds<usize>) -> VecStrategy<S> {
        let (lo, hi) = size_bounds(range);
        VecStrategy { element, lo, hi }
    }

    /// Hash sets of roughly `lo..hi` elements (duplicates are retried a
    /// bounded number of times, so low-entropy element strategies may yield
    /// slightly fewer).
    pub struct HashSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = rng.gen_range(self.lo..self.hi);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `proptest::collection::hash_set(element, size_range)`.
    pub fn hash_set<S: Strategy>(
        element: S,
        range: impl RangeBounds<usize>,
    ) -> HashSetStrategy<S> {
        let (lo, hi) = size_bounds(range);
        HashSetStrategy { element, lo, hi }
    }
}

pub mod test_runner {
    //! Deterministic case runner.

    use super::TestRng;
    use rand::SeedableRng;

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    fn seed_for(name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case number.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// Run `body` for each deterministic case; panic with context on the
    /// first failure.
    pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), String>) {
        for case in 0..cases() {
            let mut rng = TestRng::seed_from_u64(seed_for(name, case));
            if let Err(msg) = body(&mut rng) {
                panic!("proptest '{name}' failed on case {case}/{}: {msg}", cases());
            }
        }
    }
}

/// Define property tests. Each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert inside a property; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!("{} ({:?} != {:?})", format!($($fmt)+), a, b));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!("assertion failed: {:?} == {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!("{} ({:?} == {:?})", format!($($fmt)+), a, b));
        }
    }};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // `prop::sample::Index` etc. resolve through this alias, as in the real
    // crate's prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_bounded(x in 3u32..10, y in 0u8..=4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_and_oneof(k in prop_oneof![
            any::<u32>().prop_map(|v| v as u64),
            (1u64..100).prop_map(|v| v * 2),
        ]) {
            let _ = k;
            prop_assert!(true);
        }

        #[test]
        fn index_in_range(i in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(i.index(len) < len);
        }

        #[test]
        fn tuples(t in (any::<u16>(), 1u8..=8, any::<bool>())) {
            let (_a, b, _c) = t;
            prop_assert!((1..=8).contains(&b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(any::<u64>(), 3..10);
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}

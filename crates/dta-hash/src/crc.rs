//! Table-driven 32-bit CRC with configurable parameters.
//!
//! The Tofino CRC extern lets P4 programs select the polynomial, initial
//! value, reflection, and final XOR. We model the same parameter space using
//! the Rocksoft^TM parametric CRC model.
//!
//! Two walkers share the tables:
//!
//! * [`Crc32::compute_bytewise`] — the one-byte-at-a-time reference walk,
//!   mirroring how the switch pipeline consumes one byte per stage. Kept as
//!   the correctness oracle.
//! * [`Crc32::compute`] / [`Crc32::update`] — **slice-by-8**: eight bytes
//!   per step through eight precomputed tables, in both reflected
//!   (LSB-first) and non-reflected (MSB-first) forms. This is the hot path
//!   for key hashing (16-byte keys = two steps) and the per-packet ICRC.

/// Parameters of a 32-bit CRC in the Rocksoft model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcParams {
    /// Generator polynomial, normal (MSB-first) representation, without the
    /// implicit x^32 term.
    pub poly: u32,
    /// Register initial value.
    pub init: u32,
    /// Whether input bytes are reflected (LSB-first processing).
    pub reflect_in: bool,
    /// Whether the final register value is reflected.
    pub reflect_out: bool,
    /// Value XORed into the final register.
    pub xor_out: u32,
}

impl CrcParams {
    /// CRC-32/ISO-HDLC — the "IEEE 802.3" CRC used by Ethernet and zip.
    pub const IEEE: CrcParams = CrcParams {
        poly: 0x04C1_1DB7,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32C (Castagnoli), used by iSCSI, RoCE ICRC, and ext4.
    pub const CASTAGNOLI: CrcParams = CrcParams {
        poly: 0x1EDC_6F41,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/BZIP2 — IEEE polynomial without reflection.
    pub const BZIP2: CrcParams = CrcParams {
        poly: 0x04C1_1DB7,
        init: 0xFFFF_FFFF,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/MEF (Koopman polynomial 0x741B8CD7).
    pub const KOOPMAN: CrcParams = CrcParams {
        poly: 0x741B_8CD7,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/AIXM (polynomial 0x814141AB, no reflection).
    pub const AIXM: CrcParams = CrcParams {
        poly: 0x8141_41AB,
        init: 0x0000_0000,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0x0000_0000,
    };

    /// CRC-32/BASE91-D (polynomial 0xA833982B, reflected).
    pub const BASE91: CrcParams = CrcParams {
        poly: 0xA833_982B,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/CD-ROM-EDC (polynomial 0x8001801B, reflected, zero init).
    pub const CDROM_EDC: CrcParams = CrcParams {
        poly: 0x8001_801B,
        init: 0x0000_0000,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0x0000_0000,
    };

    /// CRC-32/XFER (polynomial 0x000000AF, no reflection).
    pub const XFER: CrcParams = CrcParams {
        poly: 0x0000_00AF,
        init: 0x0000_0000,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0x0000_0000,
    };

    /// Every named preset (the Tofino extern's menu), for exhaustive
    /// equivalence tests.
    pub const ALL_PRESETS: [CrcParams; 8] = [
        CrcParams::IEEE,
        CrcParams::CASTAGNOLI,
        CrcParams::BZIP2,
        CrcParams::KOOPMAN,
        CrcParams::AIXM,
        CrcParams::BASE91,
        CrcParams::CDROM_EDC,
        CrcParams::XFER,
    ];
}

fn reflect32(mut v: u32) -> u32 {
    let mut r = 0u32;
    for _ in 0..32 {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    r
}

fn reflect8(mut v: u8) -> u8 {
    let mut r = 0u8;
    for _ in 0..8 {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    r
}

/// A table-driven 32-bit CRC engine.
///
/// Construction builds eight 256-entry lookup tables once *per parameter
/// set, process-wide*: the tables are pure functions of [`CrcParams`], so
/// they live behind a global cache and every subsequent engine for the
/// same parameters is an `Arc` clone (scenario runs construct dozens of
/// engines; rebuilding 8KB of tables each time cost real microseconds).
/// `table[0]` drives the byte-at-a-time reference walk
/// ([`Crc32::compute_bytewise`]); all eight drive the slice-by-8 walk
/// ([`Crc32::compute`]), which consumes the input eight bytes per step and
/// is ~4-6x faster on the 16-byte telemetry keys and packet-sized ICRC
/// inputs of the hot path.
#[derive(Debug, Clone)]
pub struct Crc32 {
    params: CrcParams,
    table: CrcTables,
}

/// The eight slice-by-8 lookup tables of one parameter set.
type CrcTables = std::sync::Arc<[[u32; 256]; 8]>;

/// Process-wide table cache. A linear scan suffices: programs use a
/// handful of parameter sets (IEEE, Castagnoli, the index polynomials).
fn table_cache() -> &'static std::sync::Mutex<Vec<(CrcParams, CrcTables)>> {
    static CACHE: std::sync::OnceLock<std::sync::Mutex<Vec<(CrcParams, CrcTables)>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

impl Crc32 {
    /// Build (or fetch the cached tables of) an engine for the given
    /// parameter set.
    pub fn new(params: CrcParams) -> Self {
        let mut cache = table_cache().lock().expect("crc table cache poisoned");
        if let Some((_, table)) = cache.iter().find(|(p, _)| *p == params) {
            return Crc32 { params, table: std::sync::Arc::clone(table) };
        }
        let table = std::sync::Arc::new(Self::build_table(params));
        cache.push((params, std::sync::Arc::clone(&table)));
        Crc32 { params, table }
    }

    #[allow(clippy::needless_range_loop)] // index `i` addresses two tables at once
    fn build_table(params: CrcParams) -> [[u32; 256]; 8] {
        let mut table = [[0u32; 256]; 8];
        // table[0]: the classic single-byte table (in reflected form when
        // reflect_in is set).
        for i in 0..256usize {
            let mut crc = if params.reflect_in {
                (reflect8(i as u8) as u32) << 24
            } else {
                (i as u32) << 24
            };
            for _ in 0..8 {
                crc = if crc & 0x8000_0000 != 0 {
                    (crc << 1) ^ params.poly
                } else {
                    crc << 1
                };
            }
            if params.reflect_in {
                crc = reflect32(crc);
            }
            table[0][i] = crc;
        }
        // table[k]: the CRC of byte `i` followed by `k` zero bytes, built by
        // pushing each previous table entry through one more zero byte.
        for k in 1..8 {
            for i in 0..256usize {
                let prev = table[k - 1][i];
                table[k][i] = if params.reflect_in {
                    (prev >> 8) ^ table[0][(prev & 0xFF) as usize]
                } else {
                    (prev << 8) ^ table[0][(prev >> 24) as usize]
                };
            }
        }
        table
    }

    /// The parameter set this engine was built with.
    pub fn params(&self) -> CrcParams {
        self.params
    }

    /// Compute the CRC of `data` in one shot (slice-by-8 walk).
    #[inline]
    pub fn compute(&self, data: &[u8]) -> u32 {
        self.finish(self.update(self.start(), data))
    }

    /// Compute the CRC of `data` with the byte-at-a-time reference walk —
    /// the correctness oracle for the slice-by-8 fast path, and the closest
    /// model of the per-stage hardware walk.
    pub fn compute_bytewise(&self, data: &[u8]) -> u32 {
        self.finish(self.update_bytewise(self.start(), data))
    }

    /// Begin an incremental computation.
    pub fn start(&self) -> u32 {
        if self.params.reflect_in {
            reflect32(self.params.init)
        } else {
            self.params.init
        }
    }

    /// Feed bytes into an incremental computation (slice-by-8; the tail
    /// shorter than 8 bytes falls back to the byte walk). Chunk boundaries
    /// do not affect the result.
    #[inline]
    pub fn update(&self, mut crc: u32, data: &[u8]) -> u32 {
        let t = &*self.table;
        let mut chunks = data.chunks_exact(8);
        if self.params.reflect_in {
            for c in &mut chunks {
                let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ crc;
                let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
                crc = t[7][(lo & 0xFF) as usize]
                    ^ t[6][((lo >> 8) & 0xFF) as usize]
                    ^ t[5][((lo >> 16) & 0xFF) as usize]
                    ^ t[4][(lo >> 24) as usize]
                    ^ t[3][(hi & 0xFF) as usize]
                    ^ t[2][((hi >> 8) & 0xFF) as usize]
                    ^ t[1][((hi >> 16) & 0xFF) as usize]
                    ^ t[0][(hi >> 24) as usize];
            }
        } else {
            for c in &mut chunks {
                let hi = u32::from_be_bytes(c[0..4].try_into().unwrap()) ^ crc;
                let lo = u32::from_be_bytes(c[4..8].try_into().unwrap());
                crc = t[7][(hi >> 24) as usize]
                    ^ t[6][((hi >> 16) & 0xFF) as usize]
                    ^ t[5][((hi >> 8) & 0xFF) as usize]
                    ^ t[4][(hi & 0xFF) as usize]
                    ^ t[3][(lo >> 24) as usize]
                    ^ t[2][((lo >> 16) & 0xFF) as usize]
                    ^ t[1][((lo >> 8) & 0xFF) as usize]
                    ^ t[0][(lo & 0xFF) as usize];
            }
        }
        self.update_bytewise(crc, chunks.remainder())
    }

    /// Feed bytes one at a time (reference walk).
    pub fn update_bytewise(&self, mut crc: u32, data: &[u8]) -> u32 {
        let t0 = &self.table[0];
        if self.params.reflect_in {
            for &b in data {
                let idx = ((crc ^ b as u32) & 0xFF) as usize;
                crc = (crc >> 8) ^ t0[idx];
            }
        } else {
            for &b in data {
                let idx = (((crc >> 24) ^ b as u32) & 0xFF) as usize;
                crc = (crc << 8) ^ t0[idx];
            }
        }
        crc
    }

    /// Finalize an incremental computation.
    pub fn finish(&self, mut crc: u32) -> u32 {
        // With reflect_in the register already holds the reflected value, so
        // output reflection is a no-op when reflect_out == reflect_in.
        if self.params.reflect_out != self.params.reflect_in {
            crc = reflect32(crc);
        }
        crc ^ self.params.xor_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_oneshot() {
        let crc = Crc32::new(CrcParams::IEEE);
        let data = b"direct telemetry access";
        let mut st = crc.start();
        for chunk in data.chunks(3) {
            st = crc.update(st, chunk);
        }
        assert_eq!(crc.finish(st), crc.compute(data));
    }

    #[test]
    fn slice_by_8_equals_bytewise_all_presets() {
        // Lengths straddling every chunking regime: empty, sub-8 tail only,
        // exact multiples, and one-over.
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for params in CrcParams::ALL_PRESETS {
            let crc = Crc32::new(params);
            for len in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 255, 256, 1024] {
                assert_eq!(
                    crc.compute(&data[..len]),
                    crc.compute_bytewise(&data[..len]),
                    "slice-by-8 diverged from oracle at len {len} for {params:?}"
                );
            }
        }
    }

    #[test]
    fn aixm_check_value() {
        let crc = Crc32::new(CrcParams::AIXM);
        assert_eq!(crc.compute(b"123456789"), 0x3010_BF7F);
    }

    #[test]
    fn base91_check_value() {
        let crc = Crc32::new(CrcParams::BASE91);
        assert_eq!(crc.compute(b"123456789"), 0x8731_5576);
    }

    #[test]
    fn cdrom_edc_check_value() {
        let crc = Crc32::new(CrcParams::CDROM_EDC);
        assert_eq!(crc.compute(b"123456789"), 0x6EC2_EDC4);
    }

    #[test]
    fn xfer_check_value() {
        let crc = Crc32::new(CrcParams::XFER);
        assert_eq!(crc.compute(b"123456789"), 0xBD0B_E338);
    }

    #[test]
    fn empty_input() {
        let crc = Crc32::new(CrcParams::IEEE);
        assert_eq!(crc.compute(b""), 0x0000_0000);
    }

    #[test]
    fn reflection_helpers() {
        assert_eq!(super::reflect8(0b0000_0001), 0b1000_0000);
        assert_eq!(super::reflect32(1), 0x8000_0000);
        assert_eq!(super::reflect32(super::reflect32(0xDEAD_BEEF)), 0xDEAD_BEEF);
    }
}

//! Table-driven 32-bit CRC with configurable parameters.
//!
//! The Tofino CRC extern lets P4 programs select the polynomial, initial
//! value, reflection, and final XOR. We model the same parameter space using
//! the Rocksoft^TM parametric CRC model.

/// Parameters of a 32-bit CRC in the Rocksoft model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcParams {
    /// Generator polynomial, normal (MSB-first) representation, without the
    /// implicit x^32 term.
    pub poly: u32,
    /// Register initial value.
    pub init: u32,
    /// Whether input bytes are reflected (LSB-first processing).
    pub reflect_in: bool,
    /// Whether the final register value is reflected.
    pub reflect_out: bool,
    /// Value XORed into the final register.
    pub xor_out: u32,
}

impl CrcParams {
    /// CRC-32/ISO-HDLC — the "IEEE 802.3" CRC used by Ethernet and zip.
    pub const IEEE: CrcParams = CrcParams {
        poly: 0x04C1_1DB7,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32C (Castagnoli), used by iSCSI, RoCE ICRC, and ext4.
    pub const CASTAGNOLI: CrcParams = CrcParams {
        poly: 0x1EDC_6F41,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/BZIP2 — IEEE polynomial without reflection.
    pub const BZIP2: CrcParams = CrcParams {
        poly: 0x04C1_1DB7,
        init: 0xFFFF_FFFF,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/MEF (Koopman polynomial 0x741B8CD7).
    pub const KOOPMAN: CrcParams = CrcParams {
        poly: 0x741B_8CD7,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/AIXM (polynomial 0x814141AB, no reflection).
    pub const AIXM: CrcParams = CrcParams {
        poly: 0x8141_41AB,
        init: 0x0000_0000,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0x0000_0000,
    };

    /// CRC-32/BASE91-D (polynomial 0xA833982B, reflected).
    pub const BASE91: CrcParams = CrcParams {
        poly: 0xA833_982B,
        init: 0xFFFF_FFFF,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0xFFFF_FFFF,
    };

    /// CRC-32/CD-ROM-EDC (polynomial 0x8001801B, reflected, zero init).
    pub const CDROM_EDC: CrcParams = CrcParams {
        poly: 0x8001_801B,
        init: 0x0000_0000,
        reflect_in: true,
        reflect_out: true,
        xor_out: 0x0000_0000,
    };

    /// CRC-32/XFER (polynomial 0x000000AF, no reflection).
    pub const XFER: CrcParams = CrcParams {
        poly: 0x0000_00AF,
        init: 0x0000_0000,
        reflect_in: false,
        reflect_out: false,
        xor_out: 0x0000_0000,
    };
}

fn reflect32(mut v: u32) -> u32 {
    let mut r = 0u32;
    for _ in 0..32 {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    r
}

fn reflect8(mut v: u8) -> u8 {
    let mut r = 0u8;
    for _ in 0..8 {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    r
}

/// A table-driven 32-bit CRC engine.
///
/// Construction builds the 256-entry lookup table once; [`Crc32::compute`] is
/// then a byte-at-a-time table walk, mirroring how the switch pipeline
/// computes CRCs at line rate.
#[derive(Debug, Clone)]
pub struct Crc32 {
    params: CrcParams,
    table: [u32; 256],
}

impl Crc32 {
    /// Build an engine for the given parameter set.
    pub fn new(params: CrcParams) -> Self {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = if params.reflect_in {
                reflect8(i as u8) as u32
            } else {
                i as u32
            } << 24;
            for _ in 0..8 {
                crc = if crc & 0x8000_0000 != 0 {
                    (crc << 1) ^ params.poly
                } else {
                    crc << 1
                };
            }
            if params.reflect_in {
                crc = reflect32(crc);
            }
            *slot = crc;
        }
        Crc32 { params, table }
    }

    /// The parameter set this engine was built with.
    pub fn params(&self) -> CrcParams {
        self.params
    }

    /// Compute the CRC of `data` in one shot.
    pub fn compute(&self, data: &[u8]) -> u32 {
        self.finish(self.update(self.start(), data))
    }

    /// Begin an incremental computation.
    pub fn start(&self) -> u32 {
        if self.params.reflect_in {
            reflect32(self.params.init)
        } else {
            self.params.init
        }
    }

    /// Feed bytes into an incremental computation.
    pub fn update(&self, mut crc: u32, data: &[u8]) -> u32 {
        if self.params.reflect_in {
            for &b in data {
                let idx = ((crc ^ b as u32) & 0xFF) as usize;
                crc = (crc >> 8) ^ self.table[idx];
            }
        } else {
            for &b in data {
                let idx = (((crc >> 24) ^ b as u32) & 0xFF) as usize;
                crc = (crc << 8) ^ self.table[idx];
            }
        }
        crc
    }

    /// Finalize an incremental computation.
    pub fn finish(&self, mut crc: u32) -> u32 {
        // With reflect_in the register already holds the reflected value, so
        // output reflection is a no-op when reflect_out == reflect_in.
        if self.params.reflect_out != self.params.reflect_in {
            crc = reflect32(crc);
        }
        crc ^ self.params.xor_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_oneshot() {
        let crc = Crc32::new(CrcParams::IEEE);
        let data = b"direct telemetry access";
        let mut st = crc.start();
        for chunk in data.chunks(3) {
            st = crc.update(st, chunk);
        }
        assert_eq!(crc.finish(st), crc.compute(data));
    }

    #[test]
    fn aixm_check_value() {
        let crc = Crc32::new(CrcParams::AIXM);
        assert_eq!(crc.compute(b"123456789"), 0x3010_BF7F);
    }

    #[test]
    fn base91_check_value() {
        let crc = Crc32::new(CrcParams::BASE91);
        assert_eq!(crc.compute(b"123456789"), 0x8731_5576);
    }

    #[test]
    fn cdrom_edc_check_value() {
        let crc = Crc32::new(CrcParams::CDROM_EDC);
        assert_eq!(crc.compute(b"123456789"), 0x6EC2_EDC4);
    }

    #[test]
    fn xfer_check_value() {
        let crc = Crc32::new(CrcParams::XFER);
        assert_eq!(crc.compute(b"123456789"), 0xBD0B_E338);
    }

    #[test]
    fn empty_input() {
        let crc = Crc32::new(CrcParams::IEEE);
        assert_eq!(crc.compute(b""), 0x0000_0000);
    }

    #[test]
    fn reflection_helpers() {
        assert_eq!(super::reflect8(0b0000_0001), 0b1000_0000);
        assert_eq!(super::reflect32(1), 0x8000_0000);
        assert_eq!(super::reflect32(super::reflect32(0xDEAD_BEEF)), 0xDEAD_BEEF);
    }
}

//! CRC engine and hash-function families for DTA.
//!
//! The DTA translator (SIGCOMM 2023, §5.2) uses the Tofino-native CRC engine
//! both for indexing (computing the `N` memory locations of the Key-Write /
//! Key-Increment / Postcarding primitives) and for the key checksums stored
//! alongside telemetry values. "Carefully selected CRC polynomials are used to
//! create several independent hash functions using the same underlying CRC
//! engine."
//!
//! This crate reproduces that machinery in software:
//!
//! * [`Crc32`] — a table-driven 32-bit CRC with an arbitrary polynomial,
//!   reflection and init/xorout configuration, equivalent to the Tofino CRC
//!   extern.
//! * [`polynomials`] — the catalogue of standard 32-bit polynomials that the
//!   hardware exposes.
//! * [`HashFamily`] — `N` independent hash functions built from distinct
//!   polynomials, used for redundancy slot selection.
//! * [`checksum32`] / [`checksum_b`] — the key-checksum functions used for
//!   query validation (Appendix A.5 of the paper).

pub mod crc;
pub mod family;
pub mod polynomials;
pub mod scratch;

pub use crc::{Crc32, CrcParams};
pub use family::{checksum32, checksum_b, slot_of, Checksummer, HashFamily};
pub use scratch::{KeyDigests, KeyScratch, ScratchStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_ieee_check_value() {
        // The universal CRC "check" input.
        let crc = Crc32::new(CrcParams::IEEE);
        assert_eq!(crc.compute(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32c_check_value() {
        let crc = Crc32::new(CrcParams::CASTAGNOLI);
        assert_eq!(crc.compute(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32_bzip2_check_value() {
        let crc = Crc32::new(CrcParams::BZIP2);
        assert_eq!(crc.compute(b"123456789"), 0xFC89_1918);
    }

    #[test]
    fn crc32_koopman_check_value() {
        let crc = Crc32::new(CrcParams::KOOPMAN);
        assert_eq!(crc.compute(b"123456789"), 0x2D3D_D0AE);
    }

    #[test]
    fn family_members_disagree() {
        let fam = HashFamily::new(4);
        let k = b"\x01\x02\x03\x04flow";
        let outs: Vec<u32> = (0..4).map(|i| fam.hash(i, k)).collect();
        // Distinct polynomials must produce distinct digests for a
        // non-degenerate key with overwhelming probability.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(outs[i], outs[j], "hashes {i} and {j} collided");
            }
        }
    }
}

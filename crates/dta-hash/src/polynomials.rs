//! The catalogue of 32-bit CRC parameter sets available to DTA components.
//!
//! The paper (§5.2): "Carefully selected CRC polynomials are used to create
//! several independent hash functions using the same underlying CRC engine."
//! We expose the same menu the Tofino extern provides so that hash-family
//! members are genuinely distinct CRCs rather than seed-perturbed copies of
//! one function.

use crate::crc::CrcParams;

/// All parameter sets usable for slot-index hash functions, in the order the
/// [`crate::HashFamily`] consumes them.
pub const INDEX_POLYS: &[CrcParams] = &[
    CrcParams::IEEE,
    CrcParams::CASTAGNOLI,
    CrcParams::KOOPMAN,
    CrcParams::BZIP2,
    CrcParams::BASE91,
    CrcParams::AIXM,
    CrcParams::CDROM_EDC,
    CrcParams::XFER,
];

/// The parameter set reserved for key checksums (`h1` in Algorithm 1). It is
/// deliberately *not* in [`INDEX_POLYS`]: the checksum must be independent of
/// every slot-index function or checksum collisions would correlate with slot
/// collisions and break the Appendix A.5 analysis.
pub const CHECKSUM_PARAMS: CrcParams = CrcParams {
    poly: 0x04C1_1DB7,
    init: 0x5A5A_5A5A,
    reflect_in: false,
    reflect_out: false,
    xor_out: 0xA5A5_A5A5,
};

/// Maximum redundancy level supported by the hash family (the paper evaluates
/// up to `N = 8` in Figure 12).
pub const MAX_REDUNDANCY: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_max_redundancy() {
        assert!(INDEX_POLYS.len() >= MAX_REDUNDANCY);
    }

    #[test]
    fn checksum_params_not_in_index_catalogue() {
        assert!(INDEX_POLYS.iter().all(|p| *p != CHECKSUM_PARAMS));
    }

    #[test]
    fn catalogue_entries_are_unique() {
        for (i, a) in INDEX_POLYS.iter().enumerate() {
            for b in &INDEX_POLYS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

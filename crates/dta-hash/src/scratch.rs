//! Per-key digest scratch cache.
//!
//! A Key-Write or Key-Increment report at redundancy `N` needs the key's
//! 32-bit checksum plus `N` slot-index digests — `1 + N` CRC passes over
//! the same 16 bytes. Real report streams have heavy key locality (the
//! same flows keep reporting), so the translator keeps a small 2-way
//! set-associative scratch of recently hashed keys: a hit replaces all
//! `1 + N` CRC passes with one 16-byte compare.
//!
//! The scratch is deliberately small (default 16K entries ≈ 1MB) — it
//! models the translator ASIC's SRAM, not a DRAM cache — and stores the
//! *raw* digests, so one entry serves any slot-table size and any
//! redundancy up to the digests it has computed.

use crate::crc::Crc32;
use crate::family::HashFamily;
use crate::polynomials::{CHECKSUM_PARAMS, MAX_REDUNDANCY};

/// Fixed key width (the DTA wire key).
pub const KEY_BYTES: usize = 16;

/// Digests of one key: checksum plus the first `computed` slot hashes.
#[derive(Debug, Clone, Copy)]
pub struct KeyDigests {
    /// `checksum32` of the key (query-validation checksum).
    pub checksum: u32,
    /// Raw slot-index digests `h_0(key) .. h_{computed-1}(key)` — *not*
    /// reduced modulo any table size.
    pub slots: [u32; MAX_REDUNDANCY],
    /// How many slot digests are valid.
    pub computed: u8,
}

#[derive(Clone, Copy)]
struct Entry {
    key: [u8; KEY_BYTES],
    digests: KeyDigests,
    valid: bool,
}

/// The empty entry every slot starts as — deliberately the all-zero bit
/// pattern (`valid: false`), which is what lets [`KeyScratch::new`] take
/// its table from one zeroed allocation.
const EMPTY: Entry = Entry {
    key: [0; KEY_BYTES],
    digests: KeyDigests { checksum: 0, slots: [0; MAX_REDUNDANCY], computed: 0 },
    valid: false,
};

/// Hit/miss counters for the scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Lookups that found all requested digests cached.
    pub hits: u64,
    /// Lookups that had to run the CRC engine.
    pub misses: u64,
}

/// A 2-way set-associative cache of per-key digests with its own CRC
/// engines.
///
/// Two ways per set with a one-bit LRU make the hit rate robust against
/// pairs of active keys hashing to the same set — the failure mode that
/// hollows out a direct-mapped scratch under real flow working sets.
///
/// Owns a [`HashFamily`] and checksum engine so a lookup is self-contained;
/// the family is shared semantics-wise with the collector (both sides build
/// the same [`HashFamily`], see `dta-collector::layout`).
pub struct KeyScratch {
    family: HashFamily,
    csum: Crc32,
    entries: Vec<Entry>,
    /// MRU way per set (bit-per-set would do; a byte keeps the code plain).
    mru: Vec<u8>,
    set_mask: usize,
    /// Journal of entry indexes ever installed, so drop can recycle the
    /// table after zeroing only what was written (the table is ~1MB; a
    /// full wipe per translator construction is real time at fleet scale).
    touched: Vec<u32>,
    touched_overflow: bool,
    /// Hit/miss counters.
    pub stats: ScratchStats,
}

/// Recycling pool for scratch tables (keyed by entry count).
#[allow(clippy::type_complexity)] // pooled pair, not worth a named struct
fn scratch_pool() -> &'static std::sync::Mutex<Vec<(Vec<Entry>, Vec<u8>)>> {
    static POOL: std::sync::OnceLock<std::sync::Mutex<Vec<(Vec<Entry>, Vec<u8>)>>> =
        std::sync::OnceLock::new();
    POOL.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Pooled scratch-table cap (buffers, not bytes).
const SCRATCH_POOL_MAX: usize = 32;

impl KeyScratch {
    /// Scratch with `entries` slots (rounded up to a power of two, min 32,
    /// organized as 2-way sets) over a family of `family_n` hash functions.
    pub fn new(entries: usize, family_n: usize) -> Self {
        let n = entries.next_power_of_two().max(32);
        let sets = n / 2;
        let pooled = scratch_pool().lock().ok().and_then(|mut pool| {
            pool.iter()
                .position(|(e, _)| e.len() == n)
                .map(|i| pool.swap_remove(i))
        });
        let (entries, mru) = pooled.unwrap_or_else(|| {
            // SAFETY: `Entry` is valid as the all-zero bit pattern (`EMPTY`
            // is exactly that, `valid: false`), so the table can come from
            // one zeroed allocation instead of an element-wise ~1MB fill
            // per translator construction.
            (
                unsafe { Box::<[Entry]>::new_zeroed_slice(n).assume_init() }.into_vec(),
                vec![0u8; sets],
            )
        });
        KeyScratch {
            family: HashFamily::new(family_n),
            csum: Crc32::new(CHECKSUM_PARAMS),
            entries,
            mru,
            set_mask: sets - 1,
            touched: Vec::new(),
            touched_overflow: false,
            stats: ScratchStats::default(),
        }
    }

    /// Journal bound: past this, zero-on-drop degrades to a full wipe.
    fn journal_cap(&self) -> usize {
        (self.entries.len() / 8).max(64)
    }

    /// Default sizing: 16K entries (≈1MB, register-file scale), full-width
    /// family.
    pub fn default_size() -> Self {
        KeyScratch::new(16 * 1024, MAX_REDUNDANCY)
    }

    /// The hash family backing the slot digests.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Number of cache slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has zero slots (never true).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn set_of(key: &[u8; KEY_BYTES], mask: usize) -> usize {
        // Full-avalanche mix (murmur3 fmix64) of the key bytes. A single
        // multiply is NOT enough here: high input bits never diffuse into
        // the low output bits, which collapses structured key populations
        // (e.g. sequential ids) onto a handful of sets and zeroes the hit
        // rate.
        let a = u64::from_le_bytes(key[0..8].try_into().unwrap());
        let b = u64::from_le_bytes(key[8..16].try_into().unwrap());
        let mut h = a ^ b.rotate_left(29);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        h as usize & mask
    }

    /// Digests of `key` with at least `n` slot hashes computed, from cache
    /// when possible.
    ///
    /// # Panics
    /// Panics if `n` exceeds the family width.
    #[inline]
    pub fn digests(&mut self, key: &[u8; KEY_BYTES], n: usize) -> KeyDigests {
        assert!(n <= self.family.len(), "redundancy {n} exceeds family width");
        let set = Self::set_of(key, self.set_mask);
        let base = set * 2;
        // Probe both ways.
        for way in 0..2usize {
            let e = &mut self.entries[base + way];
            if e.valid && e.key == *key {
                if (e.digests.computed as usize) < n {
                    // Key cached but at lower redundancy: extend in place.
                    for i in (e.digests.computed as usize)..n {
                        e.digests.slots[i] = self.family.hash(i, key);
                    }
                    e.digests.computed = n as u8;
                    self.stats.misses += 1;
                } else {
                    self.stats.hits += 1;
                }
                self.mru[set] = way as u8;
                return self.entries[base + way].digests;
            }
        }
        // Miss: compute and install over the LRU way.
        self.stats.misses += 1;
        let mut d = KeyDigests {
            checksum: self.csum.compute(key),
            slots: [0; MAX_REDUNDANCY],
            computed: n as u8,
        };
        for i in 0..n {
            d.slots[i] = self.family.hash(i, key);
        }
        let victim = 1 - self.mru[set] as usize;
        if !self.entries[base + victim].valid {
            // First install in this slot: journal it for zero-on-drop.
            if self.touched_overflow || self.touched.len() >= self.journal_cap() {
                self.touched_overflow = true;
            } else {
                self.touched.push((base + victim) as u32);
            }
        }
        self.entries[base + victim] = Entry { key: *key, digests: d, valid: true };
        self.mru[set] = victim as u8;
        d
    }

    /// Checksum of `key` (cached along the same path).
    pub fn checksum32(&mut self, key: &[u8; KEY_BYTES]) -> u32 {
        self.digests(key, 0).checksum
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            0.0
        } else {
            self.stats.hits as f64 / total as f64
        }
    }
}

impl Drop for KeyScratch {
    fn drop(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        if self.touched_overflow {
            self.entries.fill(EMPTY);
        } else {
            for &idx in &self.touched {
                self.entries[idx as usize] = EMPTY;
            }
        }
        self.mru.fill(0);
        if let Ok(mut pool) = scratch_pool().lock() {
            if pool.len() < SCRATCH_POOL_MAX {
                pool.push((std::mem::take(&mut self.entries), std::mem::take(&mut self.mru)));
            }
        }
    }
}

impl std::fmt::Debug for KeyScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyScratch")
            .field("entries", &self.entries.len())
            .field("family", &self.family.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{checksum32, Checksummer};

    fn key(v: u64) -> [u8; KEY_BYTES] {
        let mut k = [0u8; KEY_BYTES];
        k[..8].copy_from_slice(&v.to_be_bytes());
        k
    }

    #[test]
    fn digests_match_direct_computation() {
        let mut s = KeyScratch::new(64, 4);
        let fam = HashFamily::new(4);
        let cs = Checksummer::new();
        for v in 0..200u64 {
            let k = key(v);
            let d = s.digests(&k, 4);
            assert_eq!(d.checksum, cs.checksum32(&k));
            assert_eq!(d.checksum, checksum32(&k));
            for i in 0..4 {
                assert_eq!(d.slots[i], fam.hash(i, &k), "slot digest {i} for key {v}");
            }
        }
    }

    #[test]
    fn repeated_key_hits() {
        let mut s = KeyScratch::new(64, 2);
        let k = key(42);
        s.digests(&k, 2);
        assert_eq!(s.stats, ScratchStats { hits: 0, misses: 1 });
        for _ in 0..10 {
            s.digests(&k, 2);
        }
        assert_eq!(s.stats, ScratchStats { hits: 10, misses: 1 });
        assert!(s.hit_rate() > 0.9);
    }

    #[test]
    fn two_way_sets_survive_a_conflicting_pair() {
        // Two keys in the same set must coexist (the direct-mapped failure
        // mode); alternate between them and expect hits after the first
        // pass regardless of which set they land in.
        let mut s = KeyScratch::new(32, 2);
        let (a, b) = (key(1), key(2));
        s.digests(&a, 2);
        s.digests(&b, 2);
        let misses_after_warm = s.stats.misses;
        for _ in 0..20 {
            s.digests(&a, 2);
            s.digests(&b, 2);
        }
        assert_eq!(s.stats.misses, misses_after_warm, "alternating pair should always hit");
        assert_eq!(s.stats.hits, 40);
    }

    #[test]
    fn redundancy_extension_recomputes_consistently() {
        let mut s = KeyScratch::new(64, 8);
        let fam = HashFamily::new(8);
        let k = key(7);
        let d2 = s.digests(&k, 2);
        assert_eq!(d2.computed, 2);
        let d8 = s.digests(&k, 8);
        assert_eq!(d8.computed, 8);
        for i in 0..8 {
            assert_eq!(d8.slots[i], fam.hash(i, &k));
        }
        // And the extension preserved the first two digests.
        assert_eq!(d8.slots[0], d2.slots[0]);
        assert_eq!(d8.slots[1], d2.slots[1]);
    }

    #[test]
    fn colliding_slots_evict_and_stay_correct() {
        // Tiny cache: plenty of evictions; correctness must not depend on
        // hit rate.
        let mut s = KeyScratch::new(16, 2);
        let fam = HashFamily::new(2);
        for round in 0..3 {
            for v in 0..500u64 {
                let k = key(v);
                let d = s.digests(&k, 2);
                assert_eq!(d.slots[0], fam.hash(0, &k), "round {round} key {v}");
                assert_eq!(d.slots[1], fam.hash(1, &k), "round {round} key {v}");
            }
        }
        assert!(s.stats.misses > 0);
    }

    #[test]
    #[should_panic]
    fn over_family_redundancy_panics() {
        let mut s = KeyScratch::new(16, 2);
        s.digests(&key(1), 3);
    }
}

//! Hash-function families for redundancy slot selection and key checksums.

use crate::crc::Crc32;
use crate::polynomials::{CHECKSUM_PARAMS, INDEX_POLYS, MAX_REDUNDANCY};

/// Map a 32-bit digest uniformly onto `0..slots` — the shared reduction
/// used by both the translator's address generation and the collector's
/// query-side recomputation (they must agree bit-for-bit).
///
/// For tables that fit 32 bits this is a multiply-shift (Lemire's
/// fastrange), which the hot path prefers over a 64-bit division; larger
/// tables fall back to modulo.
#[inline]
pub fn slot_of(digest: u32, slots: u64) -> u64 {
    if slots <= u32::MAX as u64 {
        (digest as u64 * slots) >> 32
    } else {
        digest as u64 % slots
    }
}

/// A family of `n` independent hash functions `h_0 .. h_{n-1}`, each a
/// distinct CRC32, as used by the translator to compute the `N` redundancy
/// slots of Key-Write / Key-Increment and the `N` chunks of Postcarding.
#[derive(Debug, Clone)]
pub struct HashFamily {
    members: Vec<Crc32>,
}

impl HashFamily {
    /// Create a family with `n` members (`1 ..= MAX_REDUNDANCY`).
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds [`MAX_REDUNDANCY`].
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=MAX_REDUNDANCY).contains(&n),
            "hash family size {n} out of range 1..={MAX_REDUNDANCY}"
        );
        HashFamily {
            members: INDEX_POLYS[..n].iter().map(|p| Crc32::new(*p)).collect(),
        }
    }

    /// Number of members in the family.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family is empty (never true for a constructed family).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Hash `key` with member `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn hash(&self, i: usize, key: &[u8]) -> u32 {
        self.members[i].compute(key)
    }

    /// Slot index for member `i` over a table of `slots` entries
    /// (`h_0(n, K) mod Buf_len` in Algorithm 1; the reduction is
    /// [`slot_of`]).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn slot(&self, i: usize, key: &[u8], slots: u64) -> u64 {
        assert!(slots > 0, "slot table must be non-empty");
        slot_of(self.hash(i, key), slots)
    }

    /// All `n` slot indices for `key` (may contain duplicates when two
    /// members collide modulo `slots`, exactly as on the hardware).
    pub fn slots(&self, key: &[u8], slots: u64) -> Vec<u64> {
        (0..self.len()).map(|i| self.slot(i, key, slots)).collect()
    }
}

/// The shared checksum engine. Table construction builds 8KB of slice-by-8
/// tables, so it must happen once per process, not once per call — the
/// Postcarding hot path computes a hop checksum per report.
fn checksum_engine() -> &'static Crc32 {
    static ENGINE: std::sync::OnceLock<Crc32> = std::sync::OnceLock::new();
    ENGINE.get_or_init(|| Crc32::new(CHECKSUM_PARAMS))
}

/// The 32-bit key checksum (`h1` in Algorithm 1) stored alongside telemetry
/// values for query validation.
pub fn checksum32(key: &[u8]) -> u32 {
    checksum_engine().compute(key)
}

/// A `b`-bit checksum (`b <= 32`), used by the Postcarding primitive where
/// slot widths below 32 bits trade memory for collision probability
/// (Appendix A.6).
pub fn checksum_b(key: &[u8], b: u32) -> u32 {
    assert!((1..=32).contains(&b), "checksum width {b} out of range 1..=32");
    let full = checksum32(key);
    if b == 32 {
        full
    } else {
        full & ((1u32 << b) - 1)
    }
}

/// A reusable checksum engine for hot paths (query loops, translators).
#[derive(Debug, Clone)]
pub struct Checksummer {
    engine: Crc32,
}

impl Checksummer {
    /// Build the engine once.
    pub fn new() -> Self {
        Checksummer {
            engine: Crc32::new(CHECKSUM_PARAMS),
        }
    }

    /// 32-bit checksum of `key`.
    pub fn checksum32(&self, key: &[u8]) -> u32 {
        self.engine.compute(key)
    }

    /// `b`-bit checksum of `key`.
    pub fn checksum_b(&self, key: &[u8], b: u32) -> u32 {
        assert!((1..=32).contains(&b));
        let full = self.engine.compute(key);
        if b == 32 {
            full
        } else {
            full & ((1u32 << b) - 1)
        }
    }
}

impl Default for Checksummer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_in_range() {
        let fam = HashFamily::new(4);
        for k in 0u32..100 {
            for s in fam.slots(&k.to_be_bytes(), 17) {
                assert!(s < 17);
            }
        }
    }

    #[test]
    fn checksum_independent_of_index_hashes() {
        let fam = HashFamily::new(8);
        let key = b"10.0.0.1:443->10.0.0.2:80/6";
        let cs = checksum32(key);
        for i in 0..8 {
            assert_ne!(cs, fam.hash(i, key));
        }
    }

    #[test]
    fn checksum_b_masks_high_bits() {
        let key = b"some-key";
        assert_eq!(checksum_b(key, 32), checksum32(key));
        assert_eq!(checksum_b(key, 8), checksum32(key) & 0xFF);
        assert_eq!(checksum_b(key, 1) & !1, 0);
    }

    #[test]
    fn checksummer_matches_free_functions() {
        let cs = Checksummer::new();
        let key = b"flow-42";
        assert_eq!(cs.checksum32(key), checksum32(key));
        assert_eq!(cs.checksum_b(key, 16), checksum_b(key, 16));
    }

    #[test]
    #[should_panic]
    fn zero_sized_family_rejected() {
        let _ = HashFamily::new(0);
    }

    #[test]
    #[should_panic]
    fn oversized_family_rejected() {
        let _ = HashFamily::new(9);
    }

    #[test]
    fn family_is_deterministic() {
        let a = HashFamily::new(3);
        let b = HashFamily::new(3);
        for i in 0..3 {
            assert_eq!(a.hash(i, b"key"), b.hash(i, b"key"));
        }
    }
}

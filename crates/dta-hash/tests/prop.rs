//! Property tests for the CRC engine and hash families.

use dta_hash::{checksum32, checksum_b, Crc32, CrcParams, HashFamily};
use proptest::prelude::*;

proptest! {
    /// The slice-by-8 fast path equals the byte-at-a-time oracle for every
    /// preset parameter set, at arbitrary lengths up to 4096 and arbitrary
    /// content.
    #[test]
    fn slice_by_8_equals_bytewise_oracle(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        preset in 0usize..CrcParams::ALL_PRESETS.len(),
    ) {
        let crc = Crc32::new(CrcParams::ALL_PRESETS[preset]);
        prop_assert_eq!(crc.compute(&data), crc.compute_bytewise(&data));
    }

    /// Incremental slice-by-8 over arbitrary chunk boundaries equals the
    /// oracle (chunk tails shorter than 8 bytes exercise the mixed walk).
    #[test]
    fn chunked_slice_by_8_equals_oracle(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        chunk in 1usize..64,
    ) {
        let crc = Crc32::new(CrcParams::CASTAGNOLI);
        let mut st = crc.start();
        for piece in data.chunks(chunk) {
            st = crc.update(st, piece);
        }
        prop_assert_eq!(crc.finish(st), crc.compute_bytewise(&data));
    }

    /// Incremental CRC over arbitrary chunkings equals one-shot CRC.
    #[test]
    fn incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let crc = Crc32::new(CrcParams::CASTAGNOLI);
        let mut cut_points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        cut_points.sort_unstable();
        cut_points.dedup();
        let mut st = crc.start();
        let mut prev = 0;
        for &cut in &cut_points {
            st = crc.update(st, &data[prev..cut]);
            prev = cut;
        }
        st = crc.update(st, &data[prev..]);
        prop_assert_eq!(crc.finish(st), crc.compute(&data));
    }

    /// Single-bit flips always change the CRC (Hamming distance ≥ 1
    /// detection — the property checksums rely on).
    #[test]
    fn single_bit_flip_changes_crc(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let crc = Crc32::new(CrcParams::IEEE);
        let mut flipped = data.clone();
        let idx = byte.index(data.len());
        flipped[idx] ^= 1 << bit;
        prop_assert_ne!(crc.compute(&data), crc.compute(&flipped));
    }

    /// checksum_b is always a prefix-mask of checksum32.
    #[test]
    fn checksum_b_is_masked_checksum32(data in proptest::collection::vec(any::<u8>(), 0..64), b in 1u32..=32) {
        let full = checksum32(&data);
        let masked = checksum_b(&data, b);
        if b == 32 {
            prop_assert_eq!(masked, full);
        } else {
            prop_assert_eq!(masked, full & ((1 << b) - 1));
            prop_assert_eq!(masked >> b, 0);
        }
    }

    /// Family members are deterministic and bounded.
    #[test]
    fn family_slots_deterministic_and_bounded(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        slots in 1u64..1_000_000,
        n in 1usize..=8,
    ) {
        let fam = HashFamily::new(n);
        let a = fam.slots(&key, slots);
        let b = fam.slots(&key, slots);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.iter().all(|s| *s < slots));
    }

    /// Different family members disagree on random keys almost always;
    /// verify they are not all equal over a batch (catches accidentally
    /// identical polynomials).
    #[test]
    fn family_members_not_identical(keys in proptest::collection::vec(any::<u64>(), 16..32)) {
        let fam = HashFamily::new(4);
        let mut all_same = true;
        for k in &keys {
            let h: Vec<u32> = (0..4).map(|i| fam.hash(i, &k.to_be_bytes())).collect();
            if h.windows(2).any(|w| w[0] != w[1]) {
                all_same = false;
                break;
            }
        }
        prop_assert!(!all_same, "four 'independent' hashes agreed on every key");
    }
}

//! Exact-match match-action tables.
//!
//! The translator keeps "lookup tables filled with RDMA metadata" (§5.2) —
//! per-collector QP numbers, rkeys, base addresses — installed by the switch
//! CPU. We model an exact-match table with bounded capacity; lookups are
//! counted toward the match-crossbar budget.

use std::collections::HashMap;
use std::hash::Hash;

/// A capacity-bounded exact-match table.
#[derive(Debug, Clone)]
pub struct ExactTable<K: Eq + Hash + Clone, A: Clone> {
    entries: HashMap<K, A>,
    capacity: usize,
    /// Lookups performed (hit or miss).
    pub lookups: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl<K: Eq + Hash + Clone, A: Clone> ExactTable<K, A> {
    /// Table with room for `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ExactTable { entries: HashMap::new(), capacity, lookups: 0, misses: 0 }
    }

    /// Install or update an entry (control-plane write).
    ///
    /// Returns `false` when the table is full and the key is new.
    pub fn insert(&mut self, key: K, action: A) -> bool {
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.insert(key, action);
        true
    }

    /// Data-plane lookup.
    pub fn lookup(&mut self, key: &K) -> Option<A> {
        self.lookups += 1;
        let hit = self.entries.get(key).cloned();
        if hit.is_none() {
            self.misses += 1;
        }
        hit
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &K) -> Option<A> {
        self.entries.remove(key)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = ExactTable::new(4);
        assert!(t.insert("qp1", 100u32));
        assert_eq!(t.lookup(&"qp1"), Some(100));
        assert_eq!(t.lookup(&"qp2"), None);
        assert_eq!(t.lookups, 2);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn capacity_enforced_for_new_keys_only() {
        let mut t = ExactTable::new(2);
        assert!(t.insert(1, 'a'));
        assert!(t.insert(2, 'b'));
        assert!(!t.insert(3, 'c'), "table full");
        assert!(t.insert(1, 'z'), "updates always allowed");
        assert_eq!(t.lookup(&1), Some('z'));
    }

    #[test]
    fn remove_frees_space() {
        let mut t = ExactTable::new(1);
        t.insert(1, ());
        assert!(!t.insert(2, ()));
        t.remove(&1);
        assert!(t.insert(2, ()));
    }
}

//! Hardware resource accounting.
//!
//! Figure 9 and Table 3 of the paper report resource usage as a percentage
//! of the chip, across six resource classes. Components declare their
//! footprints as [`ResourceVector`]s; vectors add when features compose
//! (e.g., translator base + Append batching in Table 3).

use serde::{Deserialize, Serialize};

/// The resource classes reported in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Static RAM (register arrays, table entries).
    Sram,
    /// Match crossbar input bits.
    MatchCrossbar,
    /// Logical table identifiers.
    TableIds,
    /// Hash distribution units (feed the CRC engine outputs to ALUs/tables).
    HashDist,
    /// Ternary match bus.
    TernaryBus,
    /// Stateful ALUs (register access units).
    StatefulAlu,
}

impl ResourceClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [ResourceClass; 6] = [
        ResourceClass::Sram,
        ResourceClass::MatchCrossbar,
        ResourceClass::TableIds,
        ResourceClass::HashDist,
        ResourceClass::TernaryBus,
        ResourceClass::StatefulAlu,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ResourceClass::Sram => "SRAM",
            ResourceClass::MatchCrossbar => "Match XBar",
            ResourceClass::TableIds => "Table IDs",
            ResourceClass::HashDist => "Hash Dist",
            ResourceClass::TernaryBus => "Ternary Bus",
            ResourceClass::StatefulAlu => "Stateful ALU",
        }
    }
}

/// A resource usage vector, in percent of the chip's capacity per class.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    /// SRAM %.
    pub sram: f64,
    /// Match crossbar %.
    pub match_xbar: f64,
    /// Table IDs %.
    pub table_ids: f64,
    /// Hash distribution units %.
    pub hash_dist: f64,
    /// Ternary bus %.
    pub ternary_bus: f64,
    /// Stateful ALUs %.
    pub stateful_alu: f64,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        sram: 0.0,
        match_xbar: 0.0,
        table_ids: 0.0,
        hash_dist: 0.0,
        ternary_bus: 0.0,
        stateful_alu: 0.0,
    };

    /// Usage for one class.
    pub fn get(&self, class: ResourceClass) -> f64 {
        match class {
            ResourceClass::Sram => self.sram,
            ResourceClass::MatchCrossbar => self.match_xbar,
            ResourceClass::TableIds => self.table_ids,
            ResourceClass::HashDist => self.hash_dist,
            ResourceClass::TernaryBus => self.ternary_bus,
            ResourceClass::StatefulAlu => self.stateful_alu,
        }
    }

    /// Whether every class fits in the chip (≤ 100%).
    pub fn fits(&self) -> bool {
        ResourceClass::ALL.iter().all(|c| self.get(*c) <= 100.0)
    }

    /// The most-utilized class and its usage.
    pub fn bottleneck(&self) -> (ResourceClass, f64) {
        ResourceClass::ALL
            .iter()
            .map(|c| (*c, self.get(*c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty class list")
    }

    /// Scale every class by `f` (e.g., batching cost linear in batch size).
    pub fn scale(&self, f: f64) -> ResourceVector {
        ResourceVector {
            sram: self.sram * f,
            match_xbar: self.match_xbar * f,
            table_ids: self.table_ids * f,
            hash_dist: self.hash_dist * f,
            ternary_bus: self.ternary_bus * f,
            stateful_alu: self.stateful_alu * f,
        }
    }
}

impl core::ops::Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            sram: self.sram + rhs.sram,
            match_xbar: self.match_xbar + rhs.match_xbar,
            table_ids: self.table_ids + rhs.table_ids,
            hash_dist: self.hash_dist + rhs.hash_dist,
            ternary_bus: self.ternary_bus + rhs.ternary_bus,
            stateful_alu: self.stateful_alu + rhs.stateful_alu,
        }
    }
}

impl core::ops::AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl core::fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for (i, c) in ResourceClass::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {:.1}%", c.label(), self.get(*c))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_per_class() {
        let a = ResourceVector { sram: 10.0, stateful_alu: 5.0, ..ResourceVector::ZERO };
        let b = ResourceVector { sram: 3.0, hash_dist: 2.0, ..ResourceVector::ZERO };
        let c = a + b;
        assert!((c.sram - 13.0).abs() < 1e-12);
        assert!((c.stateful_alu - 5.0).abs() < 1e-12);
        assert!((c.hash_dist - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fits_detects_overflow() {
        let ok = ResourceVector { sram: 99.9, ..ResourceVector::ZERO };
        let over = ResourceVector { stateful_alu: 100.1, ..ResourceVector::ZERO };
        assert!(ok.fits());
        assert!(!over.fits());
    }

    #[test]
    fn bottleneck_finds_max() {
        let v = ResourceVector { sram: 13.2, stateful_alu: 56.3, ..ResourceVector::ZERO };
        let (c, pct) = v.bottleneck();
        assert_eq!(c, ResourceClass::StatefulAlu);
        assert!((pct - 56.3).abs() < 1e-12);
    }

    #[test]
    fn scale_is_linear() {
        let v = ResourceVector { sram: 2.0, ..ResourceVector::ZERO };
        assert!((v.scale(8.0).sram - 16.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_all_classes() {
        let s = ResourceVector::ZERO.to_string();
        for c in ResourceClass::ALL {
            assert!(s.contains(c.label()), "missing {}", c.label());
        }
    }
}

//! The packet replication engine (PRE).
//!
//! "The redundancy in Key-Write, Key-Increment, and Postcarding is generated
//! by the packet replication engine through multicasting. The switch CPU
//! crafts specific multicast rules to force the ASIC to emit several packets
//! at the correct egress port as triggered by a single DTA ingress." (§5.2)
//!
//! We model multicast groups as a replication factor plus the per-copy
//! replica id (`rid`) the egress pipeline reads to pick the hash function of
//! each redundant copy.

use std::collections::HashMap;

/// A replicated copy: the payload plus its replica index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replica<T> {
    /// Replica index `0..n`; the egress pipeline uses it as the hash-family
    /// member selector.
    pub rid: u16,
    /// The replicated item.
    pub item: T,
}

/// Small-group fast path width: redundancy groups live at gid 1..=8, so the
/// dataplane lookup is an array index, not a hash.
const SMALL_GIDS: usize = 16;

/// The packet replication engine: multicast group table + replication.
#[derive(Debug, Default)]
pub struct MulticastEngine {
    groups: HashMap<u16, u16>,
    /// Mirror of `groups` for gid < SMALL_GIDS (0 = not installed); the
    /// per-packet lookup the redundancy groups take.
    small: [u16; SMALL_GIDS],
    /// Total copies emitted (for pipeline load accounting).
    pub copies_emitted: u64,
}

impl MulticastEngine {
    /// Engine with an empty group table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install multicast group `gid` emitting `copies` replicas
    /// (control-plane operation).
    ///
    /// # Panics
    /// Panics if `copies` is zero.
    pub fn install_group(&mut self, gid: u16, copies: u16) {
        assert!(copies > 0, "a multicast group must emit at least one copy");
        self.groups.insert(gid, copies);
        if (gid as usize) < SMALL_GIDS {
            self.small[gid as usize] = copies;
        }
    }

    /// Replication factor of `gid`.
    pub fn group_size(&self, gid: u16) -> Option<u16> {
        self.groups.get(&gid).copied()
    }

    /// Replicate `item` through group `gid`. Returns one replica per copy,
    /// each tagged with its replica id, or `None` for an uninstalled group
    /// (the ASIC would drop the packet).
    pub fn replicate<T: Clone>(&mut self, gid: u16, item: T) -> Option<Vec<Replica<T>>> {
        let n = self.replicate_count(gid)?;
        Some((0..n).map(|rid| Replica { rid, item: item.clone() }).collect())
    }

    /// Allocation-free replication: account for group `gid` firing once and
    /// return its copy count, or `None` for an uninstalled group. Hot paths
    /// iterate `0..n` as the replica ids instead of materializing
    /// [`Replica`] values.
    #[inline]
    pub fn replicate_count(&mut self, gid: u16) -> Option<u16> {
        let n = if (gid as usize) < SMALL_GIDS {
            match self.small[gid as usize] {
                0 => return None,
                n => n,
            }
        } else {
            *self.groups.get(&gid)?
        };
        self.copies_emitted += n as u64;
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_tags_rids() {
        let mut pre = MulticastEngine::new();
        pre.install_group(2, 4);
        let reps = pre.replicate(2, "pkt").unwrap();
        assert_eq!(reps.len(), 4);
        let rids: Vec<u16> = reps.iter().map(|r| r.rid).collect();
        assert_eq!(rids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uninstalled_group_drops() {
        let mut pre = MulticastEngine::new();
        assert!(pre.replicate(9, ()).is_none());
    }

    #[test]
    fn copies_are_counted() {
        let mut pre = MulticastEngine::new();
        pre.install_group(1, 2);
        pre.replicate(1, ());
        pre.replicate(1, ());
        assert_eq!(pre.copies_emitted, 4);
    }

    #[test]
    #[should_panic]
    fn zero_copy_group_rejected() {
        let mut pre = MulticastEngine::new();
        pre.install_group(1, 0);
    }
}

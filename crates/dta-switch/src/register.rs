//! Stateful register arrays.
//!
//! Tofino register arrays live in stage-local SRAM and are accessed through
//! stateful ALUs, at most once per array per pipeline traversal. Code that
//! models switch logic (the translator's Postcarding cache, Append batch
//! buffers, per-list head pointers) uses [`RegisterArray`] rather than plain
//! `Vec`s so that every access is counted — the count is what Table 3's
//! stateful-ALU column is derived from.

/// A register array of `W`-typed cells with access accounting.
#[derive(Debug, Clone)]
pub struct RegisterArray<T: Copy + Default> {
    cells: Vec<T>,
    /// Stateful-ALU operations performed (each read-modify-write is one).
    pub accesses: u64,
}

impl<T: Copy + Default> RegisterArray<T> {
    /// Array of `size` default-initialized cells.
    pub fn new(size: usize) -> Self {
        RegisterArray { cells: vec![T::default(); size], accesses: 0 }
    }

    /// Array of `size` cells from one zeroed allocation (`alloc_zeroed`
    /// maps untouched zero pages, where the element-wise fill of
    /// [`RegisterArray::new`] writes every byte — real milliseconds for
    /// SRAM-scale arrays rebuilt per scenario run).
    ///
    /// # Safety
    /// `T` must be valid (and equal to `T::default()`) as the all-zero bit
    /// pattern.
    pub unsafe fn new_zeroed(size: usize) -> Self {
        let cells = unsafe { Box::<[T]>::new_zeroed_slice(size).assume_init() }.into_vec();
        RegisterArray { cells, accesses: 0 }
    }

    /// Rebuild an array around recycled cell storage (e.g., a
    /// default-filled buffer recovered by [`RegisterArray::take_cells`]).
    /// The access counter starts at zero; the caller vouches that `cells`
    /// holds the intended initial contents.
    pub fn from_cells(cells: Vec<T>) -> Self {
        RegisterArray { cells, accesses: 0 }
    }

    /// Take the cell storage out (for recycling pools), leaving the array
    /// empty.
    pub fn take_cells(&mut self) -> Vec<T> {
        std::mem::take(&mut self.cells)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read cell `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds (a P4 compiler would reject it).
    pub fn read(&mut self, i: usize) -> T {
        self.accesses += 1;
        self.cells[i]
    }

    /// Write cell `i`.
    pub fn write(&mut self, i: usize, v: T) {
        self.accesses += 1;
        self.cells[i] = v;
    }

    /// Read-modify-write cell `i` with `f`, returning the *previous* value
    /// (the stateful-ALU idiom).
    pub fn rmw(&mut self, i: usize, f: impl FnOnce(T) -> T) -> T {
        self.accesses += 1;
        let old = self.cells[i];
        self.cells[i] = f(old);
        old
    }

    /// Reset all cells to default (control-plane operation, not counted).
    pub fn clear(&mut self) {
        self.cells.fill(T::default());
    }

    /// SRAM bytes this array occupies.
    pub fn sram_bytes(&self) -> usize {
        self.cells.len() * core::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_returns_previous() {
        let mut r = RegisterArray::<u32>::new(4);
        assert_eq!(r.rmw(2, |v| v + 5), 0);
        assert_eq!(r.rmw(2, |v| v * 2), 5);
        assert_eq!(r.read(2), 10);
        assert_eq!(r.accesses, 3);
    }

    #[test]
    fn clear_resets_but_keeps_counters() {
        let mut r = RegisterArray::<u64>::new(2);
        r.write(0, 9);
        r.clear();
        assert_eq!(r.read(0), 0);
        assert_eq!(r.accesses, 2); // write + read; clear not counted
    }

    #[test]
    fn sram_accounting() {
        let r = RegisterArray::<u32>::new(32 * 1024);
        assert_eq!(r.sram_bytes(), 128 * 1024);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut r = RegisterArray::<u8>::new(1);
        let _ = r.read(1);
    }
}

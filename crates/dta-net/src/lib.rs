//! Event-driven network simulation substrate for DTA.
//!
//! The paper's testbed is two x86 servers joined by a Tofino switch over
//! 100G links, plus (for the motivating scale arguments) data-center fabrics
//! of thousands of switches. This crate replaces that hardware with an
//! event-driven simulator:
//!
//! * [`time`] — simulated nanosecond clock and event queue.
//! * [`packet`] — the datagram unit carried between simulated nodes.
//! * [`link`] — bandwidth/latency links with finite queues, lossy or
//!   lossless (PFC-paused) drop disciplines.
//! * [`faults`] — smoltcp-style fault injection: random drop, corruption,
//!   reordering (the paper's primitives must tolerate in-transit loss).
//! * [`node`] / [`network`] — node trait and the simulation engine.
//! * [`topology`] — fat-tree builder and shortest-path routing, used by the
//!   Figure 3 / Figure 7b network-scale experiments.

pub mod faults;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod time;
pub mod topology;

pub use faults::{FaultConfig, FaultInjector, FaultTotals};
pub use link::{Link, LinkConfig, LinkStats, QueueDiscipline};
pub use network::{Network, NetworkStats};
pub use node::{Emission, NetNode, NodeId};
pub use packet::Packet;
pub use time::{EventQueue, HeapEventQueue, SimTime, GBPS_100, GBPS_25, GBPS_400};
pub use topology::{FatTree, Routing, Topology};

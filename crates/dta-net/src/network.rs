//! The simulation engine: nodes + links + routing + event loop.
//!
//! State is **dense and index-addressed**: nodes live in a `NodeId`-indexed
//! arena, links and their fault injectors in a flat arena addressed by a
//! fused `(from, dst) -> link` route table resolved once at build time. A
//! packet hop therefore costs two array indexes — no tuple-key hashing —
//! and the event queue is the timing wheel of [`crate::time`]. See
//! DESIGN.md ("Engine data layout").

use crate::faults::{FaultInjector, FaultOutcome};
use crate::link::{EnqueueOutcome, Link, LinkConfig};
use crate::node::{Emission, NetNode, NodeId};
use crate::packet::Packet;
use crate::time::{EventQueue, SimTime};
use crate::topology::Routing;

/// Engine-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Hop-by-hop forwarding decisions taken.
    pub forwarded: u64,
    /// Packets lost to link queues, fault injection, unroutable
    /// destinations, or arrival at a removed node.
    pub dropped: u64,
    /// Packets handed to intercepting nodes (e.g., the DTA translator).
    pub intercepted: u64,
}

enum Event {
    /// A packet's last bit arrived at `at_node`.
    Arrive { at_node: NodeId, packet: Packet },
    /// Deliver a tick to a node and reschedule.
    Tick { node: NodeId, period_ns: u64 },
}

struct NodeSlot {
    node: Box<dyn NetNode>,
    intercepting: bool,
}

/// One entry of the node arena.
enum NodeState {
    /// Never registered: packets transit (or sink as delivered if final) —
    /// a destination without behaviour.
    Vacant,
    /// A live node.
    Occupied(NodeSlot),
    /// Taken back out via [`Network::remove_node`]: packets arriving here
    /// sink and count as dropped, and its ticks stop rescheduling.
    Removed,
}

/// Unroutable / no-link sentinel in the fused route table.
const NO_ROUTE: u32 = u32::MAX;

/// An event-driven network of nodes joined by links.
///
/// Routing is hop-by-hop: a packet emitted with destination `d` follows the
/// routing table through intermediate nodes. A node registered as
/// *intercepting* receives every packet that transits it — this is how the
/// DTA translator (the collector's ToR) grabs DTA reports addressed to the
/// collector IP and substitutes RDMA traffic (§3 of the paper).
pub struct Network {
    /// Node arena, indexed by `NodeId`.
    nodes: Vec<NodeState>,
    /// Link arena, in installation order.
    links: Vec<Link>,
    /// Parallel to `links`: the node each link delivers to.
    link_to: Vec<u32>,
    /// Parallel to `links`: the link's fault injector, if any.
    faults: Vec<Option<FaultInjector>>,
    /// Per-node egress ports: `(to, link index)`, sorted by `to`. Build-time
    /// and stats lookups only — the hot path uses the fused `route` table.
    egress: Vec<Vec<(u32, u32)>>,
    routing: Routing,
    /// Fused next-hop table: `route[from * n + dst]` is the egress link
    /// index toward `dst`, or [`NO_ROUTE`]. Rebuilt lazily after topology
    /// edits.
    route: Vec<u32>,
    route_ready: bool,
    events: EventQueue<Event>,
    now: SimTime,
    /// Recycled emission buffer handed to node callbacks (never reentered:
    /// emission scheduling only pushes events, it cannot dispatch).
    scratch: Vec<Emission>,
    /// Engine counters.
    pub stats: NetworkStats,
}

impl Network {
    /// Empty network with the given routing table.
    pub fn new(routing: Routing) -> Self {
        let n = routing.len() as usize;
        let mut nodes = Vec::with_capacity(n);
        nodes.resize_with(n, || NodeState::Vacant);
        Network {
            nodes,
            links: Vec::new(),
            link_to: Vec::new(),
            faults: Vec::new(),
            egress: vec![Vec::new(); n],
            routing,
            route: Vec::new(),
            route_ready: false,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            scratch: Vec::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Grow the arenas to cover `id` (ids past the routing table are legal
    /// for nodes; they are simply unroutable as destinations).
    fn ensure_node(&mut self, id: NodeId) {
        let need = id.0 as usize + 1;
        if self.nodes.len() < need {
            self.nodes.resize_with(need, || NodeState::Vacant);
            self.egress.resize(need, Vec::new());
        }
    }

    /// Register a node.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn NetNode>) {
        self.ensure_node(id);
        self.nodes[id.0 as usize] = NodeState::Occupied(NodeSlot { node, intercepting: false });
    }

    /// Register an intercepting node (receives transiting packets).
    pub fn add_interceptor(&mut self, id: NodeId, node: Box<dyn NetNode>) {
        self.ensure_node(id);
        self.nodes[id.0 as usize] = NodeState::Occupied(NodeSlot { node, intercepting: true });
    }

    /// Take a node back out of the network (e.g., to downcast and inspect
    /// its state after a run). Packets arriving for it afterwards sink and
    /// count in [`NetworkStats::dropped`] — its links and fault injectors
    /// stay installed but deliver into a hole, not to a ghost.
    pub fn remove_node(&mut self, id: NodeId) -> Option<Box<dyn NetNode>> {
        let state = self.nodes.get_mut(id.0 as usize)?;
        match std::mem::replace(state, NodeState::Removed) {
            NodeState::Occupied(s) => Some(s.node),
            NodeState::Removed => None,
            NodeState::Vacant => {
                // Nothing was ever here; keep vacant-slot semantics.
                *state = NodeState::Vacant;
                None
            }
        }
    }

    /// Borrow a live node in place (e.g., to downcast and quiesce it
    /// mid-run without disturbing its links or pending ticks).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut dyn NetNode> {
        match self.nodes.get_mut(id.0 as usize)? {
            NodeState::Occupied(s) => Some(s.node.as_mut()),
            _ => None,
        }
    }

    /// Index into the link arena of the `from -> to` port, if installed.
    fn port(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let ports = self.egress.get(from.0 as usize)?;
        ports
            .binary_search_by_key(&to.0, |&(t, _)| t)
            .ok()
            .map(|i| ports[i].1 as usize)
    }

    /// Install a unidirectional link. Reinstalling an existing direction
    /// replaces the link (and clears any fault injector on it).
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        self.ensure_node(from);
        self.ensure_node(to);
        if let Some(idx) = self.port(from, to) {
            self.links[idx] = Link::new(config);
            self.faults[idx] = None;
            return;
        }
        let idx = self.links.len() as u32;
        self.links.push(Link::new(config));
        self.link_to.push(to.0);
        self.faults.push(None);
        let ports = &mut self.egress[from.0 as usize];
        let at = ports.partition_point(|&(t, _)| t < to.0);
        ports.insert(at, (to.0, idx));
        self.route_ready = false;
    }

    /// Install a bidirectional link (two independent directions).
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.add_link(a, b, config);
        self.add_link(b, a, config);
    }

    /// Attach a fault injector to the `from -> to` direction.
    ///
    /// # Panics
    /// Panics if no `from -> to` link is installed — an injector models the
    /// wire of a specific link.
    pub fn add_faults(&mut self, from: NodeId, to: NodeId, injector: FaultInjector) {
        let idx = self
            .port(from, to)
            .unwrap_or_else(|| panic!("no link {from} -> {to} to attach faults to"));
        self.faults[idx] = Some(injector);
    }

    /// Schedule a periodic tick for `node`.
    pub fn add_tick(&mut self, node: NodeId, period_ns: u64) {
        self.events.push(self.now + period_ns, Event::Tick { node, period_ns });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters of the `from -> to` link, if one is installed.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<crate::link::LinkStats> {
        self.port(from, to).map(|i| self.links[i].stats)
    }

    /// Counters of the `from -> to` fault injector, if one is attached.
    pub fn fault_stats(&self, from: NodeId, to: NodeId) -> Option<crate::faults::FaultTotals> {
        self.port(from, to)
            .and_then(|i| self.faults[i].as_ref())
            .map(|inj| inj.totals())
    }

    /// Sum of every attached injector's counters (order-independent, so the
    /// scenario harness can report them bit-reproducibly).
    pub fn fault_totals(&self) -> crate::faults::FaultTotals {
        let mut total = crate::faults::FaultTotals::default();
        for inj in self.faults.iter().flatten() {
            total.merge(&inj.totals());
        }
        total
    }

    /// Sum of every link's counters.
    pub fn link_totals(&self) -> crate::link::LinkStats {
        let mut total = crate::link::LinkStats::default();
        for link in &self.links {
            total.merge(&link.stats);
        }
        total
    }

    /// Resolve the routing table against the installed ports into the
    /// fused per-node `(dst -> link)` table the hot path indexes.
    fn build_route(&mut self) {
        let n = self.routing.len() as usize;
        self.route.clear();
        self.route.resize(n * n, NO_ROUTE);
        for from in 0..n as u32 {
            for dst in 0..n as u32 {
                if let Some(next) = self.routing.next_hop(NodeId(from), NodeId(dst)) {
                    if let Some(idx) = self.port(NodeId(from), next) {
                        self.route[from as usize * n + dst as usize] = idx as u32;
                    }
                }
            }
        }
        self.route_ready = true;
    }

    /// Inject a packet from `origin` at the current time.
    pub fn send_from(&mut self, origin: NodeId, packet: Packet) {
        self.transmit_hop(origin, packet);
    }

    /// Process events until the queue is empty or `deadline` passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked event vanished");
            self.now = t;
            self.dispatch(ev);
            processed += 1;
        }
        self.now = self.now.max(deadline);
        processed
    }

    /// Run to quiescence (no pending events).
    pub fn run_to_idle(&mut self) -> u64 {
        let mut processed = 0;
        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            self.dispatch(ev);
            processed += 1;
        }
        processed
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrive { at_node, packet } => self.arrive(at_node, packet),
            Event::Tick { node, period_ns } => {
                let mut out = std::mem::take(&mut self.scratch);
                let keep = match self.nodes.get_mut(node.0 as usize) {
                    Some(NodeState::Occupied(slot)) => slot.node.tick(self.now, &mut out),
                    Some(NodeState::Removed) => {
                        self.scratch = out;
                        return; // stop rescheduling
                    }
                    _ => true,
                };
                for e in out.drain(..) {
                    self.schedule_emission(node, e);
                }
                self.scratch = out;
                if keep {
                    self.events.push(self.now + period_ns, Event::Tick { node, period_ns });
                }
            }
        }
    }

    /// A packet's last bit reached `at_node`: deliver, intercept, forward —
    /// or sink it (counted dropped) when the node was removed.
    fn arrive(&mut self, at_node: NodeId, packet: Packet) {
        let is_final = packet.dst == at_node;
        let receive = match self.nodes.get(at_node.0 as usize) {
            Some(NodeState::Removed) => {
                // Bugfix: links and injectors outlive their node; anything
                // they deliver here is loss, not a delivery to a ghost.
                self.stats.dropped += 1;
                return;
            }
            Some(NodeState::Occupied(slot)) => is_final || slot.intercepting,
            _ => is_final, // vacant: final packets sink as delivered
        };
        if !receive {
            self.stats.forwarded += 1;
            self.transmit_hop(at_node, packet);
            return;
        }
        if is_final {
            self.stats.delivered += 1;
        } else {
            self.stats.intercepted += 1;
        }
        let mut out = std::mem::take(&mut self.scratch);
        if let Some(NodeState::Occupied(slot)) = self.nodes.get_mut(at_node.0 as usize) {
            slot.node.receive(self.now, packet, &mut out);
        } // else: destination without behaviour: sink
        for e in out.drain(..) {
            self.schedule_emission(at_node, e);
        }
        self.scratch = out;
    }

    fn schedule_emission(&mut self, from: NodeId, emission: Emission) {
        if emission.delay_ns == 0 {
            self.transmit_hop(from, emission.packet);
        } else {
            // Model node-internal delay by re-arriving at self later; use a
            // direct event so no link is consumed.
            let at = self.now + emission.delay_ns;
            // Packets delayed inside a node resume the normal path after.
            self.events.push(
                at,
                Event::Arrive { at_node: from, packet: reroute_marker(emission.packet) },
            );
        }
    }

    /// Put `packet` on the egress link of `from` toward its next hop.
    fn transmit_hop(&mut self, from: NodeId, packet: Packet) {
        if !self.route_ready {
            self.build_route();
        }
        let packet = clear_marker(packet);
        let n = self.routing.len() as usize;
        let (f, d) = (from.0 as usize, packet.dst.0 as usize);
        let li = if f < n && d < n { self.route[f * n + d] } else { NO_ROUTE };
        if li == NO_ROUTE {
            self.stats.dropped += 1;
            return;
        }
        let li = li as usize;
        let next = NodeId(self.link_to[li]);
        // Fault injection first (models the wire), then queueing.
        let packet = match &mut self.faults[li] {
            Some(inj) => match inj.apply(packet) {
                FaultOutcome::Deliver(p) => p,
                FaultOutcome::DeliverDuplicated(p) => {
                    // Two back-to-back serializations of the same frame; the
                    // copy consumes link capacity like any packet and is not
                    // re-faulted.
                    let link = &mut self.links[li];
                    for copy in [p.clone(), p] {
                        match link.enqueue(self.now, copy.wire_len()) {
                            EnqueueOutcome::Delivered(t) => {
                                self.events
                                    .push(t, Event::Arrive { at_node: next, packet: copy });
                            }
                            EnqueueOutcome::Dropped => self.stats.dropped += 1,
                        }
                    }
                    return;
                }
                FaultOutcome::DeliverReordered(p) => {
                    // Penalize with one extra MTU serialization worth of
                    // delay so a later packet can overtake it.
                    let link = &mut self.links[li];
                    let extra = SimTime::tx_time(1500, link.config().bandwidth_bps) * 2;
                    match link.enqueue(self.now, p.wire_len()) {
                        EnqueueOutcome::Delivered(t) => {
                            self.events.push(t + extra, Event::Arrive { at_node: next, packet: p });
                        }
                        EnqueueOutcome::Dropped => self.stats.dropped += 1,
                    }
                    return;
                }
                FaultOutcome::Dropped => {
                    self.stats.dropped += 1;
                    return;
                }
            },
            None => packet,
        };
        match self.links[li].enqueue(self.now, packet.wire_len()) {
            EnqueueOutcome::Delivered(t) => {
                self.events.push(t, Event::Arrive { at_node: next, packet });
            }
            EnqueueOutcome::Dropped => self.stats.dropped += 1,
        }
    }
}

/// Marker priority bit used to tag node-internal re-deliveries so that an
/// intercepting node does not re-intercept its own delayed output.
const INTERNAL_MARK: u8 = 0x80;

fn reroute_marker(mut p: Packet) -> Packet {
    p.priority |= INTERNAL_MARK;
    p
}

fn clear_marker(mut p: Packet) -> Packet {
    p.priority &= !INTERNAL_MARK;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SinkNode;
    use crate::topology::Topology;
    use bytes::Bytes;

    /// Three nodes in a line: 0 -- 1 -- 2.
    fn line3() -> Network {
        let mut topo = Topology::new(3);
        topo.connect(NodeId(0), NodeId(1));
        topo.connect(NodeId(1), NodeId(2));
        let routing = topo.shortest_path_routing();
        let mut net = Network::new(routing);
        for (a, b) in [(0, 1), (1, 2)] {
            net.add_duplex_link(NodeId(a), NodeId(b), LinkConfig::dc_100g());
        }
        net
    }

    #[test]
    fn packet_traverses_two_hops() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.forwarded, 1);
    }

    #[test]
    fn interceptor_grabs_transiting_packet() {
        let mut net = line3();
        net.add_interceptor(NodeId(1), Box::<SinkNode>::default());
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        // The interceptor swallowed the packet: nothing reached node 2.
        assert_eq!(net.stats.intercepted, 1);
        assert_eq!(net.stats.delivered, 0);
    }

    #[test]
    fn loss_is_counted() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.add_faults(NodeId(0), NodeId(1), FaultInjector::new(crate::FaultConfig::lossy(1.0), 1));
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        assert_eq!(net.stats.dropped, 1);
        assert_eq!(net.stats.delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice_and_is_counted() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        let cfg = crate::FaultConfig { duplicate_chance: 1.0, ..crate::FaultConfig::none() };
        net.add_faults(NodeId(0), NodeId(1), FaultInjector::new(cfg, 9));
        for _ in 0..10 {
            net.send_from(
                NodeId(0),
                Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])),
            );
        }
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 20, "every packet must arrive twice");
        assert_eq!(net.fault_totals().duplicated, 10);
        assert_eq!(net.fault_stats(NodeId(0), NodeId(1)).unwrap().duplicated, 10);
        assert_eq!(net.fault_stats(NodeId(1), NodeId(2)), None);
        // Both copies consumed link capacity on the faulted hop.
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).unwrap().transmitted, 20);
        assert_eq!(net.link_totals().transmitted, 40);
    }

    #[test]
    fn unroutable_packet_dropped() {
        let mut net = line3();
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(99), Bytes::new()));
        net.run_to_idle();
        assert_eq!(net.stats.dropped, 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 1500])));
        // Deadline before the first hop's 1120ns arrival: nothing processed.
        let n = net.run_until(SimTime::from_nanos(100));
        assert_eq!(n, 0);
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 1);
    }

    #[test]
    fn removed_node_sinks_arrivals_as_drops() {
        // Regression (PR 4): remove_node used to leave the node's links and
        // fault injectors delivering to a ghost — a packet addressed to a
        // removed node even counted as `delivered`. It must sink as a drop.
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        let taken = net.remove_node(NodeId(2));
        assert!(taken.is_some());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 0, "removed node must not count deliveries");
        assert_eq!(net.stats.dropped, 1);
        assert_eq!(net.stats.forwarded, 1, "hop before the hole still forwards");
    }

    #[test]
    fn removed_transit_node_sinks_instead_of_forwarding() {
        let mut net = line3();
        net.add_node(NodeId(1), Box::<SinkNode>::default());
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        // A fault injector on the far side of the removed node must never
        // fire again: the packet dies at the hole.
        net.add_faults(NodeId(1), NodeId(2), FaultInjector::new(crate::FaultConfig::lossy(1.0), 7));
        net.remove_node(NodeId(1));
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        assert_eq!(net.stats.dropped, 1);
        assert_eq!(net.stats.delivered, 0);
        assert_eq!(net.fault_stats(NodeId(1), NodeId(2)).unwrap().dropped, 0);
    }

    #[test]
    fn remove_node_twice_and_vacant_is_none() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        assert!(net.remove_node(NodeId(2)).is_some());
        assert!(net.remove_node(NodeId(2)).is_none());
        assert!(net.remove_node(NodeId(0)).is_none(), "vacant slot yields nothing");
        // A vacant slot keeps sink-as-delivered semantics after the no-op.
        net.send_from(NodeId(1), Packet::new(NodeId(1), NodeId(0), Bytes::from(vec![0u8; 10])));
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 1);
    }

    #[test]
    fn removed_node_ticks_stop_rescheduling() {
        let mut net = line3();
        net.add_node(NodeId(0), Box::<SinkNode>::default());
        net.add_tick(NodeId(0), 50);
        net.remove_node(NodeId(0));
        // With the node gone the pending tick fires once into the hole and
        // does not reschedule — run_to_idle terminates.
        let processed = net.run_to_idle();
        assert_eq!(processed, 1);
    }

    #[test]
    fn reinstalling_a_link_replaces_it_and_clears_faults() {
        let mut net = line3();
        net.add_node(NodeId(1), Box::<SinkNode>::default());
        net.add_faults(NodeId(0), NodeId(1), FaultInjector::new(crate::FaultConfig::lossy(1.0), 3));
        net.add_link(NodeId(0), NodeId(1), LinkConfig::dc_100g());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0u8; 64])));
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 1, "reinstalled link must be fault-free");
        assert_eq!(net.fault_stats(NodeId(0), NodeId(1)), None);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn faults_on_missing_link_panic() {
        let mut net = line3();
        net.add_faults(NodeId(0), NodeId(2), FaultInjector::new(crate::FaultConfig::lossy(0.5), 1));
    }
}

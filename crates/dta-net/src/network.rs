//! The simulation engine: nodes + links + routing + event loop.

use std::collections::HashMap;

use crate::faults::{FaultInjector, FaultOutcome};
use crate::link::{EnqueueOutcome, Link, LinkConfig};
use crate::node::{Emission, NetNode, NodeId};
use crate::packet::Packet;
use crate::time::{EventQueue, SimTime};
use crate::topology::Routing;

/// Engine-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Hop-by-hop forwarding decisions taken.
    pub forwarded: u64,
    /// Packets lost to link queues or fault injection.
    pub dropped: u64,
    /// Packets handed to intercepting nodes (e.g., the DTA translator).
    pub intercepted: u64,
}

enum Event {
    /// A packet's last bit arrived at `at_node`.
    Arrive { at_node: NodeId, packet: Packet },
    /// Deliver a tick to a node and reschedule.
    Tick { node: NodeId, period_ns: u64 },
}

struct NodeSlot {
    node: Box<dyn NetNode>,
    intercepting: bool,
}

/// An event-driven network of nodes joined by links.
///
/// Routing is hop-by-hop: a packet emitted with destination `d` follows the
/// routing table through intermediate nodes. A node registered as
/// *intercepting* receives every packet that transits it — this is how the
/// DTA translator (the collector's ToR) grabs DTA reports addressed to the
/// collector IP and substitutes RDMA traffic (§3 of the paper).
pub struct Network {
    nodes: HashMap<NodeId, NodeSlot>,
    links: HashMap<(NodeId, NodeId), Link>,
    faults: HashMap<(NodeId, NodeId), FaultInjector>,
    routing: Routing,
    events: EventQueue<Event>,
    now: SimTime,
    /// Engine counters.
    pub stats: NetworkStats,
}

impl Network {
    /// Empty network with the given routing table.
    pub fn new(routing: Routing) -> Self {
        Network {
            nodes: HashMap::new(),
            links: HashMap::new(),
            faults: HashMap::new(),
            routing,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            stats: NetworkStats::default(),
        }
    }

    /// Register a node.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn NetNode>) {
        self.nodes.insert(id, NodeSlot { node, intercepting: false });
    }

    /// Register an intercepting node (receives transiting packets).
    pub fn add_interceptor(&mut self, id: NodeId, node: Box<dyn NetNode>) {
        self.nodes.insert(id, NodeSlot { node, intercepting: true });
    }

    /// Take a node back out of the network (e.g., to downcast and inspect
    /// its state after a run). Packets arriving for it afterwards sink.
    pub fn remove_node(&mut self, id: NodeId) -> Option<Box<dyn NetNode>> {
        self.nodes.remove(&id).map(|s| s.node)
    }

    /// Install a unidirectional link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        self.links.insert((from, to), Link::new(config));
    }

    /// Install a bidirectional link (two independent directions).
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.add_link(a, b, config);
        self.add_link(b, a, config);
    }

    /// Attach a fault injector to the `from -> to` direction.
    pub fn add_faults(&mut self, from: NodeId, to: NodeId, injector: FaultInjector) {
        self.faults.insert((from, to), injector);
    }

    /// Schedule a periodic tick for `node`.
    pub fn add_tick(&mut self, node: NodeId, period_ns: u64) {
        self.events.push(self.now + period_ns, Event::Tick { node, period_ns });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to a registered node (downcast in callers' tests).
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<crate::link::LinkStats> {
        self.links.get(&(from, to)).map(|l| l.stats)
    }

    /// Counters of the `from -> to` fault injector, if one is attached.
    pub fn fault_stats(&self, from: NodeId, to: NodeId) -> Option<crate::faults::FaultTotals> {
        self.faults.get(&(from, to)).map(|i| i.totals())
    }

    /// Sum of every attached injector's counters (order-independent, so the
    /// scenario harness can report them bit-reproducibly).
    pub fn fault_totals(&self) -> crate::faults::FaultTotals {
        let mut total = crate::faults::FaultTotals::default();
        for inj in self.faults.values() {
            total.merge(&inj.totals());
        }
        total
    }

    /// Sum of every link's counters.
    pub fn link_totals(&self) -> crate::link::LinkStats {
        let mut total = crate::link::LinkStats::default();
        for link in self.links.values() {
            total.merge(&link.stats);
        }
        total
    }

    /// Inject a packet from `origin` at the current time.
    pub fn send_from(&mut self, origin: NodeId, packet: Packet) {
        self.transmit_hop(origin, packet);
    }

    /// Process events until the queue is empty or `deadline` passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked event vanished");
            self.now = t;
            self.dispatch(ev);
            processed += 1;
        }
        self.now = self.now.max(deadline);
        processed
    }

    /// Run to quiescence (no pending events).
    pub fn run_to_idle(&mut self) -> u64 {
        let mut processed = 0;
        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            self.dispatch(ev);
            processed += 1;
        }
        processed
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrive { at_node, packet } => self.arrive(at_node, packet),
            Event::Tick { node, period_ns } => {
                let emissions = match self.nodes.get_mut(&node) {
                    Some(slot) => slot.node.tick(self.now),
                    None => Vec::new(),
                };
                for e in emissions {
                    self.schedule_emission(node, e);
                }
                self.events.push(self.now + period_ns, Event::Tick { node, period_ns });
            }
        }
    }

    /// A packet's last bit reached `at_node`: deliver, intercept, or forward.
    fn arrive(&mut self, at_node: NodeId, packet: Packet) {
        let is_final = packet.dst == at_node;
        let intercepting = self.nodes.get(&at_node).is_some_and(|s| s.intercepting);
        if is_final || intercepting {
            if is_final {
                self.stats.delivered += 1;
            } else {
                self.stats.intercepted += 1;
            }
            let emissions = match self.nodes.get_mut(&at_node) {
                Some(slot) => slot.node.receive(self.now, packet),
                None => Vec::new(), // destination without behaviour: sink
            };
            for e in emissions {
                self.schedule_emission(at_node, e);
            }
        } else {
            self.stats.forwarded += 1;
            self.transmit_hop(at_node, packet);
        }
    }

    fn schedule_emission(&mut self, from: NodeId, emission: Emission) {
        if emission.delay_ns == 0 {
            self.transmit_hop(from, emission.packet);
        } else {
            // Model node-internal delay by re-arriving at self later; use a
            // direct event so no link is consumed.
            let at = self.now + emission.delay_ns;
            let from_copy = from;
            // Packets delayed inside a node resume the normal path after.
            self.events.push(
                at,
                Event::Arrive {
                    at_node: from_copy,
                    packet: reroute_marker(emission.packet),
                },
            );
        }
    }

    /// Put `packet` on the egress link of `from` toward its next hop.
    fn transmit_hop(&mut self, from: NodeId, packet: Packet) {
        let packet = clear_marker(packet);
        let Some(next) = self.routing.next_hop(from, packet.dst) else {
            self.stats.dropped += 1;
            return;
        };
        // Fault injection first (models the wire), then queueing.
        let packet = match self.faults.get_mut(&(from, next)) {
            Some(inj) => match inj.apply(packet) {
                FaultOutcome::Deliver(p) => p,
                FaultOutcome::DeliverDuplicated(p) => {
                    // Two back-to-back serializations of the same frame; the
                    // copy consumes link capacity like any packet and is not
                    // re-faulted.
                    let Some(link) = self.links.get_mut(&(from, next)) else {
                        self.stats.dropped += 1;
                        return;
                    };
                    for copy in [p.clone(), p] {
                        match link.enqueue(self.now, copy.wire_len()) {
                            EnqueueOutcome::Delivered(t) => {
                                self.events
                                    .push(t, Event::Arrive { at_node: next, packet: copy });
                            }
                            EnqueueOutcome::Dropped => self.stats.dropped += 1,
                        }
                    }
                    return;
                }
                FaultOutcome::DeliverReordered(p) => {
                    // Penalize with one extra MTU serialization worth of
                    // delay so a later packet can overtake it.
                    let Some(link) = self.links.get_mut(&(from, next)) else {
                        self.stats.dropped += 1;
                        return;
                    };
                    let extra = SimTime::tx_time(1500, link.config().bandwidth_bps) * 2;
                    match link.enqueue(self.now, p.wire_len()) {
                        EnqueueOutcome::Delivered(t) => {
                            self.events.push(t + extra, Event::Arrive { at_node: next, packet: p });
                        }
                        EnqueueOutcome::Dropped => self.stats.dropped += 1,
                    }
                    return;
                }
                FaultOutcome::Dropped => {
                    self.stats.dropped += 1;
                    return;
                }
            },
            None => packet,
        };
        let Some(link) = self.links.get_mut(&(from, next)) else {
            self.stats.dropped += 1;
            return;
        };
        match link.enqueue(self.now, packet.wire_len()) {
            EnqueueOutcome::Delivered(t) => {
                self.events.push(t, Event::Arrive { at_node: next, packet });
            }
            EnqueueOutcome::Dropped => self.stats.dropped += 1,
        }
    }
}

/// Marker priority bit used to tag node-internal re-deliveries so that an
/// intercepting node does not re-intercept its own delayed output.
const INTERNAL_MARK: u8 = 0x80;

fn reroute_marker(mut p: Packet) -> Packet {
    p.priority |= INTERNAL_MARK;
    p
}

fn clear_marker(mut p: Packet) -> Packet {
    p.priority &= !INTERNAL_MARK;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SinkNode;
    use crate::topology::Topology;
    use bytes::Bytes;

    /// Three nodes in a line: 0 -- 1 -- 2.
    fn line3() -> Network {
        let mut topo = Topology::new(3);
        topo.connect(NodeId(0), NodeId(1));
        topo.connect(NodeId(1), NodeId(2));
        let routing = topo.shortest_path_routing();
        let mut net = Network::new(routing);
        for (a, b) in [(0, 1), (1, 2)] {
            net.add_duplex_link(NodeId(a), NodeId(b), LinkConfig::dc_100g());
        }
        net
    }

    #[test]
    fn packet_traverses_two_hops() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 1);
        assert_eq!(net.stats.forwarded, 1);
    }

    #[test]
    fn interceptor_grabs_transiting_packet() {
        let mut net = line3();
        net.add_interceptor(NodeId(1), Box::<SinkNode>::default());
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        // The interceptor swallowed the packet: nothing reached node 2.
        assert_eq!(net.stats.intercepted, 1);
        assert_eq!(net.stats.delivered, 0);
    }

    #[test]
    fn loss_is_counted() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.add_faults(NodeId(0), NodeId(1), FaultInjector::new(crate::FaultConfig::lossy(1.0), 1));
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])));
        net.run_to_idle();
        assert_eq!(net.stats.dropped, 1);
        assert_eq!(net.stats.delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice_and_is_counted() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        let cfg = crate::FaultConfig { duplicate_chance: 1.0, ..crate::FaultConfig::none() };
        net.add_faults(NodeId(0), NodeId(1), FaultInjector::new(cfg, 9));
        for _ in 0..10 {
            net.send_from(
                NodeId(0),
                Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 100])),
            );
        }
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 20, "every packet must arrive twice");
        assert_eq!(net.fault_totals().duplicated, 10);
        assert_eq!(net.fault_stats(NodeId(0), NodeId(1)).unwrap().duplicated, 10);
        assert_eq!(net.fault_stats(NodeId(1), NodeId(2)), None);
        // Both copies consumed link capacity on the faulted hop.
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).unwrap().transmitted, 20);
        assert_eq!(net.link_totals().transmitted, 40);
    }

    #[test]
    fn unroutable_packet_dropped() {
        let mut net = line3();
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(99), Bytes::new()));
        net.run_to_idle();
        assert_eq!(net.stats.dropped, 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut net = line3();
        net.add_node(NodeId(2), Box::<SinkNode>::default());
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), Bytes::from(vec![0u8; 1500])));
        // Deadline before the first hop's 1120ns arrival: nothing processed.
        let n = net.run_until(SimTime::from_nanos(100));
        assert_eq!(n, 0);
        net.run_to_idle();
        assert_eq!(net.stats.delivered, 1);
    }
}

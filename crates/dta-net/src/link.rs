//! Point-to-point links with bandwidth, latency, and queues.
//!
//! A link models: a FIFO egress queue of bounded byte occupancy, a serializer
//! draining it at the configured bandwidth, and a fixed propagation latency.
//! Two queue disciplines are provided:
//!
//! * [`QueueDiscipline::Lossy`] — tail-drop when the queue is full (plain
//!   UDP-style DTA transport).
//! * [`QueueDiscipline::Lossless`] — PFC-style: instead of dropping, the
//!   link records pause state; the engine stops dequeuing upstream until
//!   occupancy falls below the resume threshold. This is the "Priority Flow
//!   Control (PFC)" option of §4/§7.

use crate::time::{SimTime, GBPS_100};

/// Drop/backpressure behaviour of a link queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Tail-drop past the byte capacity.
    Lossy,
    /// PFC: never drop; assert pause above the XOFF threshold, release below
    /// the XON threshold.
    Lossless {
        /// Pause above this occupancy (bytes).
        xoff_bytes: usize,
        /// Resume below this occupancy (bytes).
        xon_bytes: usize,
    },
}

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation latency in nanoseconds.
    pub latency_ns: u64,
    /// Queue capacity in bytes.
    pub queue_bytes: usize,
    /// Queue discipline.
    pub discipline: QueueDiscipline,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // 100G link, 1us propagation, 512KiB buffer — a reasonable ToR port.
        LinkConfig {
            bandwidth_bps: GBPS_100,
            latency_ns: 1_000,
            queue_bytes: 512 * 1024,
            discipline: QueueDiscipline::Lossy,
        }
    }
}

impl LinkConfig {
    /// The paper's testbed link: 100G, short DC cable.
    pub fn dc_100g() -> Self {
        Self::default()
    }

    /// A lossless 100G link carrying the RDMA priority class.
    pub fn dc_100g_lossless() -> Self {
        LinkConfig {
            discipline: QueueDiscipline::Lossless {
                xoff_bytes: 384 * 1024,
                xon_bytes: 128 * 1024,
            },
            ..Self::default()
        }
    }
}

/// Statistics accumulated by a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped by tail-drop.
    pub dropped: u64,
    /// Packets fully serialized onto the wire.
    pub transmitted: u64,
    /// Total bytes transmitted.
    pub bytes_tx: u64,
    /// Number of pause assertions (lossless mode).
    pub pauses: u64,
}

impl LinkStats {
    /// Accumulate another link's counters into this one — the single place
    /// that must grow when a counter is added, so fabric-wide aggregates
    /// never silently omit a field.
    pub fn merge(&mut self, other: &LinkStats) {
        self.enqueued += other.enqueued;
        self.dropped += other.dropped;
        self.transmitted += other.transmitted;
        self.bytes_tx += other.bytes_tx;
        self.pauses += other.pauses;
    }
}

/// The dynamic state of a link's egress.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    /// Byte occupancy of the queue (packets not yet fully serialized).
    occupancy: usize,
    /// Earliest time the serializer is free.
    free_at: SimTime,
    /// Whether PFC pause is currently asserted.
    paused: bool,
    /// Counters.
    pub stats: LinkStats,
}

/// Result of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet accepted; it is fully delivered at the returned time.
    Delivered(SimTime),
    /// Packet tail-dropped.
    Dropped,
}

impl Link {
    /// New idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            occupancy: 0,
            free_at: SimTime::ZERO,
            paused: false,
            stats: LinkStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Whether PFC pause is asserted.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Current queue occupancy in bytes.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Offer a packet of `bytes` at time `now`. Returns when the last bit
    /// arrives at the far end, or `Dropped`.
    pub fn enqueue(&mut self, now: SimTime, bytes: usize) -> EnqueueOutcome {
        self.drain(now);
        match self.config.discipline {
            QueueDiscipline::Lossy => {
                if self.occupancy + bytes > self.config.queue_bytes {
                    self.stats.dropped += 1;
                    return EnqueueOutcome::Dropped;
                }
            }
            QueueDiscipline::Lossless { xoff_bytes, .. } => {
                if !self.paused && self.occupancy + bytes > xoff_bytes {
                    self.paused = true;
                    self.stats.pauses += 1;
                }
            }
        }
        self.occupancy += bytes;
        self.stats.enqueued += 1;

        let start = self.free_at.max(now);
        let tx = SimTime::tx_time(bytes, self.config.bandwidth_bps);
        self.free_at = start + tx;
        self.stats.transmitted += 1;
        self.stats.bytes_tx += bytes as u64;
        let arrival = self.free_at + self.config.latency_ns;
        EnqueueOutcome::Delivered(arrival)
    }

    /// Release queue bytes that have been serialized by `now` and update
    /// pause state. Called lazily on each enqueue.
    fn drain(&mut self, now: SimTime) {
        if now >= self.free_at {
            // Serializer idle: everything queued has left.
            self.occupancy = 0;
        } else {
            // Approximate: bytes still to serialize.
            let remaining_ns = self.free_at - now;
            let remaining_bytes =
                (remaining_ns as u128 * self.config.bandwidth_bps as u128 / 8 / 1_000_000_000)
                    as usize;
            self.occupancy = self.occupancy.min(remaining_bytes);
        }
        if let QueueDiscipline::Lossless { xon_bytes, .. } = self.config.discipline {
            if self.paused && self.occupancy < xon_bytes {
                self.paused = false;
            }
        }
    }

    /// Time at which the serializer becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_delivery_time() {
        let mut l = Link::new(LinkConfig::dc_100g());
        // 1500B: 120ns serialize + 1000ns propagation.
        match l.enqueue(SimTime::ZERO, 1500) {
            EnqueueOutcome::Delivered(t) => assert_eq!(t.as_nanos(), 1120),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let mut l = Link::new(LinkConfig::dc_100g());
        let t1 = match l.enqueue(SimTime::ZERO, 1500) {
            EnqueueOutcome::Delivered(t) => t,
            _ => unreachable!(),
        };
        let t2 = match l.enqueue(SimTime::ZERO, 1500) {
            EnqueueOutcome::Delivered(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(t2 - t1, 120); // one extra serialization time
    }

    #[test]
    fn lossy_link_tail_drops() {
        let mut cfg = LinkConfig::dc_100g();
        cfg.queue_bytes = 3000;
        let mut l = Link::new(cfg);
        assert!(matches!(l.enqueue(SimTime::ZERO, 1500), EnqueueOutcome::Delivered(_)));
        assert!(matches!(l.enqueue(SimTime::ZERO, 1500), EnqueueOutcome::Delivered(_)));
        assert!(matches!(l.enqueue(SimTime::ZERO, 1500), EnqueueOutcome::Dropped));
        assert_eq!(l.stats.dropped, 1);
    }

    #[test]
    fn lossless_link_pauses_instead_of_dropping() {
        let mut cfg = LinkConfig::dc_100g_lossless();
        cfg.queue_bytes = 3000;
        let mut l = Link::new(cfg);
        let mut delivered = 0;
        for _ in 0..600 {
            if matches!(l.enqueue(SimTime::ZERO, 1500), EnqueueOutcome::Delivered(_)) {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 600, "lossless link must not drop");
        assert!(l.is_paused());
        assert!(l.stats.pauses >= 1);
    }

    #[test]
    fn pause_releases_after_drain() {
        let mut l = Link::new(LinkConfig::dc_100g_lossless());
        for _ in 0..400 {
            l.enqueue(SimTime::ZERO, 1500);
        }
        assert!(l.is_paused());
        // Long after everything drained, the next enqueue releases pause.
        l.enqueue(SimTime::from_millis(100), 1500);
        assert!(!l.is_paused());
    }

    #[test]
    fn queue_drains_over_time() {
        let mut cfg = LinkConfig::dc_100g();
        cfg.queue_bytes = 3000;
        let mut l = Link::new(cfg);
        l.enqueue(SimTime::ZERO, 1500);
        l.enqueue(SimTime::ZERO, 1500);
        // After both serialized (240ns), new packets fit again.
        assert!(matches!(
            l.enqueue(SimTime::from_nanos(250), 1500),
            EnqueueOutcome::Delivered(_)
        ));
    }
}

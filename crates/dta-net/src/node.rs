//! Simulated node interface.

use crate::packet::Packet;
use crate::time::SimTime;

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A packet emitted by a node in response to an input.
#[derive(Debug, Clone)]
pub struct Emission {
    /// The packet to transmit.
    pub packet: Packet,
    /// Extra delay before the packet enters the egress link (models pipeline
    /// latency inside the node; 0 for cut-through forwarding).
    pub delay_ns: u64,
}

impl Emission {
    /// Emit immediately.
    pub fn now(packet: Packet) -> Self {
        Emission { packet, delay_ns: 0 }
    }

    /// Emit after `delay_ns` of node-internal processing.
    pub fn after(packet: Packet, delay_ns: u64) -> Self {
        Emission { packet, delay_ns }
    }
}

/// Behaviour of a simulated node (switch, server NIC, middlebox).
///
/// Nodes return the packets they want to send rather than holding a network
/// handle; the engine schedules those onto egress links. This keeps nodes
/// independently unit-testable. The `Any` supertrait lets harnesses take a
/// node back out of the network and downcast it to inspect its state (e.g.,
/// query the collector's stores after a simulation run).
pub trait NetNode: std::any::Any {
    /// Handle a delivered packet and return any packets to emit.
    fn receive(&mut self, now: SimTime, packet: Packet) -> Vec<Emission>;

    /// Periodic housekeeping tick (cache flushes, timers). Default: nothing.
    fn tick(&mut self, _now: SimTime) -> Vec<Emission> {
        Vec::new()
    }
}

/// A node that sinks every packet and counts them; useful as a stub and for
/// link/topology tests.
#[derive(Debug, Default)]
pub struct SinkNode {
    /// Packets delivered so far.
    pub received: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

impl NetNode for SinkNode {
    fn receive(&mut self, _now: SimTime, packet: Packet) -> Vec<Emission> {
        self.received += 1;
        self.bytes += packet.wire_len() as u64;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn sink_counts() {
        let mut s = SinkNode::default();
        s.receive(SimTime::ZERO, Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0u8; 10])));
        s.receive(SimTime::ZERO, Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0u8; 5])));
        assert_eq!(s.received, 2);
        assert_eq!(s.bytes, 15);
    }
}

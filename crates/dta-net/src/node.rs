//! Simulated node interface.

use crate::packet::Packet;
use crate::time::SimTime;

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A packet emitted by a node in response to an input.
#[derive(Debug, Clone)]
pub struct Emission {
    /// The packet to transmit.
    pub packet: Packet,
    /// Extra delay before the packet enters the egress link (models pipeline
    /// latency inside the node; 0 for cut-through forwarding).
    pub delay_ns: u64,
}

impl Emission {
    /// Emit immediately.
    pub fn now(packet: Packet) -> Self {
        Emission { packet, delay_ns: 0 }
    }

    /// Emit after `delay_ns` of node-internal processing.
    pub fn after(packet: Packet, delay_ns: u64) -> Self {
        Emission { packet, delay_ns }
    }
}

/// Behaviour of a simulated node (switch, server NIC, middlebox).
///
/// Nodes append the packets they want to send to `out` rather than holding
/// a network handle; the engine schedules those onto egress links. The
/// out-parameter (instead of a returned `Vec`) lets the engine recycle one
/// emission buffer across every event — at fat-tree scale the per-event
/// allocation was measurable. This keeps nodes independently unit-testable.
/// The `Any` supertrait lets harnesses take a node back out of the network
/// and downcast it to inspect its state (e.g., query the collector's
/// stores after a simulation run).
pub trait NetNode: std::any::Any {
    /// Handle a delivered packet, appending any packets to emit to `out`.
    fn receive(&mut self, now: SimTime, packet: Packet, out: &mut Vec<Emission>);

    /// Periodic housekeeping tick (cache flushes, timers). Return `false`
    /// to cancel this tick series — the engine stops rescheduling it (a
    /// drained reporter fleet would otherwise tick as pure event churn for
    /// the rest of the run). Default: do nothing, keep ticking.
    fn tick(&mut self, _now: SimTime, _out: &mut Vec<Emission>) -> bool {
        true
    }
}

/// A node that sinks every packet and counts them; useful as a stub and for
/// link/topology tests.
#[derive(Debug, Default)]
pub struct SinkNode {
    /// Packets delivered so far.
    pub received: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

impl NetNode for SinkNode {
    fn receive(&mut self, _now: SimTime, packet: Packet, _out: &mut Vec<Emission>) {
        self.received += 1;
        self.bytes += packet.wire_len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn sink_counts() {
        let mut s = SinkNode::default();
        let mut out = Vec::new();
        s.receive(
            SimTime::ZERO,
            Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0u8; 10])),
            &mut out,
        );
        s.receive(
            SimTime::ZERO,
            Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0u8; 5])),
            &mut out,
        );
        assert_eq!(s.received, 2);
        assert_eq!(s.bytes, 15);
        assert!(out.is_empty());
    }
}

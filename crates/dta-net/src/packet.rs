//! The datagram unit carried by the simulated network.

use crate::node::NodeId;
use bytes::Bytes;

/// A packet in flight between simulated nodes.
///
/// Payloads are raw bytes: nodes run the real codecs from `dta-core` /
/// `dta-rdma` on them, so the simulation exercises actual wire formats
/// (including surviving or rejecting corrupted bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Origin node.
    pub src: NodeId,
    /// Destination node (next routing decision may forward further).
    pub dst: NodeId,
    /// Serialized frame contents.
    pub payload: Bytes,
    /// Priority class; PFC pauses are per-class (class 3 is conventionally
    /// the lossless RDMA class in RoCE deployments).
    pub priority: u8,
}

impl Packet {
    /// Build a packet with default (best-effort) priority.
    pub fn new(src: NodeId, dst: NodeId, payload: Bytes) -> Self {
        Packet { src, dst, payload, priority: 0 }
    }

    /// Build a packet in the lossless RDMA priority class.
    pub fn rdma(src: NodeId, dst: NodeId, payload: Bytes) -> Self {
        Packet { src, dst, payload, priority: 3 }
    }

    /// Wire size in bytes.
    pub fn wire_len(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_priority_class() {
        let p = Packet::rdma(NodeId(1), NodeId(2), Bytes::from_static(b"x"));
        assert_eq!(p.priority, 3);
        assert_eq!(p.wire_len(), 1);
    }
}

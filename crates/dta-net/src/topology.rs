//! Topologies and routing.
//!
//! The paper's scale arguments (Figure 3, §2) are phrased in terms of
//! data-center fabrics — "for example, in a K = 28 fat tree ...". We provide
//! a generic adjacency-based [`Topology`] with all-pairs shortest-path
//! routing, plus a [`FatTree`] builder with the standard 3-tier k-ary
//! structure (cores, aggregation, edge/ToR, hosts).

use std::collections::VecDeque;

use crate::node::NodeId;

/// An undirected multigraph of simulated nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    n: u32,
    adj: Vec<Vec<u32>>,
}

impl Topology {
    /// `n` isolated nodes.
    pub fn new(n: u32) -> Self {
        Topology { n, adj: vec![Vec::new(); n as usize] }
    }

    /// Number of nodes.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add an undirected edge.
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        assert!(a.0 < self.n && b.0 < self.n, "node out of range");
        assert_ne!(a, b, "self-loops not allowed");
        self.adj[a.0 as usize].push(b.0);
        self.adj[b.0 as usize].push(a.0);
    }

    /// Neighbors of `a`.
    pub fn neighbors(&self, a: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[a.0 as usize].iter().map(|&v| NodeId(v))
    }

    /// All undirected edges (each reported once, `a < b`).
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (a, nbrs) in self.adj.iter().enumerate() {
            for &b in nbrs {
                if (a as u32) < b {
                    out.push((NodeId(a as u32), NodeId(b)));
                }
            }
        }
        out
    }

    /// Compute deterministic shortest-path next-hop routing via BFS from
    /// every destination. Ties break toward the lowest neighbor id, so routes
    /// are stable across runs.
    pub fn shortest_path_routing(&self) -> Routing {
        let n = self.n as usize;
        let mut next_hop = vec![u32::MAX; n * n];
        // Sort each adjacency list once up front (the tie-break order) —
        // cloning and sorting per BFS visit made a K=8 build cost ~1ms.
        let sorted_adj: Vec<Vec<u32>> = self
            .adj
            .iter()
            .map(|nbrs| {
                let mut nbrs = nbrs.clone();
                nbrs.sort_unstable();
                nbrs
            })
            .collect();
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            // BFS from dst; next_hop[at][dst] = parent of `at` on the path
            // toward dst (i.e. the neighbor that BFS discovered `at` from).
            dist.fill(u32::MAX);
            queue.clear();
            dist[dst] = 0;
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &v in &sorted_adj[u] {
                    let v = v as usize;
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        next_hop[v * n + dst] = u as u32;
                        queue.push_back(v);
                    }
                }
            }
        }
        Routing { n: self.n, next_hop }
    }
}

/// Dense next-hop routing table.
#[derive(Debug, Clone)]
pub struct Routing {
    n: u32,
    /// `next_hop[at * n + dst]`, `u32::MAX` when unreachable.
    next_hop: Vec<u32>,
}

impl Routing {
    /// Number of nodes the table covers.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Routing over `n` nodes where every node is directly linked to every
    /// other (useful for small harness setups).
    pub fn full_mesh(n: u32) -> Self {
        let mut next_hop = vec![u32::MAX; (n as usize) * (n as usize)];
        for at in 0..n {
            for dst in 0..n {
                if at != dst {
                    next_hop[(at as usize) * (n as usize) + dst as usize] = dst;
                }
            }
        }
        Routing { n, next_hop }
    }

    /// The next hop from `at` toward `dst`, or `None` if unreachable.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        if at.0 >= self.n || dst.0 >= self.n || at == dst {
            return None;
        }
        let v = self.next_hop[(at.0 as usize) * (self.n as usize) + dst.0 as usize];
        (v != u32::MAX).then_some(NodeId(v))
    }

    /// Full path from `src` to `dst` (inclusive of both), or `None`.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut at = src;
        while at != dst {
            at = self.next_hop(at, dst)?;
            path.push(at);
            if path.len() > self.n as usize {
                return None; // routing loop — must not happen
            }
        }
        Some(path)
    }

    /// Hop count between two nodes, or `None`.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.path(src, dst).map(|p| p.len() - 1)
    }
}

/// A k-ary fat-tree (k even): `(k/2)^2` cores, `k` pods of `k/2` aggregation
/// and `k/2` edge switches, `k/2` hosts per edge switch.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Port count per switch.
    pub k: u32,
    /// The underlying topology.
    pub topology: Topology,
}

impl FatTree {
    /// Build a k-ary fat-tree. `k` must be even and ≥ 2.
    pub fn new(k: u32) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree k must be even, got {k}");
        let half = k / 2;
        let n_core = half * half;
        let n_agg = k * half;
        let n_edge = k * half;
        let n_host = k * half * half;
        let n = n_core + n_agg + n_edge + n_host;
        let mut topo = Topology::new(n);

        // Core <-> aggregation: core (i, j) in an (half x half) grid connects
        // to aggregation switch j of every pod.
        for pod in 0..k {
            for a in 0..half {
                let agg = Self::agg_id_static(k, pod, a);
                for c in 0..half {
                    let core = a * half + c;
                    topo.connect(NodeId(core), NodeId(agg));
                }
            }
        }
        // Aggregation <-> edge within each pod (complete bipartite).
        for pod in 0..k {
            for a in 0..half {
                for e in 0..half {
                    topo.connect(
                        NodeId(Self::agg_id_static(k, pod, a)),
                        NodeId(Self::edge_id_static(k, pod, e)),
                    );
                }
            }
        }
        // Edge <-> hosts.
        for pod in 0..k {
            for e in 0..half {
                for h in 0..half {
                    topo.connect(
                        NodeId(Self::edge_id_static(k, pod, e)),
                        NodeId(Self::host_id_static(k, pod, e, h)),
                    );
                }
            }
        }
        FatTree { k, topology: topo }
    }

    fn agg_id_static(k: u32, pod: u32, i: u32) -> u32 {
        let half = k / 2;
        half * half + pod * half + i
    }

    fn edge_id_static(k: u32, pod: u32, i: u32) -> u32 {
        let half = k / 2;
        half * half + k * half + pod * half + i
    }

    fn host_id_static(k: u32, pod: u32, edge: u32, i: u32) -> u32 {
        let half = k / 2;
        half * half + 2 * k * half + (pod * half + edge) * half + i
    }

    /// Node id of core switch `i` (`0 <= i < (k/2)^2`).
    pub fn core(&self, i: u32) -> NodeId {
        NodeId(i)
    }

    /// Node id of aggregation switch `i` in `pod`.
    pub fn agg(&self, pod: u32, i: u32) -> NodeId {
        NodeId(Self::agg_id_static(self.k, pod, i))
    }

    /// Node id of edge (ToR) switch `i` in `pod`.
    pub fn edge(&self, pod: u32, i: u32) -> NodeId {
        NodeId(Self::edge_id_static(self.k, pod, i))
    }

    /// Node id of host `i` under edge switch `edge` in `pod`.
    pub fn host(&self, pod: u32, edge: u32, i: u32) -> NodeId {
        NodeId(Self::host_id_static(self.k, pod, edge, i))
    }

    /// Total switch count (`5k^2/4` — the quantity on Figure 3's x-axis).
    pub fn num_switches(&self) -> u32 {
        let half = self.k / 2;
        half * half + 2 * self.k * half
    }

    /// Total host count (`k^3/4`).
    pub fn num_hosts(&self) -> u32 {
        self.k * (self.k / 2) * (self.k / 2)
    }

    /// All switch node ids (cores, then aggs, then edges).
    pub fn switches(&self) -> Vec<NodeId> {
        (0..self.num_switches()).map(NodeId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts() {
        let ft = FatTree::new(4);
        assert_eq!(ft.num_switches(), 20); // 4 core + 8 agg + 8 edge
        assert_eq!(ft.num_hosts(), 16);
        assert_eq!(ft.topology.len(), 36);
    }

    #[test]
    fn k28_fat_tree_matches_paper_scale() {
        // §2: "in a K = 28 fat tree" with ~1000 switches.
        let ft = FatTree::new(28);
        assert_eq!(ft.num_switches(), 980);
        assert_eq!(ft.num_hosts(), 5488);
    }

    #[test]
    fn host_to_host_same_edge_is_two_hops() {
        let ft = FatTree::new(4);
        let routing = ft.topology.shortest_path_routing();
        let a = ft.host(0, 0, 0);
        let b = ft.host(0, 0, 1);
        assert_eq!(routing.hops(a, b), Some(2)); // host-edge-host
    }

    #[test]
    fn host_to_host_cross_pod_is_six_hops() {
        let ft = FatTree::new(4);
        let routing = ft.topology.shortest_path_routing();
        let a = ft.host(0, 0, 0);
        let b = ft.host(3, 1, 1);
        // host-edge-agg-core-agg-edge-host.
        assert_eq!(routing.hops(a, b), Some(6));
    }

    #[test]
    fn all_pairs_reachable_in_fat_tree() {
        let ft = FatTree::new(4);
        let routing = ft.topology.shortest_path_routing();
        let n = ft.topology.len();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    assert!(
                        routing.path(NodeId(a), NodeId(b)).is_some(),
                        "no path {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_mesh_routes_directly() {
        let r = Routing::full_mesh(5);
        assert_eq!(r.next_hop(NodeId(0), NodeId(4)), Some(NodeId(4)));
        assert_eq!(r.hops(NodeId(1), NodeId(2)), Some(1));
    }

    #[test]
    fn routing_to_self_is_none() {
        let r = Routing::full_mesh(3);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn disconnected_nodes_unreachable() {
        let topo = Topology::new(2);
        let r = topo.shortest_path_routing();
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), None);
        assert_eq!(r.path(NodeId(0), NodeId(1)), None);
    }

    #[test]
    #[should_panic]
    fn odd_k_rejected() {
        let _ = FatTree::new(3);
    }
}

//! Simulated time and the event queue.
//!
//! The queue is the engine's hottest structure: every packet hop and node
//! tick passes through one push and one pop. [`EventQueue`] is a 4-level
//! hierarchical timing wheel (64 slots per level, 1ns granularity at level
//! 0) with a binary-heap fallback for events beyond the ~16.8ms wheel
//! horizon. Push and pop are O(1) amortized against the old all-heap
//! queue's O(log n), and — critically for reproducibility — the pop order
//! is **bit-identical** to a binary heap ordered by `(time, seq)`: ties at
//! one timestamp break by a monotone insertion sequence number, so
//! simulations replay exactly. [`HeapEventQueue`] preserves the original
//! heap implementation as the ordering oracle the property tests compare
//! against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// 100 Gb/s in bits per second — the paper's link speed.
pub const GBPS_100: u64 = 100_000_000_000;
/// 25 Gb/s, a common server access speed.
pub const GBPS_25: u64 = 25_000_000_000;
/// 400 Gb/s, for "future NICs will have better speeds" experiments.
pub const GBPS_400: u64 = 400_000_000_000;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self + ns` nanoseconds.
    pub fn plus_nanos(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }

    /// Serialization delay of `bytes` on a link of `bits_per_sec`, in ns
    /// (rounded up: a partial nanosecond still occupies the wire).
    pub fn tx_time(bytes: usize, bits_per_sec: u64) -> u64 {
        let bits = bytes as u64 * 8;
        bits.saturating_mul(1_000_000_000).div_ceil(bits_per_sec)
    }
}

impl core::ops::Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl core::ops::Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

/// Wrapper that exempts the payload from ordering (heap entries compare on
/// `(time, seq)` alone).
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> core::cmp::Ordering {
        core::cmp::Ordering::Equal
    }
}

/// The original all-heap event queue, kept verbatim as the ordering oracle
/// for [`EventQueue`]'s equivalence tests: events with equal timestamps pop
/// in insertion order (FIFO tie-break via a monotone sequence number).
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(e)))| (t, e))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Bits per wheel level: 64 slots, so each level's occupancy is one `u64`
/// bitmap and "next occupied slot" is a mask + `trailing_zeros`.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` slots are `64^l` ns wide.
const LEVELS: usize = 4;
/// Events scheduled at least this far past the wheel cursor overflow to
/// the heap (`64^4` ns ≈ 16.8 ms — far beyond any link or pacing delay).
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

type Entry<E> = (u64, u64, E);

struct Level<E> {
    /// Bit `s` set iff `slots[s]` is non-empty.
    occupied: u64,
    slots: Box<[Vec<Entry<E>>; SLOTS]>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level { occupied: 0, slots: Box::new(std::array::from_fn(|_| Vec::new())) }
    }
}

/// Bits of `x` at positions `>= lo` (empty mask when `lo >= 64`).
#[inline]
fn bits_from(x: u64, lo: u32) -> u64 {
    if lo >= 64 {
        0
    } else {
        x & (u64::MAX << lo)
    }
}

/// A time-ordered event queue: hierarchical timing wheel + far-future heap.
///
/// Pop order is exactly ascending `(time, seq)` where `seq` is the
/// insertion sequence number — the same order [`HeapEventQueue`] produces —
/// so events with equal timestamps pop FIFO and simulations are
/// deterministic. Events pushed at or before the last popped time are
/// delivered immediately-next in `(time, seq)` order, again matching the
/// heap.
pub struct EventQueue<E> {
    levels: [Level<E>; LEVELS],
    far: BinaryHeap<Reverse<(u64, u64, EventSlot<E>)>>,
    /// Wheel cursor: never exceeds the position of any pending event, and
    /// all wheel entries were placed at a delta `< HORIZON` from it.
    cur: u64,
    /// The level-0 slot currently being served, sorted by **descending**
    /// `(time, seq)` so `pop` is a `Vec::pop` from the back.
    draining: Vec<Entry<E>>,
    len: usize,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: std::array::from_fn(|_| Level::new()),
            far: BinaryHeap::new(),
            cur: 0,
            draining: Vec::new(),
            len: 0,
            seq: 0,
        }
    }

    /// Schedule `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let (t, seq) = (at.0, self.seq);
        self.seq += 1;
        self.len += 1;
        // An event due no later than the tail of the batch being served
        // must pop from inside that batch to preserve (time, seq) order.
        if let Some(&(lt, lseq, _)) = self.draining.first() {
            if (t, seq) < (lt, lseq) {
                let i = self.draining.partition_point(|&(et, eseq, _)| (et, eseq) > (t, seq));
                self.draining.insert(i, (t, seq, event));
                return;
            }
        }
        self.place(t, seq, event);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.prepare() {
            return None;
        }
        let (t, _, e) = self.draining.pop().expect("prepare guaranteed an entry");
        self.len -= 1;
        Some((SimTime(t), e))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.prepare() {
            return None;
        }
        self.draining.last().map(|&(t, _, _)| SimTime(t))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Route one entry to its wheel slot (or the far heap) by its delta
    /// from the cursor. Entries due at or before the cursor are filed under
    /// the cursor's own slot; the sort in `prepare` restores exact order.
    fn place(&mut self, t: u64, seq: u64, event: E) {
        let t_eff = t.max(self.cur);
        let delta = t_eff - self.cur;
        if delta >= HORIZON {
            self.far.push(Reverse((t, seq, EventSlot(event))));
            return;
        }
        let lvl = ((64 - (delta | 1).leading_zeros() - 1) / SLOT_BITS) as usize;
        let slot = ((t_eff >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[lvl].slots[slot].push((t, seq, event));
        self.levels[lvl].occupied |= 1 << slot;
    }

    /// The earliest pending wheel position: `(position, level, slot)`.
    /// Level-0 positions are exact event times; higher-level positions are
    /// the start of the slot's window (a lower bound on its events), so a
    /// higher level winning a tie must cascade before level 0 serves.
    fn wheel_candidate(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for lvl in 0..LEVELS {
            let occ = self.levels[lvl].occupied;
            if occ == 0 {
                continue;
            }
            let width = 1u64 << (SLOT_BITS * lvl as u32);
            let span = width << SLOT_BITS;
            let base = self.cur & !(span - 1);
            let idx = ((self.cur >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as u32;
            // The cursor's own slot is still "current window" only while
            // the cursor sits exactly on its boundary; past that, any set
            // bit at or below `idx` is a wrap into the next window.
            let lo = if lvl == 0 || self.cur & (width - 1) == 0 { idx } else { idx + 1 };
            let ahead = bits_from(occ, lo);
            let (pos, slot) = if ahead != 0 {
                let s = ahead.trailing_zeros();
                (base + s as u64 * width, s as usize)
            } else {
                let s = occ.trailing_zeros();
                (base + span + s as u64 * width, s as usize)
            };
            // Ties prefer the higher level: its window must cascade down
            // before the lower level's slot at the same position serves.
            if best.is_none_or(|(bp, _, _)| pos <= bp) {
                best = Some((pos, lvl, slot));
            }
        }
        best
    }

    /// Ensure `draining` holds the next batch. Returns false iff empty.
    fn prepare(&mut self) -> bool {
        if !self.draining.is_empty() {
            return true;
        }
        loop {
            let wheel = self.wheel_candidate();
            let far_t = self.far.peek().map(|Reverse((t, _, _))| *t);
            match (wheel, far_t) {
                (None, None) => return false,
                // Far events due at or before the wheel frontier merge into
                // the wheel first so equal-time entries interleave by seq.
                (w, Some(ft)) if w.is_none_or(|(pos, _, _)| ft <= pos) => {
                    self.cur = self.cur.max(ft);
                    while let Some(Reverse((t, _, _))) = self.far.peek() {
                        if *t >= self.cur + HORIZON {
                            break;
                        }
                        let Reverse((t, seq, EventSlot(e))) =
                            self.far.pop().expect("peeked entry vanished");
                        self.place(t, seq, e);
                    }
                }
                (Some((pos, 0, slot)), _) => {
                    self.cur = pos;
                    let l0 = &mut self.levels[0];
                    std::mem::swap(&mut self.draining, &mut l0.slots[slot]);
                    l0.occupied &= !(1 << slot);
                    // Serve from the back: reverse the (almost always
                    // already seq-ordered) slot, then repair the rare
                    // out-of-order batch (clamped past-time pushes).
                    self.draining.reverse();
                    if self
                        .draining
                        .windows(2)
                        .any(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))
                    {
                        self.draining.sort_unstable_by_key(|e| Reverse((e.0, e.1)));
                    }
                    return true;
                }
                (Some((pos, lvl, slot)), _) => {
                    // Cascade: redistribute the slot one or more levels
                    // down, relative to the advanced cursor.
                    self.cur = pos;
                    let entries = std::mem::take(&mut self.levels[lvl].slots[slot]);
                    self.levels[lvl].occupied &= !(1 << slot);
                    for (t, seq, e) in entries {
                        self.place(t, seq, e);
                    }
                }
                (None, Some(_)) => unreachable!("covered by the far-merge arm's guard"),
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("cur", &self.cur)
            .field("seq", &self.seq)
            .field("far", &self.far.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tx_time_100g() {
        // 1500B at 100Gbps = 120ns.
        assert_eq!(SimTime::tx_time(1500, GBPS_100), 120);
        // 64B at 100Gbps = 5.12ns -> rounds to 6.
        assert_eq!(SimTime::tx_time(64, GBPS_100), 6);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_conversions() {
        assert_eq!(SimTime::from_secs(1), SimTime(1_000_000_000));
        assert_eq!(SimTime::from_millis(2), SimTime(2_000_000));
        assert_eq!(SimTime::from_micros(3), SimTime(3_000));
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime(HORIZON * 3 + 17), "far");
        q.push(SimTime(2), "near");
        assert_eq!(q.pop(), Some((SimTime(2), "near")));
        assert_eq!(q.pop(), Some((SimTime(HORIZON * 3 + 17), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_heap_merges_with_late_near_pushes() {
        // A heap-resident event overtaken by the cursor must still pop in
        // global (time, seq) order against newer wheel events at the same
        // and later times.
        let mut q = EventQueue::new();
        q.push(SimTime(HORIZON + 5), "old-far"); // seq 0, lands in far heap
        q.push(SimTime(1), "near"); // seq 1
        assert_eq!(q.pop(), Some((SimTime(1), "near")));
        // Cursor is now at 1; these land in the wheel around the far event.
        q.push(SimTime(HORIZON + 5), "new-same-time"); // seq 2
        q.push(SimTime(HORIZON + 4), "new-earlier"); // seq 3
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["new-earlier", "old-far", "new-same-time"]);
    }

    #[test]
    fn pushes_at_or_before_popped_time_pop_next() {
        let mut q = EventQueue::new();
        q.push(SimTime(100), "a");
        q.push(SimTime(100), "b");
        q.push(SimTime(200), "c");
        assert_eq!(q.pop(), Some((SimTime(100), "a")));
        // Time-travel pushes (at/below the served time) pop before later
        // events, in (time, seq) order — exactly like the heap.
        q.push(SimTime(40), "timetravel");
        q.push(SimTime(100), "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime(40), "timetravel"),
                (SimTime(100), "b"),
                (SimTime(100), "d"),
                (SimTime(200), "c"),
            ]
        );
    }

    /// Drive the wheel and the heap oracle through an identical randomized
    /// push/pop schedule and demand bit-identical output streams.
    fn equivalence_trial(seed: u64, ops: usize, spread: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut now = 0u64;
        for i in 0..ops {
            if rng.gen_bool(0.6) || wheel.is_empty() {
                // Mostly-forward schedule with occasional same-time bursts
                // and rare far-future outliers.
                let at = if rng.gen_bool(0.05) {
                    now + rng.gen_range(0..spread * 1000)
                } else if rng.gen_bool(0.3) {
                    now
                } else {
                    now + rng.gen_range(0..spread)
                };
                wheel.push(SimTime(at), i);
                heap.push(SimTime(at), i);
            } else {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged (seed {seed})");
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "pop diverged (seed {seed})");
                now = w.map(|(t, _)| t.0).unwrap_or(now);
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "drain diverged (seed {seed})");
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_matches_heap_oracle_on_random_schedules() {
        for seed in 0..50 {
            equivalence_trial(seed, 4_000, 1 + (seed % 7) * 1000);
        }
        // Deltas straddling every level boundary and the horizon.
        for seed in 50..60 {
            equivalence_trial(seed, 2_000, HORIZON / 8);
        }
    }
}

//! Simulated time and the event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// 100 Gb/s in bits per second — the paper's link speed.
pub const GBPS_100: u64 = 100_000_000_000;
/// 25 Gb/s, a common server access speed.
pub const GBPS_25: u64 = 25_000_000_000;
/// 400 Gb/s, for "future NICs will have better speeds" experiments.
pub const GBPS_400: u64 = 400_000_000_000;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self + ns` nanoseconds.
    pub fn plus_nanos(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }

    /// Serialization delay of `bytes` on a link of `bits_per_sec`, in ns
    /// (rounded up: a partial nanosecond still occupies the wire).
    pub fn tx_time(bytes: usize, bits_per_sec: u64) -> u64 {
        let bits = bytes as u64 * 8;
        bits.saturating_mul(1_000_000_000).div_ceil(bits_per_sec)
    }
}

impl core::ops::Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl core::ops::Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

/// A time-ordered event queue.
///
/// Events with equal timestamps pop in insertion order (FIFO tie-break), so
/// simulations are deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper that exempts the payload from ordering.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> core::cmp::Ordering {
        core::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(e)))| (t, e))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_100g() {
        // 1500B at 100Gbps = 120ns.
        assert_eq!(SimTime::tx_time(1500, GBPS_100), 120);
        // 64B at 100Gbps = 5.12ns -> rounds to 6.
        assert_eq!(SimTime::tx_time(64, GBPS_100), 6);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_conversions() {
        assert_eq!(SimTime::from_secs(1), SimTime(1_000_000_000));
        assert_eq!(SimTime::from_millis(2), SimTime(2_000_000));
        assert_eq!(SimTime::from_micros(3), SimTime(3_000));
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
    }
}

//! Fault injection.
//!
//! DTA's primitives are explicitly best-effort: "the primitives themselves
//! would still work even in case of severe in-transit loss of reports" (§4).
//! To test that claim we inject the classic trio of faults — random drops,
//! byte corruption, and reordering — on simulated links, following the
//! fault-injection interface of smoltcp's examples (`--drop-chance`,
//! `--corrupt-chance`, ...).

use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;

/// Fault probabilities. All chances are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of silently dropping a packet.
    pub drop_chance: f64,
    /// Probability of flipping one random byte of the payload.
    pub corrupt_chance: f64,
    /// Probability of delaying a packet behind its successor (pairwise
    /// reorder).
    pub reorder_chance: f64,
    /// Drop packets larger than this size, if set (MTU-style limit).
    pub size_limit: Option<usize>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            reorder_chance: 0.0,
            size_limit: None,
        }
    }
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Uniform loss with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultConfig { drop_chance: p, ..Self::default() }
    }

    /// The smoltcp README's "good starting value": 15% drop + 15% corrupt.
    pub fn adverse() -> Self {
        FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            reorder_chance: 0.0,
            size_limit: None,
        }
    }
}

/// What the injector decided for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver the (possibly rewritten) packet.
    Deliver(Packet),
    /// Deliver, but swapped behind the next packet.
    DeliverReordered(Packet),
    /// Silently dropped.
    Dropped,
}

/// Deterministic (seeded) fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: StdRng,
    /// Counters for test assertions and experiment reports.
    pub dropped: u64,
    /// Packets corrupted.
    pub corrupted: u64,
    /// Packets reordered.
    pub reordered: u64,
}

impl FaultInjector {
    /// Injector with the given config and RNG seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            config,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
            reordered: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Apply faults to one packet.
    pub fn apply(&mut self, mut packet: Packet) -> FaultOutcome {
        if let Some(limit) = self.config.size_limit {
            if packet.wire_len() > limit {
                self.dropped += 1;
                return FaultOutcome::Dropped;
            }
        }
        if self.config.drop_chance > 0.0 && self.rng.gen_bool(self.config.drop_chance) {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if self.config.corrupt_chance > 0.0
            && !packet.payload.is_empty()
            && self.rng.gen_bool(self.config.corrupt_chance)
        {
            let idx = self.rng.gen_range(0..packet.payload.len());
            let mut buf = BytesMut::from(&packet.payload[..]);
            buf[idx] ^= 1u8 << self.rng.gen_range(0u8..8);
            packet.payload = Bytes::from(buf);
            self.corrupted += 1;
        }
        if self.config.reorder_chance > 0.0 && self.rng.gen_bool(self.config.reorder_chance) {
            self.reordered += 1;
            return FaultOutcome::DeliverReordered(packet);
        }
        FaultOutcome::Deliver(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn pkt(n: usize) -> Packet {
        Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0xAB; n]))
    }

    #[test]
    fn no_faults_passes_everything() {
        let mut inj = FaultInjector::new(FaultConfig::none(), 1);
        for _ in 0..1000 {
            assert!(matches!(inj.apply(pkt(64)), FaultOutcome::Deliver(_)));
        }
        assert_eq!(inj.dropped + inj.corrupted + inj.reordered, 0);
    }

    #[test]
    fn drop_rate_is_statistically_close() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.2), 42);
        let n = 20_000;
        for _ in 0..n {
            inj.apply(pkt(64));
        }
        let rate = inj.dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 7);
        let original = pkt(32);
        match inj.apply(original.clone()) {
            FaultOutcome::Deliver(p) => {
                let diff: u32 = p
                    .payload
                    .iter()
                    .zip(original.payload.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn size_limit_drops_jumbo() {
        let cfg = FaultConfig { size_limit: Some(1500), ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 3);
        assert!(matches!(inj.apply(pkt(1501)), FaultOutcome::Dropped));
        assert!(matches!(inj.apply(pkt(1500)), FaultOutcome::Deliver(_)));
    }

    #[test]
    fn seeded_injectors_are_deterministic() {
        let mut a = FaultInjector::new(FaultConfig::adverse(), 99);
        let mut b = FaultInjector::new(FaultConfig::adverse(), 99);
        for _ in 0..500 {
            assert_eq!(a.apply(pkt(100)), b.apply(pkt(100)));
        }
    }

    #[test]
    fn empty_payload_never_corrupted() {
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 5);
        assert!(matches!(inj.apply(pkt(0)), FaultOutcome::Deliver(_)));
        assert_eq!(inj.corrupted, 0);
    }
}

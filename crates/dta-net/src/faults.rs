//! Fault injection.
//!
//! DTA's primitives are explicitly best-effort: "the primitives themselves
//! would still work even in case of severe in-transit loss of reports" (§4).
//! To test that claim we inject the classic quartet of faults — random
//! drops, byte corruption, reordering, and duplication — on simulated
//! links, following the fault-injection interface of smoltcp's examples
//! (`--drop-chance`, `--corrupt-chance`, ...). Duplication models RoCE-style
//! retransmission and L2 flooding artifacts: the same frame arrives twice,
//! and both the translator's report path and the collector NIC's PSN
//! discipline must tolerate it.

use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;

/// Fault probabilities. All chances are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of silently dropping a packet.
    pub drop_chance: f64,
    /// Probability of flipping one random byte of the payload.
    pub corrupt_chance: f64,
    /// Probability of delaying a packet behind its successor (pairwise
    /// reorder).
    pub reorder_chance: f64,
    /// Probability of delivering a packet twice (duplicate delivery; the
    /// copy is not re-faulted).
    pub duplicate_chance: f64,
    /// Drop packets larger than this size, if set (MTU-style limit).
    pub size_limit: Option<usize>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            reorder_chance: 0.0,
            duplicate_chance: 0.0,
            size_limit: None,
        }
    }
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Uniform loss with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultConfig { drop_chance: p, ..Self::default() }
    }

    /// The smoltcp README's "good starting value": 15% drop + 15% corrupt.
    pub fn adverse() -> Self {
        FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            ..Self::default()
        }
    }

    /// The non-FIFO lossy-channel model the scenario harness's
    /// fault-equivalence tests run under: loss + reorder + duplication
    /// (corruption is left off — a flipped bit inside a DTA report yields a
    /// *different valid report*, which is a workload change, not a channel
    /// fault).
    pub fn unreliable(drop: f64, reorder: f64, duplicate: f64) -> Self {
        FaultConfig {
            drop_chance: drop,
            reorder_chance: reorder,
            duplicate_chance: duplicate,
            ..Self::default()
        }
    }

    /// Whether every fault is disabled (injectors for such configs can be
    /// skipped entirely, consuming no RNG).
    pub fn is_none(&self) -> bool {
        self.drop_chance == 0.0
            && self.corrupt_chance == 0.0
            && self.reorder_chance == 0.0
            && self.duplicate_chance == 0.0
            && self.size_limit.is_none()
    }
}

/// What the injector decided for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver the (possibly rewritten) packet.
    Deliver(Packet),
    /// Deliver, but swapped behind the next packet.
    DeliverReordered(Packet),
    /// Deliver the packet twice, back to back (the duplicate is a verbatim
    /// copy and is not itself re-faulted).
    DeliverDuplicated(Packet),
    /// Silently dropped.
    Dropped,
}

/// Aggregated fault counters (one injector, or a whole network's worth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Packets silently dropped.
    pub dropped: u64,
    /// Packets with a flipped payload bit.
    pub corrupted: u64,
    /// Packets delayed behind their successor.
    pub reordered: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
}

impl FaultTotals {
    /// Accumulate another set of counters into this one.
    pub fn merge(&mut self, other: &FaultTotals) {
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.reordered += other.reordered;
        self.duplicated += other.duplicated;
    }
}

/// Deterministic (seeded) fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: StdRng,
    /// Counters for test assertions and experiment reports.
    pub dropped: u64,
    /// Packets corrupted.
    pub corrupted: u64,
    /// Packets reordered.
    pub reordered: u64,
    /// Packets duplicated.
    pub duplicated: u64,
}

impl FaultInjector {
    /// Injector with the given config and RNG seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            config,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
            reordered: 0,
            duplicated: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// This injector's counters as a [`FaultTotals`].
    pub fn totals(&self) -> FaultTotals {
        FaultTotals {
            dropped: self.dropped,
            corrupted: self.corrupted,
            reordered: self.reordered,
            duplicated: self.duplicated,
        }
    }

    /// Apply faults to one packet.
    pub fn apply(&mut self, mut packet: Packet) -> FaultOutcome {
        if let Some(limit) = self.config.size_limit {
            if packet.wire_len() > limit {
                self.dropped += 1;
                return FaultOutcome::Dropped;
            }
        }
        if self.config.drop_chance > 0.0 && self.rng.gen_bool(self.config.drop_chance) {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if self.config.corrupt_chance > 0.0
            && !packet.payload.is_empty()
            && self.rng.gen_bool(self.config.corrupt_chance)
        {
            let idx = self.rng.gen_range(0..packet.payload.len());
            let mut buf = BytesMut::from(&packet.payload[..]);
            buf[idx] ^= 1u8 << self.rng.gen_range(0u8..8);
            packet.payload = Bytes::from(buf);
            self.corrupted += 1;
        }
        if self.config.duplicate_chance > 0.0 && self.rng.gen_bool(self.config.duplicate_chance) {
            self.duplicated += 1;
            return FaultOutcome::DeliverDuplicated(packet);
        }
        if self.config.reorder_chance > 0.0 && self.rng.gen_bool(self.config.reorder_chance) {
            self.reordered += 1;
            return FaultOutcome::DeliverReordered(packet);
        }
        FaultOutcome::Deliver(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn pkt(n: usize) -> Packet {
        Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![0xAB; n]))
    }

    #[test]
    fn no_faults_passes_everything() {
        let mut inj = FaultInjector::new(FaultConfig::none(), 1);
        for _ in 0..1000 {
            assert!(matches!(inj.apply(pkt(64)), FaultOutcome::Deliver(_)));
        }
        assert_eq!(inj.totals(), FaultTotals::default());
    }

    #[test]
    fn duplicate_rate_is_statistically_close() {
        let cfg = FaultConfig { duplicate_chance: 0.25, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 13);
        let n = 20_000;
        let mut dup = 0u64;
        for _ in 0..n {
            match inj.apply(pkt(64)) {
                FaultOutcome::DeliverDuplicated(p) => {
                    assert_eq!(p.payload.len(), 64, "duplicate must carry the packet");
                    dup += 1;
                }
                FaultOutcome::Deliver(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(dup, inj.duplicated);
        let rate = dup as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed duplicate rate {rate}");
    }

    #[test]
    fn duplicate_wins_over_reorder_and_never_both() {
        // Both enabled: a packet is duplicated or reordered, never both —
        // the duplicate copy must not be re-faulted.
        let cfg = FaultConfig {
            duplicate_chance: 0.5,
            reorder_chance: 0.5,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 17);
        for _ in 0..2_000 {
            match inj.apply(pkt(32)) {
                FaultOutcome::Deliver(_)
                | FaultOutcome::DeliverReordered(_)
                | FaultOutcome::DeliverDuplicated(_) => {}
                FaultOutcome::Dropped => panic!("nothing configured to drop"),
            }
        }
        assert!(inj.duplicated > 0 && inj.reordered > 0);
        assert_eq!(inj.dropped, 0);
    }

    #[test]
    fn unreliable_preset_and_is_none() {
        assert!(FaultConfig::none().is_none());
        let cfg = FaultConfig::unreliable(0.1, 0.2, 0.3);
        assert!(!cfg.is_none());
        assert_eq!(cfg.drop_chance, 0.1);
        assert_eq!(cfg.reorder_chance, 0.2);
        assert_eq!(cfg.duplicate_chance, 0.3);
        assert_eq!(cfg.corrupt_chance, 0.0);
        assert!(!FaultConfig { size_limit: Some(64), ..FaultConfig::none() }.is_none());
    }

    #[test]
    fn totals_merge_sums_counters() {
        let mut a = FaultTotals { dropped: 1, corrupted: 2, reordered: 3, duplicated: 4 };
        a.merge(&FaultTotals { dropped: 10, corrupted: 20, reordered: 30, duplicated: 40 });
        assert_eq!(a, FaultTotals { dropped: 11, corrupted: 22, reordered: 33, duplicated: 44 });
    }

    #[test]
    fn drop_rate_is_statistically_close() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.2), 42);
        let n = 20_000;
        for _ in 0..n {
            inj.apply(pkt(64));
        }
        let rate = inj.dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 7);
        let original = pkt(32);
        match inj.apply(original.clone()) {
            FaultOutcome::Deliver(p) => {
                let diff: u32 = p
                    .payload
                    .iter()
                    .zip(original.payload.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn size_limit_drops_jumbo() {
        let cfg = FaultConfig { size_limit: Some(1500), ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 3);
        assert!(matches!(inj.apply(pkt(1501)), FaultOutcome::Dropped));
        assert!(matches!(inj.apply(pkt(1500)), FaultOutcome::Deliver(_)));
    }

    #[test]
    fn seeded_injectors_are_deterministic() {
        let mut a = FaultInjector::new(FaultConfig::adverse(), 99);
        let mut b = FaultInjector::new(FaultConfig::adverse(), 99);
        for _ in 0..500 {
            assert_eq!(a.apply(pkt(100)), b.apply(pkt(100)));
        }
    }

    #[test]
    fn empty_payload_never_corrupted() {
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 5);
        assert!(matches!(inj.apply(pkt(0)), FaultOutcome::Deliver(_)));
        assert_eq!(inj.corrupted, 0);
    }
}

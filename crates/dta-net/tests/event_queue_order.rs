//! Property test: the timing-wheel [`EventQueue`] pops the exact
//! `(time, seq)` sequence the original [`HeapEventQueue`] (BinaryHeap with
//! FIFO tie-break) produces, under arbitrary interleaved push/pop
//! schedules — including same-time bursts, level-boundary deltas, horizon
//! overflows into the far heap, and pushes at or before already-popped
//! times. This is the reproducibility contract of the engine rewrite: any
//! divergence would silently reorder a simulation.

use dta_net::{EventQueue, HeapEventQueue, SimTime};
use proptest::prelude::*;

/// One scripted operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `now + delta` (the common forward schedule).
    PushAhead(u64),
    /// Push at an absolute time (may time-travel below `now`).
    PushAt(u64),
    /// Pop once and advance `now` to the popped time.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Deltas biased to straddle every wheel level and the far horizon;
    // repeated `Pop` entries weight the (unweighted) union toward pops.
    let ahead = prop_oneof![
        Just(0u64),
        1u64..64,
        60u64..70,
        4090u64..4100,
        1u64..5000,
        260_000u64..265_000,
        ((1u64 << 24) - 10)..((1u64 << 24) + 10),
        (1u64 << 25)..(1u64 << 26),
    ];
    prop_oneof![
        ahead.prop_map(Op::PushAhead),
        (0u64..(1 << 26)).prop_map(Op::PushAt),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn wheel_pop_order_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut now = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::PushAhead(d) => {
                    wheel.push(SimTime(now + d), i);
                    heap.push(SimTime(now + d), i);
                }
                Op::PushAt(t) => {
                    wheel.push(SimTime(*t), i);
                    heap.push(SimTime(*t), i);
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let w = wheel.pop();
                    prop_assert_eq!(w, heap.pop());
                    if let Some((t, _)) = w {
                        now = t.0;
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain both to the end: the full residual sequence must match.
        loop {
            let w = wheel.pop();
            prop_assert_eq!(&w, &heap.pop());
            if w.is_none() {
                break;
            }
        }
    }
}

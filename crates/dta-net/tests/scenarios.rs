//! Network-level scenario tests: congestion, PFC, reordering, ticks, and
//! fat-tree-scale runs.

use bytes::Bytes;
use dta_net::link::EnqueueOutcome;
use dta_net::node::SinkNode;
use dta_net::{
    Emission, FatTree, FaultConfig, FaultInjector, Link, LinkConfig, NetNode, Network, NodeId,
    Packet, QueueDiscipline, SimTime, Topology,
};

/// A node that emits one packet per tick toward a fixed destination.
struct TickSource {
    me: NodeId,
    dst: NodeId,
    size: usize,
    sent: u64,
}

impl NetNode for TickSource {
    fn receive(&mut self, _now: SimTime, _packet: Packet, _out: &mut Vec<Emission>) {}
    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        self.sent += 1;
        out.push(Emission::now(Packet::new(
            self.me,
            self.dst,
            Bytes::from(vec![0u8; self.size]),
        )));
        true
    }
}

#[test]
fn tick_driven_source_delivers_periodically() {
    let mut topo = Topology::new(2);
    topo.connect(NodeId(0), NodeId(1));
    let mut net = Network::new(topo.shortest_path_routing());
    net.add_duplex_link(NodeId(0), NodeId(1), LinkConfig::dc_100g());
    net.add_node(NodeId(0), Box::new(TickSource { me: NodeId(0), dst: NodeId(1), size: 100, sent: 0 }));
    net.add_node(NodeId(1), Box::<SinkNode>::default());
    net.add_tick(NodeId(0), 1_000); // 1 packet/us
    net.run_until(SimTime::from_micros(100));
    assert!(net.stats.delivered >= 95, "delivered {}", net.stats.delivered);
}

#[test]
fn congested_link_drops_excess_and_paces_survivors() {
    // Two sources blast a shared 100G egress whose queue is tiny.
    let mut topo = Topology::new(4);
    topo.connect(NodeId(0), NodeId(2));
    topo.connect(NodeId(1), NodeId(2));
    topo.connect(NodeId(2), NodeId(3));
    let mut net = Network::new(topo.shortest_path_routing());
    net.add_duplex_link(NodeId(0), NodeId(2), LinkConfig::dc_100g());
    net.add_duplex_link(NodeId(1), NodeId(2), LinkConfig::dc_100g());
    net.add_link(
        NodeId(2),
        NodeId(3),
        LinkConfig { queue_bytes: 8 * 1500, ..LinkConfig::dc_100g() },
    );
    net.add_node(NodeId(3), Box::<SinkNode>::default());
    for i in 0..500 {
        let src = NodeId(i % 2);
        net.send_from(src, Packet::new(src, NodeId(3), Bytes::from(vec![0u8; 1500])));
    }
    net.run_to_idle();
    assert!(net.stats.dropped > 0, "bottleneck must drop");
    assert!(net.stats.delivered > 0, "some packets must survive");
    assert_eq!(net.stats.delivered + net.stats.dropped, 500);
}

#[test]
fn reordering_faults_deliver_everything_eventually() {
    let mut topo = Topology::new(2);
    topo.connect(NodeId(0), NodeId(1));
    let mut net = Network::new(topo.shortest_path_routing());
    net.add_duplex_link(NodeId(0), NodeId(1), LinkConfig::dc_100g());
    net.add_node(NodeId(1), Box::<SinkNode>::default());
    net.add_faults(
        NodeId(0),
        NodeId(1),
        FaultInjector::new(FaultConfig { reorder_chance: 0.3, ..FaultConfig::none() }, 5),
    );
    for _ in 0..200 {
        net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(1), Bytes::from(vec![1u8; 200])));
    }
    net.run_to_idle();
    assert_eq!(net.stats.delivered, 200, "reordering must not lose packets");
}

#[test]
fn pfc_pause_prevents_loss_where_lossy_drops() {
    let burst: usize = 600;
    let mut lossy = Link::new(LinkConfig {
        queue_bytes: 64 * 1024,
        ..LinkConfig::dc_100g()
    });
    let mut pfc = Link::new(LinkConfig {
        queue_bytes: 64 * 1024,
        discipline: QueueDiscipline::Lossless { xoff_bytes: 48 * 1024, xon_bytes: 16 * 1024 },
        ..LinkConfig::dc_100g()
    });
    let (mut lossy_ok, mut pfc_ok) = (0, 0);
    for _ in 0..burst {
        if matches!(lossy.enqueue(SimTime::ZERO, 1500), EnqueueOutcome::Delivered(_)) {
            lossy_ok += 1;
        }
        if matches!(pfc.enqueue(SimTime::ZERO, 1500), EnqueueOutcome::Delivered(_)) {
            pfc_ok += 1;
        }
    }
    assert!(lossy_ok < burst);
    assert_eq!(pfc_ok, burst);
    // After the queue drains, pause deasserts.
    assert!(pfc.is_paused());
    pfc.enqueue(SimTime::from_millis(10), 64);
    assert!(!pfc.is_paused());
}

#[test]
fn fat_tree_all_hosts_reach_all_hosts_k6() {
    let ft = FatTree::new(6);
    let routing = ft.topology.shortest_path_routing();
    let hosts: Vec<NodeId> = (0..ft.num_hosts())
        .map(|i| {
            let half = 3;
            let pod = i / (half * half);
            let rem = i % (half * half);
            ft.host(pod, rem / half, rem % half)
        })
        .collect();
    for (i, &a) in hosts.iter().enumerate() {
        for &b in hosts.iter().skip(i + 1) {
            let hops = routing.hops(a, b).expect("reachable");
            assert!((2..=6).contains(&hops), "host path length {hops}");
        }
    }
}

#[test]
fn fat_tree_traffic_survives_multi_hop_congestion() {
    let ft = FatTree::new(4);
    let mut net = Network::new(ft.topology.shortest_path_routing());
    for (a, b) in ft.topology.edges() {
        net.add_duplex_link(a, b, LinkConfig::dc_100g());
    }
    let dst = ft.host(3, 1, 1);
    net.add_node(dst, Box::<SinkNode>::default());
    // Every other host sends 10 packets to one victim host.
    let mut sent = 0;
    for pod in 0..4 {
        for e in 0..2 {
            for h in 0..2 {
                let src = ft.host(pod, e, h);
                if src == dst {
                    continue;
                }
                for _ in 0..10 {
                    net.send_from(src, Packet::new(src, dst, Bytes::from(vec![0u8; 700])));
                    sent += 1;
                }
            }
        }
    }
    net.run_to_idle();
    assert_eq!(net.stats.delivered, sent, "ample buffers: no loss expected");
    assert!(net.stats.forwarded > sent, "multi-hop forwarding happened");
}

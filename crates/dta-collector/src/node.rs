//! The collector as a simulated network node.
//!
//! Terminates RoCEv2 traffic arriving on UDP port 4791: packets feed the
//! collector NIC, and the resulting ACKs/NAKs return toward the sender (the
//! translator), closing the reliability loop of §5.2.

use dta_core::framing::UdpPacket;
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};
use dta_rdma::nic::RxOutcome;
use dta_rdma::packet::{RocePacket, ROCE_UDP_PORT};

use crate::service::CollectorService;

/// Counters for the collector node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorNodeStats {
    /// RoCE packets executed.
    pub executed: u64,
    /// NAKs returned.
    pub naks: u64,
    /// Malformed / non-RoCE packets dropped.
    pub dropped: u64,
}

/// [`CollectorService`] wrapped as a [`NetNode`].
#[derive(Debug)]
pub struct CollectorNode {
    /// The collector service (stores + NIC + CM).
    pub service: CollectorService,
    my_id: NodeId,
    my_ip: u32,
    /// Counters.
    pub stats: CollectorNodeStats,
}

impl CollectorNode {
    /// Wrap `service` at node `my_id` / `my_ip`.
    pub fn new(service: CollectorService, my_id: NodeId, my_ip: u32) -> Self {
        CollectorNode { service, my_id, my_ip, stats: CollectorNodeStats::default() }
    }

    fn respond(&self, to_node: NodeId, to_ip: u32, pkt: &RocePacket) -> Emission {
        let udp = UdpPacket::frame(self.my_ip, ROCE_UDP_PORT, to_ip, ROCE_UDP_PORT, pkt.encode());
        Emission::now(Packet::rdma(self.my_id, to_node, udp.encode()))
    }
}

impl NetNode for CollectorNode {
    fn receive(&mut self, _now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        let Ok(udp) = UdpPacket::decode(packet.payload.clone()) else {
            self.stats.dropped += 1;
            return;
        };
        if udp.udp.dst_port != ROCE_UDP_PORT {
            self.stats.dropped += 1;
            return;
        }
        let Ok(roce) = RocePacket::decode(udp.payload.clone()) else {
            self.stats.dropped += 1;
            return;
        };
        match self.service.nic_ingress(&roce) {
            RxOutcome::Executed(Some(ack)) => {
                self.stats.executed += 1;
                out.push(self.respond(packet.src, udp.ip.src, &ack));
            }
            RxOutcome::Executed(None) => self.stats.executed += 1,
            RxOutcome::Nak(nak) => {
                self.stats.naks += 1;
                out.push(self.respond(packet.src, udp.ip.src, &nak));
            }
            RxOutcome::DuplicateDropped | RxOutcome::Error(_) => self.stats.dropped += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, SERVICE_KW};
    use bytes::Bytes;
    use dta_rdma::cm::CmRequester;
    use dta_rdma::packet::Reth;

    #[test]
    fn roce_over_udp_executes_and_acks() {
        // Per-packet ACKs so the single write's response is observable.
        let mut svc = CollectorService::new(ServiceConfig {
            nic: dta_rdma::nic::NicConfig::bluefield2().with_ack_coalesce(1),
            ..ServiceConfig::default()
        });
        let req = CmRequester::new(0x60, 0);
        let reply = svc.handle_cm(&req.request(SERVICE_KW));
        let (mut qp, params) = req.complete(&reply).unwrap();
        let mut node = CollectorNode::new(svc, NodeId(9), 0x0A00_0009);

        let psn = qp.next_send_psn();
        let roce = RocePacket::write(
            qp.dest_qpn,
            psn,
            Reth { va: params.base_va, rkey: params.rkey, dma_len: 4 },
            Bytes::from_static(&[1, 2, 3, 4]),
        );
        let udp = UdpPacket::frame(0x0A00_0001, ROCE_UDP_PORT, 0x0A00_0009, ROCE_UDP_PORT, roce.encode());
        let mut out = Vec::new();
        node.receive(SimTime::ZERO, Packet::rdma(NodeId(1), NodeId(9), udp.encode()), &mut out);
        assert_eq!(node.stats.executed, 1);
        assert_eq!(out.len(), 1, "ACK returned");
        // The ACK is addressed back to the sender node.
        assert_eq!(out[0].packet.dst, NodeId(1));
    }

    #[test]
    fn non_roce_traffic_dropped() {
        let svc = CollectorService::new(ServiceConfig::default());
        let mut node = CollectorNode::new(svc, NodeId(9), 9);
        let udp = UdpPacket::frame(1, 1234, 9, 80, Bytes::from_static(b"http"));
        let mut out = Vec::new();
        node.receive(SimTime::ZERO, Packet::new(NodeId(1), NodeId(9), udp.encode()), &mut out);
        assert!(out.is_empty());
        assert_eq!(node.stats.dropped, 1);
    }
}

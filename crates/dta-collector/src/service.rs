//! The collector service: stores + NIC + connection management.
//!
//! "The collector can host several primitives in parallel using unique
//! RDMA_CM ports, and advertise primitive-specific metadata to the
//! translator using RDMA-Send packets." (§5.3)

use dta_rdma::cm::{CmEvent, CmManager, ConnectionParams, ServiceId};
use dta_rdma::mr::{MemoryRegion, MrAccess};
use dta_rdma::nic::{NicConfig, RdmaNic, RxOutcome};
use dta_rdma::packet::RocePacket;

use crate::append::AppendReader;
use crate::cms::KeyIncrementStore;
use crate::engine::StoreQueryEngine;
use crate::keywrite::KeyWriteStore;
use crate::layout::{AppendLayout, CmsLayout, KwLayout, PostcardLayout};
use crate::postcarding::{PostcardStore, ValueCodec};

/// Well-known service ids (one CM port per primitive).
pub const SERVICE_KW: ServiceId = 1;
/// Postcarding service id.
pub const SERVICE_POSTCARD: ServiceId = 2;
/// Append service id.
pub const SERVICE_APPEND: ServiceId = 3;
/// Key-Increment service id.
pub const SERVICE_CMS: ServiceId = 4;

/// Region rkeys, one per primitive.
const RKEY_KW: u32 = 0x10;
const RKEY_POSTCARD: u32 = 0x20;
const RKEY_APPEND: u32 = 0x30;
const RKEY_CMS: u32 = 0x40;

/// Disjoint VA spaces per primitive region.
const VA_KW: u64 = 0x1_0000_0000;
const VA_POSTCARD: u64 = 0x2_0000_0000;
const VA_APPEND: u64 = 0x3_0000_0000;
const VA_CMS: u64 = 0x4_0000_0000;

/// Sizing of a collector instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// NIC model.
    pub nic: NicConfig,
    /// Key-Write store bytes (0 disables), and value width.
    pub kw_bytes: u64,
    /// Key-Write value width in bytes.
    pub kw_value_bytes: u32,
    /// Postcarding store bytes (0 disables).
    pub postcard_bytes: u64,
    /// Postcarding hop bound `B`.
    pub postcard_hops: u8,
    /// Postcarding slot width in bits.
    pub postcard_bits: u32,
    /// Size of the postcard value universe |V| (switch-id space).
    pub postcard_values: u32,
    /// Number of Append lists (0 disables).
    pub append_lists: u32,
    /// Entries per Append list.
    pub append_entries: u64,
    /// Append entry width in bytes.
    pub append_entry_bytes: u32,
    /// Key-Increment counters (0 disables).
    pub cms_slots: u64,
    /// Maximum redundancy the stores should support.
    pub max_redundancy: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        // A small-footprint instance suitable for tests; experiment
        // harnesses override sizes.
        ServiceConfig {
            nic: NicConfig::bluefield2(),
            kw_bytes: 1 << 20,
            kw_value_bytes: 4,
            postcard_bytes: 1 << 20,
            postcard_hops: 5,
            postcard_bits: 32,
            postcard_values: 1 << 12,
            append_lists: 16,
            append_entries: 4096,
            append_entry_bytes: 4,
            cms_slots: 1 << 16,
            max_redundancy: 4,
        }
    }
}

/// A running collector: NIC, registered stores, CM services.
pub struct CollectorService {
    /// The RDMA NIC (feed RoCE packets to `nic_ingress`).
    pub nic: RdmaNic,
    cm: CmManager,
    /// Key-Write store, when enabled.
    pub keywrite: Option<KeyWriteStore>,
    /// Postcarding store, when enabled.
    pub postcarding: Option<PostcardStore>,
    /// Append reader, when enabled.
    pub append: Option<AppendReader>,
    /// Key-Increment store, when enabled.
    pub key_increment: Option<KeyIncrementStore>,
}

// Manual impl: `RdmaNic` (simulated hardware with queue state) has no
// `Debug`; show which stores are enabled instead of the NIC internals.
impl std::fmt::Debug for CollectorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectorService")
            .field("keywrite", &self.keywrite.is_some())
            .field("postcarding", &self.postcarding.is_some())
            .field("append", &self.append.is_some())
            .field("key_increment", &self.key_increment.is_some())
            .finish_non_exhaustive()
    }
}

impl CollectorService {
    /// Build a collector from `config`: allocate regions, register them on
    /// the NIC, publish CM services.
    pub fn new(config: ServiceConfig) -> Self {
        let mut nic = RdmaNic::new(config.nic);
        let mut cm = CmManager::new();

        let keywrite = (config.kw_bytes > 0).then(|| {
            let layout = KwLayout::with_capacity(VA_KW, config.kw_bytes, config.kw_value_bytes);
            let region = MemoryRegion::new(
                layout.base_va,
                layout.region_len() as usize,
                RKEY_KW,
                MrAccess::WRITE,
            );
            nic.memory.register(region.clone());
            cm.publish(ConnectionParams {
                service: SERVICE_KW,
                qpn: 0,
                start_psn: 0,
                rkey: RKEY_KW,
                base_va: layout.base_va,
                region_len: layout.region_len(),
                slots: layout.slots,
                slot_bytes: layout.slot_bytes(),
            });
            KeyWriteStore::new(layout, region, config.max_redundancy)
        });

        let postcarding = (config.postcard_bytes > 0).then(|| {
            let layout = PostcardLayout::with_capacity(
                VA_POSTCARD,
                config.postcard_bytes,
                config.postcard_hops,
                config.postcard_bits,
            );
            let region = MemoryRegion::new(
                layout.base_va,
                layout.region_len() as usize,
                RKEY_POSTCARD,
                MrAccess::WRITE,
            );
            nic.memory.register(region.clone());
            cm.publish(ConnectionParams {
                service: SERVICE_POSTCARD,
                qpn: 0,
                start_psn: 0,
                rkey: RKEY_POSTCARD,
                base_va: layout.base_va,
                region_len: layout.region_len(),
                slots: layout.chunks,
                slot_bytes: layout.chunk_stride() as u32,
            });
            let codec = ValueCodec::switch_ids(config.postcard_values, config.postcard_bits);
            PostcardStore::new(layout, region, codec, config.max_redundancy)
        });

        let append = (config.append_lists > 0).then(|| {
            let layout = AppendLayout {
                base_va: VA_APPEND,
                lists: config.append_lists,
                entries_per_list: config.append_entries,
                entry_bytes: config.append_entry_bytes,
            };
            let region = MemoryRegion::new(
                layout.base_va,
                layout.region_len() as usize,
                RKEY_APPEND,
                MrAccess::WRITE,
            );
            nic.memory.register(region.clone());
            cm.publish(ConnectionParams {
                service: SERVICE_APPEND,
                qpn: 0,
                start_psn: 0,
                rkey: RKEY_APPEND,
                base_va: layout.base_va,
                region_len: layout.region_len(),
                slots: layout.entries_per_list,
                slot_bytes: layout.entry_bytes,
            });
            AppendReader::new(layout, region)
        });

        let key_increment = (config.cms_slots > 0).then(|| {
            let layout = CmsLayout { base_va: VA_CMS, slots: config.cms_slots };
            let region = MemoryRegion::new(
                layout.base_va,
                layout.region_len() as usize,
                RKEY_CMS,
                MrAccess::ATOMIC,
            );
            nic.memory.register(region.clone());
            cm.publish(ConnectionParams {
                service: SERVICE_CMS,
                qpn: 0,
                start_psn: 0,
                rkey: RKEY_CMS,
                base_va: layout.base_va,
                region_len: layout.region_len(),
                slots: layout.slots,
                slot_bytes: CmsLayout::SLOT_BYTES,
            });
            KeyIncrementStore::new(layout, region, config.max_redundancy)
        });

        CollectorService { nic, cm, keywrite, postcarding, append, key_increment }
    }

    /// Handle a CM request: install the responder QP on accept and return
    /// the reply for the requester.
    pub fn handle_cm(&mut self, event: &CmEvent) -> CmEvent {
        let (reply, qp) = self.cm.handle(event);
        if let Some(qp) = qp {
            self.nic.add_qp(qp);
        }
        reply
    }

    /// Handle a CM request by minting a **dedicated** responder QP (its own
    /// PSN domain) on this collector's main NIC. [`handle_cm`] re-accepts a
    /// service's published QP, which is right for the one dataplane
    /// connection per service but would splice a second requester into the
    /// same PSN stream. Control-plane connections that coexist with live
    /// service traffic — e.g. a rebalance migration channel reading and
    /// zeroing region slots — need their own responder.
    pub fn handle_cm_dedicated(&mut self, event: &CmEvent) -> CmEvent {
        let (reply, qp) = self.cm.handle_dedicated(event);
        if let Some(qp) = qp {
            self.nic.add_qp(qp);
        }
        reply
    }

    /// A per-shard NIC endpoint: a fresh `RdmaNic` whose registry holds
    /// clones of this collector's region handles. The striped backing
    /// stores are shared — writes through a shard endpoint land in exactly
    /// the memory the stores query — while QP state, segmentation cursors,
    /// and stats are endpoint-private, so shard threads can drive ingress
    /// concurrently with no shared mutable state beyond the stripes.
    pub fn shard_nic(&self) -> RdmaNic {
        RdmaNic::with_registry(self.nic.perf.config(), self.nic.memory.clone())
    }

    /// Handle a CM request for a shard connection: mint a dedicated
    /// responder QP (own PSN domain) and install it into the shard's NIC
    /// endpoint instead of the collector's main NIC.
    pub fn handle_cm_shard(&mut self, event: &CmEvent, shard: &mut RdmaNic) -> CmEvent {
        let (reply, qp) = self.cm.handle_dedicated(event);
        if let Some(qp) = qp {
            shard.add_qp(qp);
        }
        reply
    }

    /// Feed one inbound RoCE packet to the NIC.
    #[inline]
    pub fn nic_ingress(&mut self, pkt: &RocePacket) -> RxOutcome {
        self.nic.ingress(pkt)
    }

    /// Feed a burst of inbound RoCE packets to the NIC (the hot receive
    /// path), appending due responses to `responses`. Returns the number
    /// executed.
    #[inline]
    pub fn nic_ingress_burst(
        &mut self,
        pkts: &[RocePacket],
        responses: &mut Vec<RocePacket>,
    ) -> u64 {
        self.nic.ingress_burst(pkts, responses)
    }

    /// Memory instructions executed so far across all regions (Figure 8).
    pub fn memory_instructions(&self) -> u64 {
        self.nic.memory.memory_instructions()
    }

    /// The unified live read API over this collector's stores: one
    /// [`StoreQueryEngine`] fronting whichever primitives are enabled
    /// (`&mut self` because Append polls advance the reader tail).
    pub fn engine(&mut self) -> StoreQueryEngine<'_> {
        StoreQueryEngine {
            keywrite: self.keywrite.as_ref(),
            postcarding: self.postcarding.as_ref(),
            append: self.append.as_mut(),
            key_increment: self.key_increment.as_ref(),
        }
    }
}

// Multi-writer safety audit (sharded translator support).
//
// The RDMA write path's only shared mutable state is the lock-striped
// `MemoryRegion` inside each store; everything else a shard NIC endpoint
// touches (QPs, segmentation cursors, counters) is endpoint-private. The
// stores must therefore be `Sync` — queries run concurrently with shard
// writers, exactly like collector CPUs reading DRAM under active DMA — and
// `Send` so harnesses can move them between threads. `AppendReader` is the
// one deliberately single-consumer structure: its tail pointers are
// collector-CPU query state (`&mut self`), matching the paper's
// one-list-per-core rule (§6.5.3); it still must be `Send`. These are
// compile-time facts, asserted here so a refactor that adds un-synchronized
// shared state fails to build instead of racing.
const fn _assert_sync<T: Send + Sync>() {}
const fn _assert_send<T: Send>() {}
const _: () = {
    _assert_sync::<KeyWriteStore>();
    _assert_sync::<PostcardStore>();
    _assert_sync::<KeyIncrementStore>();
    _assert_send::<AppendReader>();
    _assert_send::<RdmaNic>(); // shard endpoints move onto worker threads
};

#[cfg(test)]
mod tests {
    use super::*;
    use dta_rdma::cm::CmRequester;

    #[test]
    fn all_four_services_publish() {
        let mut svc = CollectorService::new(ServiceConfig::default());
        for service in [SERVICE_KW, SERVICE_POSTCARD, SERVICE_APPEND, SERVICE_CMS] {
            let requester = CmRequester::new(0x50 + service as u32, 0);
            let reply = svc.handle_cm(&requester.request(service));
            let (qp, params) = requester.complete(&reply).expect("accept");
            assert_eq!(params.service, service);
            assert!(params.region_len > 0);
            assert_eq!(qp.dest_qpn, params.qpn);
        }
    }

    #[test]
    fn disabled_primitive_rejected() {
        let mut svc = CollectorService::new(ServiceConfig {
            kw_bytes: 0,
            ..ServiceConfig::default()
        });
        assert!(svc.keywrite.is_none());
        let requester = CmRequester::new(1, 0);
        let reply = svc.handle_cm(&requester.request(SERVICE_KW));
        assert!(requester.complete(&reply).is_err());
    }

    #[test]
    fn shard_nics_write_concurrently_into_shared_stores() {
        use bytes::Bytes;
        use dta_rdma::nic::RxOutcome;
        use dta_rdma::packet::{Reth, RocePacket};

        let mut svc = CollectorService::new(ServiceConfig::default());
        // Four shard endpoints, each with a dedicated KW QP.
        let mut shards: Vec<_> = (0..4u32)
            .map(|s| {
                let mut nic = svc.shard_nic();
                let req = CmRequester::new(0x2000 + s, 0);
                let reply = svc.handle_cm_shard(&req.request(SERVICE_KW), &mut nic);
                let (qp, params) = req.complete(&reply).unwrap();
                (nic, qp, params)
            })
            .collect();
        // Distinct responder QPNs per shard.
        let mut qpns: Vec<u32> = shards.iter().map(|(_, qp, _)| qp.dest_qpn).collect();
        qpns.sort_unstable();
        qpns.dedup();
        assert_eq!(qpns.len(), 4);

        // All four shards write disjoint slots in parallel through their
        // own endpoints; the collector's stores see every byte.
        std::thread::scope(|scope| {
            for (s, (nic, qp, params)) in shards.iter_mut().enumerate() {
                scope.spawn(move || {
                    for i in 0..256u64 {
                        let va = params.base_va + (s as u64 * 256 + i) * 8;
                        let psn = qp.next_send_psn();
                        let pkt = RocePacket::write(
                            qp.dest_qpn,
                            psn,
                            Reth { va, rkey: params.rkey, dma_len: 8 },
                            Bytes::from(vec![s as u8 + 1; 8]),
                        );
                        assert!(matches!(nic.ingress(&pkt), RxOutcome::Executed(_)));
                    }
                });
            }
        });
        let kw = svc.keywrite.as_ref().unwrap();
        for s in 0..4u64 {
            for i in 0..256u64 {
                let va = shards[0].2.base_va + (s * 256 + i) * 8;
                assert_eq!(
                    kw.region().peek(va, 8).unwrap(),
                    vec![s as u8 + 1; 8],
                    "shard {s} write {i} lost"
                );
            }
        }
    }

    #[test]
    fn end_to_end_write_via_nic() {
        use bytes::Bytes;
        use dta_rdma::packet::{Reth, RocePacket};

        let mut svc = CollectorService::new(ServiceConfig::default());
        let requester = CmRequester::new(0x99, 0);
        let reply = svc.handle_cm(&requester.request(SERVICE_KW));
        let (mut qp, params) = requester.complete(&reply).unwrap();

        // Craft a raw WRITE into slot 0 and run it through the NIC.
        let psn = qp.next_send_psn();
        let pkt = RocePacket::write(
            qp.dest_qpn,
            psn,
            Reth { va: params.base_va, rkey: params.rkey, dma_len: 8 },
            Bytes::from_static(&[0xAB; 8]),
        );
        assert!(matches!(svc.nic_ingress(&pkt), RxOutcome::Executed(_)));
        assert_eq!(svc.memory_instructions(), 1);
        let kw = svc.keywrite.as_ref().unwrap();
        assert_eq!(kw.region().peek(params.base_va, 8).unwrap(), vec![0xAB; 8]);
    }
}

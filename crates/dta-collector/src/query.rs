//! Multi-core query execution.
//!
//! "Key-Write query processing can be easily parallelized, and we found the
//! query performance to scale near-linearly when we allocated more cores"
//! (§6.5.1). The stores are `Sync` (interior mutability over the shared
//! region), so queries shard trivially across threads — each worker runs
//! its own [`StoreQueryEngine`] over the shared store.

use std::time::{Duration, Instant};

use dta_core::TelemetryKey;

use crate::append::AppendReader;
use crate::engine::{QueryEngine, QueryRequest, QueryResult, StoreQueryEngine};
use crate::keywrite::{KeyWriteStore, QueryPolicy};

/// Outcome of a parallel query run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunStats {
    /// Queries issued.
    pub queries: u64,
    /// Queries that produced a value.
    pub found: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ParallelRunStats {
    /// Queries per second.
    pub fn rate(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Fraction of queries that found a value.
    pub fn success_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.found as f64 / self.queries as f64
        }
    }
}

/// Query `keys` against `store` using `cores` threads (Figure 11a harness).
pub fn parallel_kw_query(
    store: &KeyWriteStore,
    keys: &[TelemetryKey],
    redundancy: usize,
    policy: QueryPolicy,
    cores: usize,
) -> ParallelRunStats {
    assert!(cores >= 1);
    let start = Instant::now();
    let chunk = keys.len().div_ceil(cores);
    let found: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = keys
            .chunks(chunk.max(1))
            .map(|shard| {
                s.spawn(move || {
                    let mut engine = StoreQueryEngine::for_keywrite(store);
                    shard
                        .iter()
                        .filter(|k| {
                            engine
                                .execute(&QueryRequest::KeyWrite {
                                    key: **k,
                                    redundancy,
                                    policy,
                                })
                                .result
                                .is_hit()
                        })
                        .count() as u64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query thread panicked")).sum()
    });
    ParallelRunStats { queries: keys.len() as u64, found, elapsed: start.elapsed() }
}

/// Poll `polls_per_list` entries from each of `readers` lists, one thread
/// per reader (Figure 16a harness: "We allocated a number of lists equal to
/// the number of CPU cores used during the test to prevent race conditions
/// at the tail pointer").
pub fn parallel_append_poll(readers: &mut [AppendReader], polls_per_list: u64) -> ParallelRunStats {
    let start = Instant::now();
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = readers
            .iter_mut()
            .map(|r| {
                s.spawn(move || {
                    let mut engine = StoreQueryEngine::for_append(r);
                    let mut sink = 0u64;
                    for _ in 0..polls_per_list {
                        // Every list is polled at index 0 of its own reader.
                        let resp = engine.execute(&QueryRequest::AppendPoll { list: 0 });
                        if let QueryResult::Append(e) = resp.result {
                            sink = sink.wrapping_add(e.first().copied().unwrap_or(0) as u64);
                        }
                    }
                    // Prevent the read loop from being optimized away.
                    std::hint::black_box(sink);
                    polls_per_list
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("poll thread panicked")).sum()
    });
    ParallelRunStats { queries: total, found: total, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AppendLayout, KwLayout};
    use dta_rdma::mr::{MemoryRegion, MrAccess};

    #[test]
    fn parallel_query_counts_matches_serial() {
        let layout = KwLayout { base_va: 0, slots: 1 << 14, value_bytes: 4 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let store = KeyWriteStore::new(layout, region, 4);
        let keys: Vec<_> = (0..2000u64).map(TelemetryKey::from_u64).collect();
        // Write only even keys.
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                store.insert_direct(k, &[1; 4], 2);
            }
        }
        let st = parallel_kw_query(&store, &keys, 2, QueryPolicy::Plurality, 4);
        assert_eq!(st.queries, 2000);
        // Nearly all written keys must be found (a few may lose both slots
        // to later writes at this ~0.12 load factor), and none of the
        // unwritten ones (that would need a 2^-32 checksum collision).
        assert!(st.found <= 1000, "unwritten key reported found");
        assert!(st.found >= 980, "too many written keys lost: {}", st.found);
    }

    #[test]
    fn parallel_poll_drains_all_lists() {
        let layout = AppendLayout { base_va: 0, lists: 1, entries_per_list: 256, entry_bytes: 4 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let mut readers: Vec<AppendReader> = (0..4)
            .map(|_| AppendReader::new(layout, region.clone()))
            .collect();
        let st = parallel_append_poll(&mut readers, 100);
        assert_eq!(st.queries, 400);
    }

    #[test]
    fn single_core_run_works() {
        let layout = KwLayout { base_va: 0, slots: 256, value_bytes: 4 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let store = KeyWriteStore::new(layout, region, 2);
        let keys: Vec<_> = (0..10u64).map(TelemetryKey::from_u64).collect();
        let st = parallel_kw_query(&store, &keys, 2, QueryPolicy::FirstMatch, 1);
        assert_eq!(st.queries, 10);
        assert_eq!(st.found, 0);
    }
}

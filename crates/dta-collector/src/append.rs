//! Append lists: ring buffers + the polling reader (Algorithms 3 & 4).
//!
//! "Lists are implemented as ring-buffers, and the translator keeps a
//! per-list head pointer to track where in server memory the next batch
//! should be written" (§5.2). The collector side keeps a *tail* pointer per
//! list and polls: "Extracting telemetry data from the lists is a very
//! lightweight process, requiring a pointer increment, possibly rolling back
//! to the start of the buffer, and then reading the memory location" (§6.7.1).

use std::time::Instant;

use dta_rdma::mr::MemoryRegion;

use crate::engine::SlotSource;
use crate::layout::AppendLayout;

/// Timing attribution for one poll (Figure 16b's "Increment Tail" vs
/// "Retrieval").
#[derive(Debug, Clone, Copy, Default)]
pub struct PollBreakdown {
    /// Nanoseconds advancing (and wrapping) the tail pointer.
    pub increment_tail_ns: u64,
    /// Nanoseconds reading the entry from memory.
    pub retrieval_ns: u64,
}

/// The collector-side reader over the Append region.
#[derive(Debug)]
pub struct AppendReader {
    layout: AppendLayout,
    region: MemoryRegion,
    tails: Vec<u64>,
}

impl AppendReader {
    /// Reader with all tails at entry 0.
    pub fn new(layout: AppendLayout, region: MemoryRegion) -> Self {
        assert!(region.len() as u64 >= layout.region_len());
        AppendReader { layout, region, tails: vec![0; layout.lists as usize] }
    }

    /// Geometry.
    pub fn layout(&self) -> &AppendLayout {
        &self.layout
    }

    /// The backing region (for NIC registration).
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Current tail of `list`.
    pub fn tail(&self, list: u32) -> u64 {
        self.tails[list as usize]
    }

    /// Poll one entry from `list` (Algorithm 4): read at the tail, advance,
    /// wrap. The caller is responsible for polling no faster than the
    /// translator writes (the paper allocates one list per core to avoid
    /// tail races).
    pub fn poll(&mut self, list: u32) -> Vec<u8> {
        poll_at(&self.layout, &mut self.tails, &self.region, list)
    }

    /// [`AppendReader::poll`] reading the entry from `src` instead of the
    /// live region — the same tail advance over a snapshot image (the tail
    /// is reader state, so progress carries across epochs).
    pub fn poll_from(&mut self, src: &dyn SlotSource, list: u32) -> Vec<u8> {
        poll_at(&self.layout, &mut self.tails, src, list)
    }

    /// Poll with wall-clock attribution for Figure 16b.
    pub fn poll_with_breakdown(&mut self, list: u32, breakdown: &mut PollBreakdown) -> Vec<u8> {
        let t0 = Instant::now();
        let tail = self.tails[list as usize];
        let next = (tail + 1) % self.layout.entries_per_list;
        self.tails[list as usize] = next;
        breakdown.increment_tail_ns += t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let va = self.layout.entry_va(list, tail);
        let data = self
            .region
            .read(va, self.layout.entry_bytes as usize)
            .expect("entry within region");
        breakdown.retrieval_ns += t1.elapsed().as_nanos() as u64;
        data
    }

    /// Poll `n` entries from `list`.
    pub fn poll_n(&mut self, list: u32, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.poll(list)).collect()
    }
}

/// Algorithm 4 against any [`SlotSource`]: read at the tail, advance, wrap.
/// Free-standing so [`AppendReader::poll`] can pass its own region while
/// mutably borrowing its tails.
fn poll_at(layout: &AppendLayout, tails: &mut [u64], src: &dyn SlotSource, list: u32) -> Vec<u8> {
    let tail = &mut tails[list as usize];
    let va = layout.base_va + list as u64 * layout.list_bytes() + *tail * layout.entry_bytes as u64;
    let mut data = vec![0u8; layout.entry_bytes as usize];
    assert!(src.read_slot(va, &mut data), "entry within source");
    *tail = (*tail + 1) % layout.entries_per_list;
    data
}

/// A direct (non-RDMA) writer mirroring the translator's head-pointer logic;
/// used by unit/property tests and collector-only experiments.
#[derive(Debug)]
pub struct DirectAppender {
    layout: AppendLayout,
    region: MemoryRegion,
    heads: Vec<u64>,
}

impl DirectAppender {
    /// Writer with all heads at entry 0.
    pub fn new(layout: AppendLayout, region: MemoryRegion) -> Self {
        assert!(region.len() as u64 >= layout.region_len());
        DirectAppender { layout, region, heads: vec![0; layout.lists as usize] }
    }

    /// Append one entry to `list` (wraps at the ring capacity).
    pub fn append(&mut self, list: u32, entry: &[u8]) {
        assert_eq!(entry.len(), self.layout.entry_bytes as usize);
        let head = &mut self.heads[list as usize];
        let va = self.layout.entry_va(list, *head);
        self.region.write(va, entry).expect("entry within region");
        *head = (*head + 1) % self.layout.entries_per_list;
    }

    /// Current head of `list`.
    pub fn head(&self, list: u32) -> u64 {
        self.heads[list as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_rdma::mr::MrAccess;

    fn setup(lists: u32, entries: u64) -> (DirectAppender, AppendReader) {
        let layout = AppendLayout { base_va: 0, lists, entries_per_list: entries, entry_bytes: 4 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        (DirectAppender::new(layout, region.clone()), AppendReader::new(layout, region))
    }

    #[test]
    fn fifo_order_preserved() {
        let (mut w, mut r) = setup(1, 64);
        for i in 0..10u32 {
            w.append(0, &i.to_be_bytes());
        }
        for i in 0..10u32 {
            assert_eq!(r.poll(0), i.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn lists_are_independent() {
        let (mut w, mut r) = setup(3, 16);
        w.append(0, &1u32.to_be_bytes());
        w.append(2, &3u32.to_be_bytes());
        assert_eq!(r.poll(2), 3u32.to_be_bytes().to_vec());
        assert_eq!(r.poll(0), 1u32.to_be_bytes().to_vec());
    }

    #[test]
    fn ring_wraps_at_capacity() {
        let (mut w, mut r) = setup(1, 4);
        for i in 0..6u32 {
            w.append(0, &i.to_be_bytes());
        }
        assert_eq!(w.head(0), 2); // wrapped
        // Entries 4,5 overwrote entries 0,1.
        assert_eq!(r.poll(0), 4u32.to_be_bytes().to_vec());
        assert_eq!(r.poll(0), 5u32.to_be_bytes().to_vec());
        assert_eq!(r.poll(0), 2u32.to_be_bytes().to_vec());
    }

    #[test]
    fn tail_wraps_too() {
        let (mut w, mut r) = setup(1, 4);
        for i in 0..4u32 {
            w.append(0, &i.to_be_bytes());
        }
        r.poll_n(0, 4);
        assert_eq!(r.tail(0), 0);
        w.append(0, &9u32.to_be_bytes());
        assert_eq!(r.poll(0), 9u32.to_be_bytes().to_vec());
    }

    #[test]
    fn breakdown_accumulates() {
        let (mut w, mut r) = setup(1, 1024);
        for i in 0..100u32 {
            w.append(0, &i.to_be_bytes());
        }
        let mut b = PollBreakdown::default();
        for _ in 0..100 {
            r.poll_with_breakdown(0, &mut b);
        }
        assert!(b.retrieval_ns > 0);
    }

    #[test]
    #[should_panic]
    fn wrong_entry_size_rejected() {
        let (mut w, _) = setup(1, 4);
        w.append(0, &[1, 2, 3]);
    }
}

//! The Key-Write store (Algorithms 1 & 2, Appendix A.5).
//!
//! A shared hash table for all telemetry-generating switches, written only
//! with RDMA WRITEs. Each key is stored as `N` identical `(checksum, value)`
//! entries at `N` hash-derived locations; queries validate the 32-bit key
//! checksum and take a plurality vote among matching slots.

use std::time::Instant;

use dta_core::TelemetryKey;
use dta_hash::{Checksummer, HashFamily};
use dta_rdma::mr::MemoryRegion;

use crate::engine::SlotSource;
use crate::layout::KwLayout;

/// How a query resolves multiple checksum-matching candidates
/// (Appendix A.5 discusses the tradeoffs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPolicy {
    /// Return the first checksum-matching slot's value.
    FirstMatch,
    /// Return the most frequent candidate value; ambiguous when two distinct
    /// values tie ("plurality vote", the paper's suggested default).
    Plurality,
    /// Return a value only if it appears at least `T` times (per-query
    /// consensus threshold, `T` in Algorithm 2).
    Consensus(u8),
}

/// Result of a Key-Write query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// A single winning value.
    Found(Vec<u8>),
    /// No slot carried the key's checksum (aged out / never written): the
    /// "empty return" case.
    NotFound,
    /// Matching slots disagreed and no winner satisfied the policy.
    Ambiguous,
}

impl QueryOutcome {
    /// Whether a value was produced.
    pub fn is_found(&self) -> bool {
        matches!(self, QueryOutcome::Found(_))
    }
}

/// Timing breakdown of a query (Figure 11b's "Checksum" vs "Get Slot(s)").
#[derive(Debug, Clone, Copy, Default)]
pub struct KwQueryBreakdown {
    /// Nanoseconds computing the key checksum.
    pub checksum_ns: u64,
    /// Nanoseconds computing slot addresses and reading slots.
    pub get_slots_ns: u64,
}

/// The collector-side Key-Write store.
///
/// The same structure is the target of translator RDMA WRITEs (via the
/// region registered on the NIC) and the source for operator queries.
#[derive(Debug)]
pub struct KeyWriteStore {
    layout: KwLayout,
    region: MemoryRegion,
    family: HashFamily,
    csum: Checksummer,
}

impl KeyWriteStore {
    /// Store over `region` with the given geometry, supporting redundancy up
    /// to `max_redundancy`.
    pub fn new(layout: KwLayout, region: MemoryRegion, max_redundancy: usize) -> Self {
        assert!(
            region.len() as u64 >= layout.region_len(),
            "region smaller than layout"
        );
        KeyWriteStore {
            layout,
            region,
            family: HashFamily::new(max_redundancy),
            csum: Checksummer::new(),
        }
    }

    /// The store's geometry.
    pub fn layout(&self) -> &KwLayout {
        &self.layout
    }

    /// The backing region (for NIC registration).
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Serialize one slot image: `checksum || value` (zero-padded /
    /// truncated to the layout's value width).
    pub fn slot_image(&self, key: &TelemetryKey, value: &[u8]) -> Vec<u8> {
        let w = self.layout.value_bytes as usize;
        let mut img = Vec::with_capacity(4 + w);
        img.extend_from_slice(&self.csum.checksum32(key.as_bytes()).to_be_bytes());
        let n = value.len().min(w);
        img.extend_from_slice(&value[..n]);
        img.resize(4 + w, 0);
        img
    }

    /// Direct insertion path used by simulation-scale experiments: performs
    /// the same `N` slot writes the translator would issue via RDMA.
    pub fn insert_direct(&self, key: &TelemetryKey, value: &[u8], redundancy: usize) {
        let img = self.slot_image(key, value);
        for n in 0..redundancy.min(self.family.len()) {
            let va = self.layout.slot_va(&self.family, n, key);
            self.region.write(va, &img).expect("slot within region");
        }
    }

    /// Slot reads a `redundancy`-deep query performs (clamped to the hash
    /// family): the deterministic probe count query cost models use.
    pub fn slot_probes(&self, redundancy: usize) -> u32 {
        redundancy.min(self.family.len()) as u32
    }

    /// Query `key`, reading all `redundancy` candidate slots (Algorithm 2).
    pub fn query(&self, key: &TelemetryKey, redundancy: usize, policy: QueryPolicy) -> QueryOutcome {
        self.query_inner(&self.region, key, redundancy, policy, None)
    }

    /// [`KeyWriteStore::query`] reading slot bytes from `src` instead of
    /// the live region — the same vote logic over a snapshot image.
    pub fn query_from(
        &self,
        src: &dyn SlotSource,
        key: &TelemetryKey,
        redundancy: usize,
        policy: QueryPolicy,
    ) -> QueryOutcome {
        self.query_inner(src, key, redundancy, policy, None)
    }

    /// Query with wall-clock attribution for Figure 11b.
    pub fn query_with_breakdown(
        &self,
        key: &TelemetryKey,
        redundancy: usize,
        policy: QueryPolicy,
        breakdown: &mut KwQueryBreakdown,
    ) -> QueryOutcome {
        self.query_inner(&self.region, key, redundancy, policy, Some(breakdown))
    }

    fn query_inner(
        &self,
        src: &dyn SlotSource,
        key: &TelemetryKey,
        redundancy: usize,
        policy: QueryPolicy,
        mut breakdown: Option<&mut KwQueryBreakdown>,
    ) -> QueryOutcome {
        let t0 = breakdown.is_some().then(Instant::now);
        let want = self.csum.checksum32(key.as_bytes());
        if let (Some(b), Some(t0)) = (breakdown.as_deref_mut(), t0) {
            b.checksum_ns += t0.elapsed().as_nanos() as u64;
        }

        let t1 = breakdown.is_some().then(Instant::now);
        let w = self.layout.value_bytes as usize;
        let n = redundancy.min(self.family.len());
        let mut candidates: Vec<(Vec<u8>, u8)> = Vec::with_capacity(n);
        let mut slot = vec![0u8; 4 + w];
        for i in 0..n {
            let va = self.layout.slot_va(&self.family, i, key);
            assert!(src.read_slot(va, &mut slot), "slot within source");
            let got = u32::from_be_bytes(slot[0..4].try_into().unwrap());
            if got == want {
                let value = slot[4..].to_vec();
                match candidates.iter_mut().find(|(v, _)| *v == value) {
                    Some((_, count)) => *count += 1,
                    None => candidates.push((value, 1)),
                }
            }
        }
        if let (Some(b), Some(t1)) = (breakdown, t1) {
            b.get_slots_ns += t1.elapsed().as_nanos() as u64;
        }

        if candidates.is_empty() {
            return QueryOutcome::NotFound;
        }
        match policy {
            QueryPolicy::FirstMatch => QueryOutcome::Found(candidates.swap_remove(0).0),
            QueryPolicy::Plurality => {
                candidates.sort_by_key(|c| std::cmp::Reverse(c.1));
                if candidates.len() > 1 && candidates[0].1 == candidates[1].1 {
                    QueryOutcome::Ambiguous
                } else {
                    QueryOutcome::Found(candidates.swap_remove(0).0)
                }
            }
            QueryPolicy::Consensus(t) => {
                candidates.retain(|(_, c)| *c >= t);
                match candidates.len() {
                    0 => QueryOutcome::Ambiguous,
                    1 => QueryOutcome::Found(candidates.swap_remove(0).0),
                    _ => QueryOutcome::Ambiguous,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_rdma::mr::MrAccess;

    fn store(slots: u64, value_bytes: u32) -> KeyWriteStore {
        let layout = KwLayout { base_va: 0x10_0000, slots, value_bytes };
        let region = MemoryRegion::new(
            layout.base_va,
            layout.region_len() as usize,
            1,
            MrAccess::WRITE,
        );
        KeyWriteStore::new(layout, region, 8)
    }

    #[test]
    fn insert_then_query_roundtrip() {
        let s = store(1024, 4);
        let k = TelemetryKey::from_u64(42);
        s.insert_direct(&k, &[1, 2, 3, 4], 2);
        assert_eq!(
            s.query(&k, 2, QueryPolicy::Plurality),
            QueryOutcome::Found(vec![1, 2, 3, 4])
        );
    }

    #[test]
    fn unwritten_key_not_found() {
        let s = store(1024, 4);
        assert_eq!(
            s.query(&TelemetryKey::from_u64(7), 2, QueryPolicy::Plurality),
            QueryOutcome::NotFound
        );
    }

    #[test]
    fn twenty_byte_values_roundtrip() {
        // 5-hop path tracing: 5 x 4B switch IDs.
        let s = store(1024, 20);
        let k = TelemetryKey::from_u64(5);
        let path: Vec<u8> = (0..20).collect();
        s.insert_direct(&k, &path, 2);
        assert_eq!(s.query(&k, 2, QueryPolicy::Plurality), QueryOutcome::Found(path));
    }

    #[test]
    fn short_value_zero_padded() {
        let s = store(64, 8);
        let k = TelemetryKey::from_u64(1);
        s.insert_direct(&k, &[0xAA], 1);
        assert_eq!(
            s.query(&k, 1, QueryPolicy::FirstMatch),
            QueryOutcome::Found(vec![0xAA, 0, 0, 0, 0, 0, 0, 0])
        );
    }

    #[test]
    fn overwrite_with_higher_redundancy_survives_partial_eviction() {
        let s = store(4096, 4);
        let k = TelemetryKey::from_u64(1);
        s.insert_direct(&k, &[9; 4], 4);
        // Overwrite lots of other keys with redundancy 1: some of k's slots
        // may be hit, but plurality still recovers it with high probability.
        for i in 100..600u64 {
            s.insert_direct(&TelemetryKey::from_u64(i), &[0; 4], 1);
        }
        match s.query(&k, 4, QueryPolicy::Plurality) {
            QueryOutcome::Found(v) => assert_eq!(v, vec![9; 4]),
            QueryOutcome::NotFound => {
                // Possible but requires all 4 slots overwritten: with load
                // factor 500/4096 the chance is ~(1-e^{-0.5})^4 ≈ 2.4%; if
                // this fires persistently something is wrong.
                panic!("all four redundant slots evicted — statistically implausible");
            }
            QueryOutcome::Ambiguous => panic!("ambiguous"),
        }
    }

    #[test]
    fn consensus_two_requires_two_copies() {
        let s = store(1 << 16, 4);
        let k = TelemetryKey::from_u64(77);
        s.insert_direct(&k, &[5; 4], 1); // only one copy
        assert_eq!(s.query(&k, 1, QueryPolicy::Consensus(2)), QueryOutcome::Ambiguous);
        s.insert_direct(&k, &[5; 4], 2);
        assert_eq!(
            s.query(&k, 2, QueryPolicy::Consensus(2)),
            QueryOutcome::Found(vec![5; 4])
        );
    }

    #[test]
    fn newer_write_wins() {
        let s = store(1024, 4);
        let k = TelemetryKey::from_u64(3);
        s.insert_direct(&k, &[1; 4], 2);
        s.insert_direct(&k, &[2; 4], 2);
        assert_eq!(s.query(&k, 2, QueryPolicy::Plurality), QueryOutcome::Found(vec![2; 4]));
    }

    #[test]
    fn breakdown_accumulates() {
        let s = store(1024, 4);
        let k = TelemetryKey::from_u64(8);
        s.insert_direct(&k, &[1; 4], 2);
        let mut b = KwQueryBreakdown::default();
        for _ in 0..100 {
            s.query_with_breakdown(&k, 2, QueryPolicy::Plurality, &mut b);
        }
        assert!(b.checksum_ns > 0);
        assert!(b.get_slots_ns > 0);
    }

    #[test]
    fn aged_out_key_becomes_not_found() {
        // Tiny store: 8 slots. Write one key, then flood with 100 others.
        let s = store(8, 4);
        let k = TelemetryKey::from_u64(0);
        s.insert_direct(&k, &[7; 4], 2);
        for i in 1..100u64 {
            s.insert_direct(&TelemetryKey::from_u64(i), &[0; 4], 2);
        }
        // k's slots are certainly overwritten; outcome must not be k's value
        // unless a checksum collision occurred (2^-32 per slot).
        if let QueryOutcome::Found(v) = s.query(&k, 2, QueryPolicy::Plurality) {
            assert_ne!(v, vec![7; 4], "ghost value survived a full overwrite");
        }
    }
}

#[cfg(test)]
mod redundancy_default_tests {
    use super::*;
    use crate::layout::KwLayout;
    use dta_core::TelemetryKey;
    use dta_rdma::mr::{MemoryRegion, MrAccess};

    /// §4: "As the level of redundancy used at report-time may not be known
    /// while querying, the collector can assume by default a maximum (e.g.,
    /// 4) redundancy level. If the data was reported using fewer slots,
    /// unused slots would appear as overwritten entries (collision)."
    #[test]
    fn querying_with_max_redundancy_finds_lower_redundancy_writes() {
        let layout = KwLayout { base_va: 0, slots: 1 << 14, value_bytes: 4 };
        let region =
            MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let store = KeyWriteStore::new(layout, region, 4);
        // Writers used N = 1, 2, 3 — the querier always asks with N = 4.
        for (i, n) in [(1u64, 1usize), (2, 2), (3, 3)] {
            let k = TelemetryKey::from_u64(i);
            store.insert_direct(&k, &[i as u8; 4], n);
            assert_eq!(
                store.query(&k, 4, QueryPolicy::Plurality),
                QueryOutcome::Found(vec![i as u8; 4]),
                "N={n} write must be queryable at default N=4"
            );
        }
    }
}

//! Shared memory geometry.
//!
//! Indexing is "performed statelessly without collaboration through global
//! hash functions" (§4): the translator computes a slot address from the key
//! alone, and the collector recomputes the same address at query time. These
//! layout types are that shared arithmetic; both sides must use identical
//! parameters (they are exchanged via CM at connection setup).

use dta_core::TelemetryKey;
use dta_hash::HashFamily;
use serde::{Deserialize, Serialize};

/// Geometry of a Key-Write region: `slots` slots of `4 + value_bytes` each
/// (32-bit checksum concatenated with the value, §5.2: "a concatenated 4B
/// checksum for Key-Write").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KwLayout {
    /// Base virtual address of the region.
    pub base_va: u64,
    /// Number of key-value slots (`Buf_len` in Algorithm 1).
    pub slots: u64,
    /// Telemetry value width in bytes (4 for INT postcards, 20 for 5-hop
    /// paths).
    pub value_bytes: u32,
}

impl KwLayout {
    /// Checksum width in bytes.
    pub const CSUM_BYTES: u32 = 4;

    /// Slot stride in bytes.
    pub fn slot_bytes(&self) -> u32 {
        Self::CSUM_BYTES + self.value_bytes
    }

    /// Total region length in bytes.
    pub fn region_len(&self) -> u64 {
        self.slots * self.slot_bytes() as u64
    }

    /// Layout sized to `bytes` of storage at `base_va`.
    pub fn with_capacity(base_va: u64, bytes: u64, value_bytes: u32) -> Self {
        let slot = (Self::CSUM_BYTES + value_bytes) as u64;
        KwLayout { base_va, slots: bytes / slot, value_bytes }
    }

    /// Slot index for redundancy copy `n` of `key` (`h0(n, K) mod Buf_len`).
    pub fn slot_index(&self, family: &HashFamily, n: usize, key: &TelemetryKey) -> u64 {
        family.slot(n, key.as_bytes(), self.slots)
    }

    /// Virtual address of redundancy copy `n` of `key`.
    pub fn slot_va(&self, family: &HashFamily, n: usize, key: &TelemetryKey) -> u64 {
        self.base_va + self.slot_index(family, n, key) * self.slot_bytes() as u64
    }

    /// Virtual address from a precomputed raw digest `h_n(key)` (the
    /// translator's cached-digest hot path; must agree with
    /// [`KwLayout::slot_va`]).
    #[inline]
    pub fn slot_va_from_digest(&self, digest: u32) -> u64 {
        self.base_va + dta_hash::slot_of(digest, self.slots) * self.slot_bytes() as u64
    }
}

/// Geometry of a Postcarding region (Figure 5): `chunks` chunks of `B` hop
/// slots, each slot 4 bytes, chunk stride padded to a power of two
/// ("the chunk sizes are therefore padded from 5∗4B = 20B to 32B", §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostcardLayout {
    /// Base virtual address.
    pub base_va: u64,
    /// Number of chunks (`C = M / B`).
    pub chunks: u64,
    /// Hop bound `B` (5 for fat-tree data centers).
    pub hops: u8,
    /// Checksum/value width in bits (`b` in the analysis; ≤ 32).
    pub slot_bits: u32,
}

impl PostcardLayout {
    /// Bytes per hop slot (fixed 32-bit payloads as on the Tofino
    /// prototype).
    pub const SLOT_BYTES: u32 = 4;

    /// Chunk stride in bytes: `B * 4` padded up to the next power of two
    /// (bitshift-based address multiplication on the ASIC).
    pub fn chunk_stride(&self) -> u64 {
        let raw = self.hops as u64 * Self::SLOT_BYTES as u64;
        raw.next_power_of_two()
    }

    /// Total region length in bytes.
    pub fn region_len(&self) -> u64 {
        self.chunks * self.chunk_stride()
    }

    /// Layout sized to `bytes` at `base_va`.
    pub fn with_capacity(base_va: u64, bytes: u64, hops: u8, slot_bits: u32) -> Self {
        let stride = (hops as u64 * Self::SLOT_BYTES as u64).next_power_of_two();
        PostcardLayout { base_va, chunks: bytes / stride, hops, slot_bits }
    }

    /// Chunk index for redundancy copy `n` of flow `key` (`h_j(x)`).
    pub fn chunk_index(&self, family: &HashFamily, n: usize, key: &TelemetryKey) -> u64 {
        family.slot(n, key.as_bytes(), self.chunks)
    }

    /// Virtual address of hop slot `hop` in redundancy copy `n` of `key`
    /// (`B·h_j(x) + i` scaled to bytes).
    pub fn slot_va(&self, family: &HashFamily, n: usize, key: &TelemetryKey, hop: u8) -> u64 {
        debug_assert!(hop < self.hops);
        self.base_va
            + self.chunk_index(family, n, key) * self.chunk_stride()
            + hop as u64 * Self::SLOT_BYTES as u64
    }

    /// Virtual address of the start of chunk `n` for `key` (batched whole-
    /// chunk writes).
    pub fn chunk_va(&self, family: &HashFamily, n: usize, key: &TelemetryKey) -> u64 {
        self.base_va + self.chunk_index(family, n, key) * self.chunk_stride()
    }

    /// Chunk start address from a precomputed raw digest `h_n(key)` (must
    /// agree with [`PostcardLayout::chunk_va`]).
    #[inline]
    pub fn chunk_va_from_digest(&self, digest: u32) -> u64 {
        self.base_va + dta_hash::slot_of(digest, self.chunks) * self.chunk_stride()
    }
}

/// Geometry of an Append region: `lists` ring buffers of `entries_per_list`
/// entries of `entry_bytes` each, laid out list-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppendLayout {
    /// Base virtual address.
    pub base_va: u64,
    /// Number of lists (the prototype tracks up to 131K).
    pub lists: u32,
    /// Ring capacity per list, in entries. Must be a multiple of the batch
    /// size so batches never straddle the wrap point.
    pub entries_per_list: u64,
    /// Entry width in bytes (4 for the paper's queue-depth events).
    pub entry_bytes: u32,
}

impl AppendLayout {
    /// Bytes per list.
    pub fn list_bytes(&self) -> u64 {
        self.entries_per_list * self.entry_bytes as u64
    }

    /// Total region length.
    pub fn region_len(&self) -> u64 {
        self.lists as u64 * self.list_bytes()
    }

    /// Virtual address of `entry` in `list`.
    pub fn entry_va(&self, list: u32, entry: u64) -> u64 {
        debug_assert!(list < self.lists);
        debug_assert!(entry < self.entries_per_list);
        self.base_va + list as u64 * self.list_bytes() + entry * self.entry_bytes as u64
    }
}

/// Geometry of a Key-Increment region: a flat array of 8-byte counters
/// addressed through `N` hash functions (count-min semantics over a single
/// array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmsLayout {
    /// Base virtual address.
    pub base_va: u64,
    /// Number of 8-byte counters.
    pub slots: u64,
}

impl CmsLayout {
    /// Counter width (RoCE FETCH_ADD operates on 64 bits).
    pub const SLOT_BYTES: u32 = 8;

    /// Total region length.
    pub fn region_len(&self) -> u64 {
        self.slots * Self::SLOT_BYTES as u64
    }

    /// Virtual address of copy `n` of `key`'s counter.
    pub fn slot_va(&self, family: &HashFamily, n: usize, key: &TelemetryKey) -> u64 {
        self.base_va + family.slot(n, key.as_bytes(), self.slots) * Self::SLOT_BYTES as u64
    }

    /// Counter address from a precomputed raw digest `h_n(key)` (must agree
    /// with [`CmsLayout::slot_va`]).
    #[inline]
    pub fn slot_va_from_digest(&self, digest: u32) -> u64 {
        self.base_va + dta_hash::slot_of(digest, self.slots) * Self::SLOT_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fam() -> HashFamily {
        HashFamily::new(4)
    }

    #[test]
    fn kw_slot_addresses_in_bounds() {
        let l = KwLayout { base_va: 0x1000, slots: 100, value_bytes: 4 };
        let f = fam();
        for i in 0..50u64 {
            let k = TelemetryKey::from_u64(i);
            for n in 0..4 {
                let va = l.slot_va(&f, n, &k);
                assert!(va >= l.base_va);
                assert!(va + l.slot_bytes() as u64 <= l.base_va + l.region_len());
                assert_eq!((va - l.base_va) % l.slot_bytes() as u64, 0);
            }
        }
    }

    #[test]
    fn kw_with_capacity_4gib() {
        // The paper's 4GiB store with 4B values: 8B slots, 512Mi slots.
        let l = KwLayout::with_capacity(0, 4 << 30, 4);
        assert_eq!(l.slots, (4u64 << 30) / 8);
    }

    #[test]
    fn postcard_stride_padded_to_power_of_two() {
        let l = PostcardLayout { base_va: 0, chunks: 10, hops: 5, slot_bits: 32 };
        assert_eq!(l.chunk_stride(), 32); // 20B -> 32B as in §5.2
        let l3 = PostcardLayout { base_va: 0, chunks: 10, hops: 3, slot_bits: 32 };
        assert_eq!(l3.chunk_stride(), 16);
    }

    #[test]
    fn postcard_hops_are_consecutive() {
        let l = PostcardLayout { base_va: 0, chunks: 64, hops: 5, slot_bits: 32 };
        let f = fam();
        let k = TelemetryKey::from_u64(9);
        let base = l.slot_va(&f, 0, &k, 0);
        for hop in 1..5u8 {
            assert_eq!(l.slot_va(&f, 0, &k, hop), base + 4 * hop as u64);
        }
        assert_eq!(l.chunk_va(&f, 0, &k), base);
    }

    #[test]
    fn append_entries_contiguous_per_list() {
        let l = AppendLayout { base_va: 0x100, lists: 4, entries_per_list: 16, entry_bytes: 4 };
        assert_eq!(l.entry_va(0, 0), 0x100);
        assert_eq!(l.entry_va(0, 1), 0x104);
        assert_eq!(l.entry_va(1, 0), 0x100 + 64);
        assert_eq!(l.region_len(), 4 * 64);
    }

    #[test]
    fn cms_addresses_aligned_for_atomics() {
        let l = CmsLayout { base_va: 0, slots: 1024 };
        let f = fam();
        for i in 0..100u64 {
            let k = TelemetryKey::from_u64(i);
            for n in 0..4 {
                assert_eq!(l.slot_va(&f, n, &k) % 8, 0);
            }
        }
    }

    #[test]
    fn digest_addressing_matches_family_addressing() {
        // The translator's cached-digest fast path and the collector's
        // family-based query path must compute identical addresses.
        let f = fam();
        let kw = KwLayout { base_va: 0x1000, slots: 999, value_bytes: 4 };
        let pc = PostcardLayout { base_va: 0x2000, chunks: 77, hops: 5, slot_bits: 32 };
        let cms = CmsLayout { base_va: 0x3000, slots: 1234 };
        for i in 0..200u64 {
            let k = TelemetryKey::from_u64(i);
            for n in 0..4 {
                let digest = f.hash(n, k.as_bytes());
                assert_eq!(kw.slot_va_from_digest(digest), kw.slot_va(&f, n, &k));
                assert_eq!(pc.chunk_va_from_digest(digest), pc.chunk_va(&f, n, &k));
                assert_eq!(cms.slot_va_from_digest(digest), cms.slot_va(&f, n, &k));
            }
        }
    }

    #[test]
    fn translator_and_collector_agree_on_addresses() {
        // The whole point of the layout module: two independently
        // constructed hash families compute identical addresses.
        let l = KwLayout { base_va: 0, slots: 4096, value_bytes: 4 };
        let writer = HashFamily::new(2);
        let reader = HashFamily::new(2);
        let k = TelemetryKey::from_u64(1234);
        for n in 0..2 {
            assert_eq!(l.slot_va(&writer, n, &k), l.slot_va(&reader, n, &k));
        }
    }
}

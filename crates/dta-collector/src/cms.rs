//! The Key-Increment store (Algorithms 5 & 6).
//!
//! "Our KI memory acts as a Count-Min Sketch and we increment N values using
//! the RDMA Fetch-and-Add primitive. On a query, KI returns the minimum
//! value from these N locations. Hash collisions may lead to an overestimate
//! of the value, with error guarantees matching those of Count-Min Sketches.
//! The counters' memory may be reset periodically." (§4)

use dta_core::TelemetryKey;
use dta_hash::HashFamily;
use dta_rdma::mr::MemoryRegion;

use crate::engine::SlotSource;
use crate::layout::CmsLayout;

/// The collector-side Key-Increment (count-min) store.
#[derive(Debug)]
pub struct KeyIncrementStore {
    layout: CmsLayout,
    region: MemoryRegion,
    family: HashFamily,
}

impl KeyIncrementStore {
    /// Store over `region` with redundancy up to `max_redundancy`.
    pub fn new(layout: CmsLayout, region: MemoryRegion, max_redundancy: usize) -> Self {
        assert!(region.len() as u64 >= layout.region_len());
        KeyIncrementStore { layout, region, family: HashFamily::new(max_redundancy) }
    }

    /// Geometry.
    pub fn layout(&self) -> &CmsLayout {
        &self.layout
    }

    /// The backing region (for NIC registration — must be atomic-capable).
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Direct increment path (the N FETCH_ADDs the translator would issue).
    pub fn increment_direct(&self, key: &TelemetryKey, delta: u64, redundancy: usize) {
        for n in 0..redundancy.min(self.family.len()) {
            let va = self.layout.slot_va(&self.family, n, key);
            self.region.fetch_add(va, delta).expect("slot within region");
        }
    }

    /// Counter reads a `redundancy`-deep query performs (clamped to the
    /// hash family).
    pub fn slot_probes(&self, redundancy: usize) -> u32 {
        redundancy.min(self.family.len()) as u32
    }

    /// Query: minimum over the `redundancy` counters (Algorithm 6). Always
    /// an over-estimate of the true sum for this key (count-min property).
    pub fn query(&self, key: &TelemetryKey, redundancy: usize) -> u64 {
        self.query_from(&self.region, key, redundancy)
    }

    /// [`KeyIncrementStore::query`] reading counters from `src` instead of
    /// the live region — the same min over a snapshot image.
    pub fn query_from(&self, src: &dyn SlotSource, key: &TelemetryKey, redundancy: usize) -> u64 {
        (0..redundancy.min(self.family.len()))
            .map(|n| {
                let va = self.layout.slot_va(&self.family, n, key);
                let mut raw = [0u8; 8];
                assert!(src.read_slot(va, &mut raw), "slot within source");
                u64::from_be_bytes(raw)
            })
            .min()
            .unwrap_or(0)
    }

    /// Periodic counter reset.
    pub fn reset(&self) {
        self.region.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_rdma::mr::MrAccess;

    fn store(slots: u64) -> KeyIncrementStore {
        let layout = CmsLayout { base_va: 0, slots };
        let region =
            MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::ATOMIC);
        KeyIncrementStore::new(layout, region, 4)
    }

    #[test]
    fn increments_accumulate() {
        let s = store(1024);
        let k = TelemetryKey::src_ip(0x0A000001);
        s.increment_direct(&k, 5, 2);
        s.increment_direct(&k, 7, 2);
        assert_eq!(s.query(&k, 2), 12);
    }

    #[test]
    fn unseen_key_is_zero_or_overestimate() {
        let s = store(1 << 16);
        let k = TelemetryKey::src_ip(1);
        assert_eq!(s.query(&k, 2), 0);
    }

    #[test]
    fn count_min_never_underestimates() {
        let s = store(64); // tiny: force collisions
        let mut truth = std::collections::HashMap::new();
        for i in 0..200u64 {
            let k = TelemetryKey::from_u64(i % 50);
            s.increment_direct(&k, 1, 2);
            *truth.entry(i % 50).or_insert(0u64) += 1;
        }
        for (id, count) in truth {
            let est = s.query(&TelemetryKey::from_u64(id), 2);
            assert!(est >= count, "key {id}: est {est} < true {count}");
        }
    }

    #[test]
    fn more_hashes_tighten_estimates() {
        // With heavy collisions, min over 4 slots <= min over 1 slot.
        let s = store(32);
        for i in 0..100u64 {
            s.increment_direct(&TelemetryKey::from_u64(i), 1, 4);
        }
        let k = TelemetryKey::from_u64(0);
        assert!(s.query(&k, 4) <= s.query(&k, 1));
    }

    #[test]
    fn reset_clears_counters() {
        let s = store(128);
        let k = TelemetryKey::from_u64(1);
        s.increment_direct(&k, 100, 2);
        s.reset();
        assert_eq!(s.query(&k, 2), 0);
    }
}

//! The Postcarding store (§4, Figure 5, Appendix A.6).
//!
//! Postcards for flow `x` are written into a consecutive chunk of `B` hop
//! slots at `B·h(x) + i`. Each slot stores `checksum(x, i) ⊕ g(v)` where `g`
//! hashes the value set `V` into `b`-bit strings — no per-slot key checksum
//! is needed, and querying a full path costs one random memory access.

use std::collections::HashMap;

use dta_core::TelemetryKey;
use dta_hash::{checksum_b, Crc32, CrcParams, HashFamily};
use dta_rdma::mr::MemoryRegion;

use crate::engine::SlotSource;
use crate::layout::PostcardLayout;

/// The value encoder `g : V ∪ {⊔} -> b bits` plus its pre-populated decode
/// table ("a pre-populated lookup table that stores all key-value pairs
/// {(g(v), v) | v ∈ V ∪ {⊔}}", §4).
#[derive(Debug, Clone)]
pub struct ValueCodec {
    bits: u32,
    engine: Crc32,
    /// Shared: the table is a pure function of the value universe and
    /// `bits`, and [`ValueCodec::switch_ids`] memoizes it process-wide
    /// (populating thousands of entries per collector/translator
    /// construction cost real microseconds per scenario run).
    decode: std::sync::Arc<HashMap<u32, Option<u32>>>,
}

/// Byte tag distinguishing the blank value ⊔ from real values under `g`.
const BLANK_TAG: &[u8] = b"\xFFDTA-BLANK";

/// Process-wide decode-table cache for [`ValueCodec::switch_ids`].
#[allow(clippy::type_complexity)] // keyed-cache entry, local to this fn
fn switch_id_cache(
) -> &'static std::sync::Mutex<Vec<((u32, u32), std::sync::Arc<HashMap<u32, Option<u32>>>)>> {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<Vec<((u32, u32), std::sync::Arc<HashMap<u32, Option<u32>>>)>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

impl ValueCodec {
    /// Codec over the value universe `values` (e.g., all switch IDs) with
    /// `b`-bit slots.
    pub fn new(values: impl IntoIterator<Item = u32>, bits: u32) -> Self {
        assert!((1..=32).contains(&bits));
        let engine = Crc32::new(CrcParams::CASTAGNOLI);
        let mut codec =
            ValueCodec { bits, engine, decode: std::sync::Arc::new(HashMap::new()) };
        let mut decode = HashMap::new();
        let blank = codec.encode(None);
        decode.insert(blank, None);
        for v in values {
            let g = codec.encode(Some(v));
            // First writer wins on g-collisions; with b=32 and |V| <= 2^18
            // the collision probability is ~2^-14 per pair and the analysis
            // accounts for it as a wrong-output term.
            decode.entry(g).or_insert(Some(v));
        }
        codec.decode = std::sync::Arc::new(decode);
        codec
    }

    /// Codec for a contiguous id space `0..n` (data-center switch IDs).
    /// The decode table is memoized per `(n, bits)` process-wide.
    pub fn switch_ids(n: u32, bits: u32) -> Self {
        let mut cache = switch_id_cache().lock().expect("codec cache poisoned");
        if let Some((_, decode)) = cache.iter().find(|((cn, cb), _)| (*cn, *cb) == (n, bits)) {
            return ValueCodec {
                bits,
                engine: Crc32::new(CrcParams::CASTAGNOLI),
                decode: std::sync::Arc::clone(decode),
            };
        }
        let codec = Self::new(0..n, bits);
        cache.push(((n, bits), std::sync::Arc::clone(&codec.decode)));
        codec
    }

    /// Slot width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `g(v)`, masked to `b` bits. `None` encodes the blank value ⊔.
    pub fn encode(&self, v: Option<u32>) -> u32 {
        let full = match v {
            Some(v) => self.engine.compute(&v.to_be_bytes()),
            None => self.engine.compute(BLANK_TAG),
        };
        self.mask(full)
    }

    /// Reverse lookup: the `v` with `g(v) == code`, if any.
    pub fn decode(&self, code: u32) -> Option<&Option<u32>> {
        self.decode.get(&code)
    }

    /// Mask a word to the codec's `b` bits.
    pub fn mask(&self, v: u32) -> u32 {
        if self.bits == 32 {
            v
        } else {
            v & ((1u32 << self.bits) - 1)
        }
    }
}

/// Per-hop slot checksum `checksum(x, i)`, masked to `bits`.
///
/// A free function because writer (translator) and reader (collector)
/// compute it independently; both must agree bit-for-bit.
pub fn hop_checksum(key: &TelemetryKey, hop: u8, bits: u32) -> u32 {
    let mut buf = [0u8; 17];
    buf[..16].copy_from_slice(key.as_bytes());
    buf[16] = hop;
    checksum_b(&buf, bits)
}

/// Result of a Postcarding query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PostcardQueryOutcome {
    /// The decoded per-hop values `v_{x,0} .. v_{x,l-1}` (path length `l`).
    Found(Vec<u32>),
    /// No redundancy chunk held valid information.
    NotFound,
    /// Valid chunks disagreed.
    Ambiguous,
}

impl PostcardQueryOutcome {
    /// Whether a path was produced.
    pub fn is_found(&self) -> bool {
        matches!(self, PostcardQueryOutcome::Found(_))
    }
}

/// The collector-side Postcarding store.
#[derive(Debug)]
pub struct PostcardStore {
    layout: PostcardLayout,
    region: MemoryRegion,
    family: HashFamily,
    codec: ValueCodec,
}

impl PostcardStore {
    /// Store over `region`, with redundancy up to `max_redundancy`.
    pub fn new(
        layout: PostcardLayout,
        region: MemoryRegion,
        codec: ValueCodec,
        max_redundancy: usize,
    ) -> Self {
        assert!(region.len() as u64 >= layout.region_len());
        assert_eq!(layout.slot_bits, codec.bits(), "layout/codec bit width mismatch");
        PostcardStore { layout, region, family: HashFamily::new(max_redundancy), codec }
    }

    /// Geometry.
    pub fn layout(&self) -> &PostcardLayout {
        &self.layout
    }

    /// The backing region (for NIC registration).
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Value codec (shared with the translator).
    pub fn codec(&self) -> &ValueCodec {
        &self.codec
    }

    /// Per-hop slot checksum `checksum(x, i)`, `b` bits.
    pub fn hop_checksum(&self, key: &TelemetryKey, hop: u8) -> u32 {
        hop_checksum(key, hop, self.layout.slot_bits)
    }

    /// Encode the slot word for `(key, hop, value)`:
    /// `checksum(x,i) ⊕ g(v)`.
    pub fn slot_word(&self, key: &TelemetryKey, hop: u8, value: Option<u32>) -> u32 {
        self.hop_checksum(key, hop) ^ self.codec.encode(value)
    }

    /// Build the full chunk image for a path (missing hops become blank ⊔ so
    /// "each flow always writes all B hops' values", §4). The image is
    /// padded to the chunk stride.
    pub fn chunk_image(&self, key: &TelemetryKey, path: &[u32]) -> Vec<u8> {
        assert!(path.len() <= self.layout.hops as usize, "path longer than B");
        let mut img = Vec::with_capacity(self.layout.chunk_stride() as usize);
        for hop in 0..self.layout.hops {
            let v = path.get(hop as usize).copied();
            img.extend_from_slice(&self.slot_word(key, hop, v).to_be_bytes());
        }
        img.resize(self.layout.chunk_stride() as usize, 0);
        img
    }

    /// Direct aggregated insertion (the write the translator issues once all
    /// postcards for `key` are cached): one chunk write per redundancy copy.
    pub fn insert_direct(&self, key: &TelemetryKey, path: &[u32], redundancy: usize) {
        let img = self.chunk_image(key, path);
        for n in 0..redundancy.min(self.family.len()) {
            let va = self.layout.chunk_va(&self.family, n, key);
            self.region.write(va, &img).expect("chunk within region");
        }
    }

    /// Chunk reads a `redundancy`-deep query performs (clamped to the hash
    /// family).
    pub fn slot_probes(&self, redundancy: usize) -> u32 {
        redundancy.min(self.family.len()) as u32
    }

    /// Attempt to decode redundancy copy `n` of `key`'s chunk. Returns the
    /// path when the chunk holds valid information for this key.
    fn decode_chunk(&self, src: &dyn SlotSource, key: &TelemetryKey, n: usize) -> Option<Vec<u32>> {
        let va = self.layout.chunk_va(&self.family, n, key);
        let mut raw = vec![0u8; (self.layout.hops as usize) * PostcardLayout::SLOT_BYTES as usize];
        assert!(src.read_slot(va, &mut raw), "chunk within source");
        let mut values = Vec::with_capacity(self.layout.hops as usize);
        let mut blank_seen = false;
        for hop in 0..self.layout.hops {
            let off = hop as usize * 4;
            let word =
                self.codec.mask(u32::from_be_bytes(raw[off..off + 4].try_into().unwrap()));
            let g = word ^ self.hop_checksum(key, hop);
            match self.codec.decode(g) {
                Some(Some(v)) => {
                    if blank_seen {
                        // Value after a blank: not a valid prefix encoding.
                        return None;
                    }
                    values.push(*v);
                }
                Some(None) => blank_seen = true,
                None => return None, // not a valid codeword for this key
            }
        }
        Some(values)
    }

    /// Query the path for `key` (§4's decoding rule): output a path only if
    /// at least one chunk decodes and all decoding chunks agree.
    pub fn query(&self, key: &TelemetryKey, redundancy: usize) -> PostcardQueryOutcome {
        self.query_from(&self.region, key, redundancy)
    }

    /// [`PostcardStore::query`] reading chunks from `src` instead of the
    /// live region — the same decode over a snapshot image.
    pub fn query_from(
        &self,
        src: &dyn SlotSource,
        key: &TelemetryKey,
        redundancy: usize,
    ) -> PostcardQueryOutcome {
        let n = redundancy.min(self.family.len());
        let mut winner: Option<Vec<u32>> = None;
        for i in 0..n {
            if let Some(path) = self.decode_chunk(src, key, i) {
                match &winner {
                    Some(w) if *w != path => return PostcardQueryOutcome::Ambiguous,
                    _ => winner = Some(path),
                }
            }
        }
        match winner {
            Some(path) => PostcardQueryOutcome::Found(path),
            None => PostcardQueryOutcome::NotFound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_rdma::mr::MrAccess;

    fn store(chunks: u64, bits: u32) -> PostcardStore {
        let layout = PostcardLayout { base_va: 0, chunks, hops: 5, slot_bits: bits };
        let region =
            MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let codec = ValueCodec::switch_ids(1 << 10, bits);
        PostcardStore::new(layout, region, codec, 4)
    }

    #[test]
    fn full_path_roundtrip() {
        let s = store(1024, 32);
        let k = TelemetryKey::from_u64(1);
        let path = vec![10, 20, 30, 40, 50];
        s.insert_direct(&k, &path, 2);
        assert_eq!(s.query(&k, 2), PostcardQueryOutcome::Found(path));
    }

    #[test]
    fn short_path_roundtrip() {
        // A 3-hop path in a B=5 store: hops 3,4 are blank.
        let s = store(1024, 32);
        let k = TelemetryKey::from_u64(2);
        let path = vec![7, 8, 9];
        s.insert_direct(&k, &path, 2);
        assert_eq!(s.query(&k, 2), PostcardQueryOutcome::Found(path));
    }

    #[test]
    fn empty_store_not_found() {
        let s = store(256, 32);
        assert_eq!(s.query(&TelemetryKey::from_u64(3), 2), PostcardQueryOutcome::NotFound);
    }

    #[test]
    fn zero_length_path_roundtrip() {
        let s = store(256, 32);
        let k = TelemetryKey::from_u64(4);
        s.insert_direct(&k, &[], 1);
        assert_eq!(s.query(&k, 1), PostcardQueryOutcome::Found(vec![]));
    }

    #[test]
    fn overwritten_chunk_rarely_validates() {
        // Fill a tiny store with other flows; the victim's chunks are
        // overwritten and must (almost surely) decode to NotFound rather
        // than a wrong path.
        let s = store(16, 32);
        let victim = TelemetryKey::from_u64(0);
        s.insert_direct(&victim, &[1, 2, 3, 4, 5], 2);
        for i in 1..200u64 {
            s.insert_direct(&TelemetryKey::from_u64(i), &[9, 9, 9, 9, 9], 2);
        }
        match s.query(&victim, 2) {
            PostcardQueryOutcome::Found(p) => {
                assert_ne!(p, vec![1, 2, 3, 4, 5], "evicted path resurrected");
            }
            PostcardQueryOutcome::NotFound | PostcardQueryOutcome::Ambiguous => {}
        }
    }

    #[test]
    fn narrow_slots_still_roundtrip() {
        // b = 16-bit slots: higher collision chance, same correctness for a
        // clean store.
        let s = store(1024, 16);
        let k = TelemetryKey::from_u64(5);
        let path = vec![100, 200];
        s.insert_direct(&k, &path, 1);
        assert_eq!(s.query(&k, 1), PostcardQueryOutcome::Found(path));
    }

    #[test]
    fn redundant_chunks_agree() {
        let s = store(4096, 32);
        let k = TelemetryKey::from_u64(6);
        let path = vec![1, 2, 3, 4, 5];
        s.insert_direct(&k, &path, 4);
        // All four chunks decode to the same path.
        for n in 1..=4 {
            assert_eq!(s.query(&k, n), PostcardQueryOutcome::Found(path.clone()));
        }
    }

    #[test]
    fn codec_blank_distinct_from_values() {
        let codec = ValueCodec::switch_ids(1 << 12, 32);
        let blank = codec.encode(None);
        for v in 0..(1u32 << 12) {
            assert_ne!(codec.encode(Some(v)), blank, "value {v} aliases blank");
        }
    }

    #[test]
    fn codec_decode_inverts_encode() {
        let codec = ValueCodec::switch_ids(4096, 32);
        for v in [0u32, 1, 17, 4095] {
            assert_eq!(codec.decode(codec.encode(Some(v))), Some(&Some(v)));
        }
        assert_eq!(codec.decode(codec.encode(None)), Some(&None));
    }

    #[test]
    fn value_after_blank_invalidates_chunk() {
        // Hand-craft a chunk with pattern [v, blank, v, blank, blank]: the
        // prefix rule must reject it.
        let s = store(64, 32);
        let k = TelemetryKey::from_u64(7);
        let mut img = Vec::new();
        for (hop, v) in [(0u8, Some(1u32)), (1, None), (2, Some(2)), (3, None), (4, None)] {
            img.extend_from_slice(&s.slot_word(&k, hop, v).to_be_bytes());
        }
        img.resize(s.layout().chunk_stride() as usize, 0);
        let fam = HashFamily::new(4);
        let va = s.layout().chunk_va(&fam, 0, &k);
        s.region().write(va, &img).unwrap();
        assert_eq!(s.query(&k, 1), PostcardQueryOutcome::NotFound);
    }
}

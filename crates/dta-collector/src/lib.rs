//! The DTA collector.
//!
//! The collector is "1.3K lines of C++ using standard Infiniband RDMA
//! libraries, with support for per-primitive memory structures and querying
//! the reported telemetry data" (§5.3). This crate is its Rust counterpart,
//! hosted on the simulated RDMA NIC of `dta-rdma`:
//!
//! * [`layout`] — the shared memory geometry: how keys map to slot virtual
//!   addresses for each primitive. The translator (writer) and the collector
//!   (reader) compute addresses with these same functions, statelessly,
//!   through global hash functions — the core trick that makes the stores
//!   write-only.
//! * [`keywrite`] — the N-redundant checksummed key-value store
//!   (Algorithm 1 & 2, analysed in Appendix A.5).
//! * [`postcarding`] — the chunked XOR-encoded postcard store (§4,
//!   Appendix A.6).
//! * [`append`] — ring-buffer lists and the polling reader (Algorithm 3 & 4).
//! * [`cms`] — the Key-Increment count-min store (Algorithm 5 & 6).
//! * [`service`] — glues the stores to the RDMA NIC: region registration,
//!   CM publishing, and an ingress loop.
//! * [`engine`] — the unified [`engine::QueryEngine`] read API over all
//!   four primitives, serving either live regions or pooled snapshot
//!   images through one dispatch path.
//! * [`query`] — multi-core query execution (Figure 11 / 16 harness),
//!   routed through the engine.

// Lint floor (enforced by `dta-lint` + clippy -D warnings, see DESIGN.md
// "Static analysis"): unsafe operations must be explicitly scoped even
// inside unsafe fns, and every public type must be debuggable.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod append;
pub mod cms;
pub mod engine;
pub mod keywrite;
pub mod layout;
pub mod node;
pub mod postcarding;
pub mod query;
pub mod service;

pub use append::{AppendReader, PollBreakdown};
pub use cms::KeyIncrementStore;
pub use engine::{
    QueryEngine, QueryRequest, QueryResponse, QueryResult, SlotSource, SnapshotQueryEngine,
    SnapshotView, StoreQueryEngine,
};
pub use keywrite::{KeyWriteStore, KwQueryBreakdown, QueryOutcome, QueryPolicy};
pub use layout::{AppendLayout, CmsLayout, KwLayout, PostcardLayout};
pub use node::{CollectorNode, CollectorNodeStats};
pub use postcarding::{hop_checksum, PostcardQueryOutcome, PostcardStore, ValueCodec};
pub use service::{CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD};

//! The unified query engine: one read API over all four primitives.
//!
//! The paper's collector answers operator queries from host memory while
//! the fabric keeps writing into it (§6.5). Before this module, every
//! read-side consumer hand-rolled its own per-primitive calls — the
//! scenario audit, the fleet audit with its owner-miss fan-out, and the
//! multi-core harnesses in [`crate::query`] each duplicated the dispatch.
//! [`QueryEngine`] collapses them into one code path:
//!
//! * [`QueryRequest`] / [`QueryResponse`] — a primitive-tagged request and
//!   its outcome plus the deterministic cost accounting (slot probes,
//!   fan-out probes) that latency models and audits consume.
//! * [`SlotSource`] — where the bytes come from. The stores' query
//!   algorithms (plurality vote, CMS min, chunk decode, tail poll) are
//!   written once against this trait; [`MemoryRegion`] serves *live* reads
//!   under the stripe read-locks, and [`SnapshotView`] serves
//!   *point-in-time* reads over a pooled
//!   [`SnapshotBuf`](dta_rdma::mr::SnapshotBuf) image, so online query
//!   serving under write load reuses exactly the audited read logic.
//! * [`StoreQueryEngine`] — the live engine over a collector's stores
//!   (what `CollectorService::engine()` hands out).
//! * [`SnapshotQueryEngine`] — the same dispatch over per-epoch snapshot
//!   images (what the scenario harness's query service uses while shards
//!   write).
//!
//! Fleet routing (owner-first, salted fan-out on miss) layers on top in
//! `dta-translator::fleet_query`, wrapping per-collector engines — the
//! routing table lives there, not here.

use dta_core::TelemetryKey;
use dta_rdma::mr::MemoryRegion;

use crate::append::AppendReader;
use crate::cms::KeyIncrementStore;
use crate::keywrite::{KeyWriteStore, QueryOutcome, QueryPolicy};
use crate::postcarding::{PostcardQueryOutcome, PostcardStore};

/// A byte source for slot-granular query reads.
///
/// Returns `false` when `[va, va + dst.len())` is outside the source — the
/// caller treats that exactly like the backing region rejecting the read
/// (a layout bug, not a miss).
pub trait SlotSource {
    /// Copy `dst.len()` bytes at virtual address `va` into `dst`.
    fn read_slot(&self, va: u64, dst: &mut [u8]) -> bool;
}

/// Live reads: stripe-locked copies out of the shared region, counted as
/// query-side memory accesses (one per slot, as before the engine).
impl SlotSource for MemoryRegion {
    fn read_slot(&self, va: u64, dst: &mut [u8]) -> bool {
        self.read_into(va, dst).is_ok()
    }
}

/// Point-in-time reads over a snapshot image of one region (the bytes a
/// [`dta_rdma::mr::SnapshotBuf`] dereferences to), addressed by the
/// region's own virtual addresses.
#[derive(Clone, Copy)]
#[derive(Debug)]
pub struct SnapshotView<'a> {
    /// The snapshotted region's base virtual address.
    pub base_va: u64,
    /// The full region image.
    pub bytes: &'a [u8],
}

impl SlotSource for SnapshotView<'_> {
    fn read_slot(&self, va: u64, dst: &mut [u8]) -> bool {
        let Some(off) = va.checked_sub(self.base_va) else {
            return false;
        };
        let off = off as usize;
        match self.bytes.get(off..off + dst.len()) {
            Some(src) => {
                dst.copy_from_slice(src);
                true
            }
            None => false,
        }
    }
}

/// One telemetry query, tagged by primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRequest {
    /// Key-Write plurality/consensus read (Algorithm 2).
    KeyWrite {
        /// The queried key.
        key: TelemetryKey,
        /// Candidate slots to read.
        redundancy: usize,
        /// How multiple checksum-matching candidates resolve.
        policy: QueryPolicy,
    },
    /// Postcarding path decode (§4's aggregated cache read).
    Postcard {
        /// The queried flow key.
        key: TelemetryKey,
        /// Candidate chunks to decode.
        redundancy: usize,
    },
    /// Append tail poll (Algorithm 4); advances the reader's tail.
    AppendPoll {
        /// The polled list.
        list: u32,
    },
    /// Key-Increment CMS estimate (Algorithm 6).
    Increment {
        /// The queried key.
        key: TelemetryKey,
        /// Counters to take the minimum over.
        redundancy: usize,
    },
}

impl QueryRequest {
    /// The routed key, when the primitive is key-addressed.
    pub fn key(&self) -> Option<&TelemetryKey> {
        match self {
            QueryRequest::KeyWrite { key, .. }
            | QueryRequest::Postcard { key, .. }
            | QueryRequest::Increment { key, .. } => Some(key),
            QueryRequest::AppendPoll { .. } => None,
        }
    }
}

/// A query's outcome, tagged by primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Key-Write vote outcome.
    KeyWrite(QueryOutcome),
    /// Postcarding decode outcome.
    Postcard(PostcardQueryOutcome),
    /// The polled Append entry (all-zero bytes = nothing written yet).
    Append(Vec<u8>),
    /// The CMS estimate.
    Increment(u64),
    /// The engine has no store for this primitive.
    Unavailable,
}

impl QueryResult {
    /// Whether the query produced telemetry: a Key-Write/Postcard value, a
    /// non-blank Append entry, or a non-zero estimate.
    pub fn is_hit(&self) -> bool {
        match self {
            QueryResult::KeyWrite(o) => o.is_found(),
            QueryResult::Postcard(o) => o.is_found(),
            QueryResult::Append(e) => e.iter().any(|b| *b != 0),
            QueryResult::Increment(v) => *v > 0,
            QueryResult::Unavailable => false,
        }
    }
}

/// A [`QueryResult`] plus the deterministic cost accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// The outcome.
    pub result: QueryResult,
    /// Slot/chunk/counter reads this query performed (all engines).
    pub probes: u32,
    /// Non-owner collectors probed (fleet engines; 0 on a single store).
    pub fanout: u32,
}

impl QueryResponse {
    /// Response with no fan-out.
    pub fn local(result: QueryResult, probes: u32) -> Self {
        QueryResponse { result, probes, fanout: 0 }
    }
}

/// The unified read API every query consumer routes through.
///
/// `&mut self` because Append polls advance the reader's tail — the one
/// deliberately stateful read in the system (§6.5.3's per-core tails).
pub trait QueryEngine {
    /// Execute one query.
    fn execute(&mut self, req: &QueryRequest) -> QueryResponse;
}

/// Dispatch one request against a set of per-primitive stores reading via
/// `src`. The single implementation both engine types funnel through.
fn dispatch(
    src: &dyn SlotSource,
    kw: Option<&KeyWriteStore>,
    pc: Option<&PostcardStore>,
    append: Option<&mut AppendReader>,
    cms: Option<&KeyIncrementStore>,
    req: &QueryRequest,
) -> QueryResponse {
    match req {
        QueryRequest::KeyWrite { key, redundancy, policy } => match kw {
            Some(s) => QueryResponse::local(
                QueryResult::KeyWrite(s.query_from(src, key, *redundancy, *policy)),
                s.slot_probes(*redundancy),
            ),
            None => QueryResponse::local(QueryResult::Unavailable, 0),
        },
        QueryRequest::Postcard { key, redundancy } => match pc {
            Some(s) => QueryResponse::local(
                QueryResult::Postcard(s.query_from(src, key, *redundancy)),
                s.slot_probes(*redundancy),
            ),
            None => QueryResponse::local(QueryResult::Unavailable, 0),
        },
        QueryRequest::AppendPoll { list } => match append {
            Some(r) => QueryResponse::local(QueryResult::Append(r.poll_from(src, *list)), 1),
            None => QueryResponse::local(QueryResult::Unavailable, 0),
        },
        QueryRequest::Increment { key, redundancy } => match cms {
            Some(s) => QueryResponse::local(
                QueryResult::Increment(s.query_from(src, key, *redundancy)),
                s.slot_probes(*redundancy),
            ),
            None => QueryResponse::local(QueryResult::Unavailable, 0),
        },
    }
}

/// The live engine over one collector's stores: every read goes through
/// the stores' own backing regions (stripe read-locks, concurrent with
/// RDMA writers). Absent stores answer [`QueryResult::Unavailable`].
#[derive(Default)]
#[derive(Debug)]
pub struct StoreQueryEngine<'a> {
    /// Key-Write store, when present.
    pub keywrite: Option<&'a KeyWriteStore>,
    /// Postcarding store, when present.
    pub postcarding: Option<&'a PostcardStore>,
    /// Append reader, when present (`&mut`: polls advance tails).
    pub append: Option<&'a mut AppendReader>,
    /// Key-Increment store, when present.
    pub key_increment: Option<&'a KeyIncrementStore>,
}

impl<'a> StoreQueryEngine<'a> {
    /// Engine over a lone Key-Write store (the Figure 11a harness shape).
    pub fn for_keywrite(store: &'a KeyWriteStore) -> Self {
        StoreQueryEngine { keywrite: Some(store), ..Default::default() }
    }

    /// Engine over a lone Append reader (the Figure 16a harness shape).
    pub fn for_append(reader: &'a mut AppendReader) -> Self {
        StoreQueryEngine { append: Some(reader), ..Default::default() }
    }
}

impl QueryEngine for StoreQueryEngine<'_> {
    fn execute(&mut self, req: &QueryRequest) -> QueryResponse {
        // Each primitive reads from its own store's region.
        match req {
            QueryRequest::KeyWrite { .. } => match self.keywrite {
                Some(s) => dispatch(s.region(), self.keywrite, None, None, None, req),
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
            QueryRequest::Postcard { .. } => match self.postcarding {
                Some(s) => dispatch(s.region(), None, self.postcarding, None, None, req),
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
            QueryRequest::AppendPoll { .. } => match self.append.as_deref_mut() {
                Some(r) => {
                    let region = r.region().clone();
                    dispatch(&region, None, None, Some(r), None, req)
                }
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
            QueryRequest::Increment { .. } => match self.key_increment {
                Some(s) => dispatch(s.region(), None, None, None, self.key_increment, req),
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
        }
    }
}

/// The snapshot engine: the same stores (for geometry + hashing), but every
/// byte comes from a per-primitive [`SnapshotView`] — a point-in-time image
/// taken under the stripe locks. Queries against it are a pure function of
/// the image, no matter what writers do to the live region meanwhile.
#[derive(Debug)]
pub struct SnapshotQueryEngine<'a> {
    /// Key-Write store + its image.
    pub keywrite: Option<(&'a KeyWriteStore, SnapshotView<'a>)>,
    /// Postcarding store + its image.
    pub postcarding: Option<(&'a PostcardStore, SnapshotView<'a>)>,
    /// Append reader + its image (`&mut`: polls advance tails, which is
    /// how a paced poller carries progress *across* epochs).
    pub append: Option<(&'a mut AppendReader, SnapshotView<'a>)>,
    /// Key-Increment store + its image.
    pub key_increment: Option<(&'a KeyIncrementStore, SnapshotView<'a>)>,
}

impl QueryEngine for SnapshotQueryEngine<'_> {
    fn execute(&mut self, req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::KeyWrite { .. } => match &self.keywrite {
                Some((s, view)) => dispatch(view, Some(s), None, None, None, req),
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
            QueryRequest::Postcard { .. } => match &self.postcarding {
                Some((s, view)) => dispatch(view, None, Some(s), None, None, req),
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
            QueryRequest::AppendPoll { .. } => match &mut self.append {
                Some((r, view)) => {
                    let view = *view;
                    dispatch(&view, None, None, Some(&mut **r), None, req)
                }
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
            QueryRequest::Increment { .. } => match &self.key_increment {
                Some((s, view)) => dispatch(view, None, None, None, Some(s), req),
                None => QueryResponse::local(QueryResult::Unavailable, 0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AppendLayout, CmsLayout, KwLayout};
    use dta_rdma::mr::MrAccess;

    fn kw_store() -> KeyWriteStore {
        let layout = KwLayout { base_va: 0x1000, slots: 1024, value_bytes: 4 };
        let region =
            MemoryRegion::new(layout.base_va, layout.region_len() as usize, 1, MrAccess::WRITE);
        KeyWriteStore::new(layout, region, 4)
    }

    #[test]
    fn live_engine_matches_direct_store_calls() {
        let s = kw_store();
        let k = TelemetryKey::from_u64(9);
        s.insert_direct(&k, &[1, 2, 3, 4], 2);
        let mut eng = StoreQueryEngine::for_keywrite(&s);
        let resp = eng.execute(&QueryRequest::KeyWrite {
            key: k,
            redundancy: 2,
            policy: QueryPolicy::Plurality,
        });
        assert_eq!(
            resp.result,
            QueryResult::KeyWrite(s.query(&k, 2, QueryPolicy::Plurality))
        );
        assert_eq!(resp.probes, 2);
        assert_eq!(resp.fanout, 0);
        assert!(resp.result.is_hit());
    }

    #[test]
    fn absent_store_is_unavailable_not_a_miss() {
        let mut eng = StoreQueryEngine::default();
        let resp = eng.execute(&QueryRequest::Increment {
            key: TelemetryKey::from_u64(1),
            redundancy: 2,
        });
        assert_eq!(resp.result, QueryResult::Unavailable);
        assert!(!resp.result.is_hit());
        assert_eq!(resp.probes, 0);
    }

    #[test]
    fn snapshot_view_answers_what_the_image_held_not_the_live_region() {
        let s = kw_store();
        let k = TelemetryKey::from_u64(3);
        s.insert_direct(&k, &[7; 4], 2);
        let snap = s.region().snapshot();
        // Overwrite live memory after the snapshot.
        s.insert_direct(&k, &[8; 4], 2);
        let view = SnapshotView { base_va: s.region().base_va, bytes: snap.as_bytes() };
        let mut eng = SnapshotQueryEngine {
            keywrite: Some((&s, view)),
            postcarding: None,
            append: None,
            key_increment: None,
        };
        let resp = eng.execute(&QueryRequest::KeyWrite {
            key: k,
            redundancy: 2,
            policy: QueryPolicy::Plurality,
        });
        assert_eq!(resp.result, QueryResult::KeyWrite(QueryOutcome::Found(vec![7; 4])));
        assert_eq!(s.query(&k, 2, QueryPolicy::Plurality), QueryOutcome::Found(vec![8; 4]));
    }

    #[test]
    fn snapshot_poll_advances_tails_across_epochs() {
        let layout = AppendLayout { base_va: 0, lists: 1, entries_per_list: 8, entry_bytes: 4 };
        let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
        let mut writer = crate::append::DirectAppender::new(layout, region.clone());
        let mut reader = AppendReader::new(layout, region.clone());
        writer.append(0, &[1, 0, 0, 1]);
        let poll = |reader: &mut AppendReader| {
            let snap = region.snapshot();
            let view = SnapshotView { base_va: region.base_va, bytes: snap.as_bytes() };
            let mut eng = SnapshotQueryEngine {
                keywrite: None,
                postcarding: None,
                append: Some((reader, view)),
                key_increment: None,
            };
            eng.execute(&QueryRequest::AppendPoll { list: 0 })
        };
        assert_eq!(poll(&mut reader).result, QueryResult::Append(vec![1, 0, 0, 1]));
        // Next epoch: the tail moved on, the next entry is still blank.
        let miss = poll(&mut reader);
        assert_eq!(miss.result, QueryResult::Append(vec![0; 4]));
        assert!(!miss.result.is_hit());
    }

    #[test]
    fn increment_estimates_agree_between_live_and_snapshot() {
        let layout = CmsLayout { base_va: 0x4000, slots: 512 };
        let region =
            MemoryRegion::new(layout.base_va, layout.region_len() as usize, 1, MrAccess::ATOMIC);
        let s = KeyIncrementStore::new(layout, region, 4);
        let k = TelemetryKey::from_u64(11);
        s.increment_direct(&k, 5, 2);
        let snap = s.region().snapshot();
        let view = SnapshotView { base_va: s.region().base_va, bytes: snap.as_bytes() };
        let mut eng = SnapshotQueryEngine {
            keywrite: None,
            postcarding: None,
            append: None,
            key_increment: Some((&s, view)),
        };
        let resp = eng.execute(&QueryRequest::Increment { key: k, redundancy: 2 });
        assert_eq!(resp.result, QueryResult::Increment(s.query(&k, 2)));
        assert_eq!(resp.result, QueryResult::Increment(5));
    }

    #[test]
    fn out_of_range_snapshot_read_is_rejected() {
        let view = SnapshotView { base_va: 0x100, bytes: &[0u8; 16] };
        let mut buf = [0u8; 8];
        assert!(!view.read_slot(0x50, &mut buf), "below base");
        assert!(!view.read_slot(0x10c, &mut buf), "past end");
        assert!(view.read_slot(0x108, &mut buf));
    }
}

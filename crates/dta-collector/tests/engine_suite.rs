//! Concurrency contract of the snapshot read path.
//!
//! A Key-Write slot image (`checksum32 ‖ value`) never straddles a
//! memory-region stripe, and a single-stripe write lands under one stripe
//! lock — so a snapshot taken at *any* instant holds each slot either
//! wholly before or wholly after any in-flight write. The test hammers
//! one key from a writer thread with round-stamped uniform values while a
//! reader keeps snapshotting and querying; a torn slot would surface as a
//! `Found` value mixing two rounds' byte patterns, which the same-key
//! checksum (identical every round) could never reject.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dta_collector::{KeyWriteStore, KwLayout, QueryPolicy, SnapshotView};
use dta_core::TelemetryKey;
use dta_rdma::mr::{MemoryRegion, MrAccess};

const VALUE_BYTES: u32 = 32;
const ROUNDS: u32 = 4_000;

#[test]
fn snapshot_reads_never_observe_torn_keywrite_values() {
    let layout = KwLayout { base_va: 0x4000, slots: 256, value_bytes: VALUE_BYTES };
    let region =
        MemoryRegion::new(layout.base_va, layout.region_len() as usize, 1, MrAccess::WRITE);
    // Reader and writer stores share the region (`Arc`-backed) — the same
    // aliasing the scenario harness's `CollectorReaders` relies on.
    let writer = KeyWriteStore::new(layout, region.clone(), 4);
    let reader = KeyWriteStore::new(layout, region.clone(), 4);
    let key = TelemetryKey::from_u64(0xFEED);

    let done = Arc::new(AtomicBool::new(false));
    let writer_done = done.clone();
    let writer_thread = std::thread::spawn(move || {
        for round in 1..=ROUNDS {
            // Uniform per-round pattern: any mix of two rounds in one
            // value is unambiguously a torn read.
            let value = [round as u8; VALUE_BYTES as usize];
            writer.insert_direct(&key, &value, 1);
        }
        writer_done.store(true, Ordering::Release);
    });

    let mut observed = 0u64;
    while !done.load(Ordering::Acquire) || observed == 0 {
        let snap = region.snapshot();
        let view = SnapshotView { base_va: layout.base_va, bytes: snap.as_bytes() };
        let outcome = reader.query_from(&view, &key, 1, QueryPolicy::Plurality);
        if let dta_collector::QueryOutcome::Found(v) = outcome {
            assert_eq!(v.len(), VALUE_BYTES as usize);
            assert!(
                v.iter().all(|&b| b == v[0]),
                "torn Key-Write value in snapshot: {v:?}"
            );
            observed += 1;
        }
    }
    writer_thread.join().unwrap();
    assert!(observed > 0, "reader never saw a committed value");
}

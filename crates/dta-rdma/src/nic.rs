//! The simulated RDMA NIC: ingress execution engine + performance model.

use std::collections::HashMap;
use std::collections::VecDeque;

use bytes::Bytes;

use crate::mr::{MemoryRegistry, MrError};
use crate::packet::{Opcode, RocePacket};
use crate::qp::{QpError, QueuePair};
use crate::verbs::{WcStatus, WorkCompletion};

/// Static NIC parameters: the two resource limits that bound DTA collection
/// throughput (§7: "the new bottleneck is the message rate of the RDMA NICs
/// at the collectors").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicConfig {
    /// Messages (verbs) per second the NIC can execute.
    pub msg_rate: f64,
    /// Port line rate in bits per second.
    pub line_rate_bps: f64,
    /// Number of ports/NICs ganged together ("DTA already supports
    /// multi-NIC collectors", §7).
    pub num_nics: u32,
    /// ACK coalescing factor: emit one ACK per this many ACK-eligible
    /// packets (1 = ACK every packet). RoCE responders coalesce ACKs as
    /// standard practice; DTA's translator is fire-and-forget and never
    /// consumes them, so the default batches them. NAKs and solicited
    /// packets always respond immediately.
    pub ack_coalesce: u32,
}

impl NicConfig {
    /// BlueField-2-class NIC: ~110M msg/s, 100 Gb/s — calibrated so the
    /// paper's headline numbers re-emerge (Key-Write N=1 ≈ 110M rps,
    /// Append batch 16 ≈ 1.3B rps).
    pub fn bluefield2() -> Self {
        NicConfig { msg_rate: 110e6, line_rate_bps: 100e9, num_nics: 1, ack_coalesce: 64 }
    }

    /// ConnectX-6-class 200G NIC (215M msg/s claimed by the datasheet).
    pub fn connectx6() -> Self {
        NicConfig { msg_rate: 215e6, line_rate_bps: 200e9, num_nics: 1, ack_coalesce: 64 }
    }

    /// Multi-NIC collector.
    pub fn with_nics(mut self, n: u32) -> Self {
        self.num_nics = n;
        self
    }

    /// Set the ACK coalescing factor (1 = ACK every packet).
    pub fn with_ack_coalesce(mut self, every: u32) -> Self {
        self.ack_coalesce = every.max(1);
        self
    }
}

/// Closed-form throughput model for a NIC config.
#[derive(Debug, Clone, Copy)]
pub struct NicPerfModel {
    config: NicConfig,
}

impl NicPerfModel {
    /// Model over `config`.
    pub fn new(config: NicConfig) -> Self {
        NicPerfModel { config }
    }

    /// The config this model was built from.
    pub fn config(&self) -> NicConfig {
        self.config
    }

    /// Sustainable message rate for messages of `wire_bytes` each:
    /// `min(msg_rate, line_rate / bits_per_msg)`, times the NIC count.
    pub fn message_rate(&self, wire_bytes: usize) -> f64 {
        let by_msgs = self.config.msg_rate;
        let by_wire = self.config.line_rate_bps / (wire_bytes as f64 * 8.0);
        by_msgs.min(by_wire) * self.config.num_nics as f64
    }

    /// Report throughput when each message carries `reports_per_msg` reports
    /// and each report triggers `msgs_per_report` messages (redundancy).
    ///
    /// * Key-Write with redundancy N: `reports_per_msg = 1`,
    ///   `msgs_per_report = N`.
    /// * Append with batch B: `reports_per_msg = B`, `msgs_per_report = 1`.
    /// * Postcarding (B-hop chunks): `reports_per_msg = B` postcards per
    ///   write.
    pub fn report_rate(
        &self,
        wire_bytes: usize,
        reports_per_msg: f64,
        msgs_per_report: f64,
    ) -> f64 {
        assert!(reports_per_msg > 0.0 && msgs_per_report > 0.0);
        self.message_rate(wire_bytes) * reports_per_msg / msgs_per_report
    }

    /// Nanoseconds to ingest `n` messages of `wire_bytes` each.
    pub fn ingest_time_ns(&self, n: u64, wire_bytes: usize) -> u64 {
        (n as f64 / self.message_rate(wire_bytes) * 1e9).ceil() as u64
    }
}

/// Outcome of feeding one RoCE packet to the NIC.
///
/// Response packets are boxed: with ACK coalescing most ingresses return
/// no packet, and keeping the enum pointer-sized keeps the per-packet
/// return path off the memcpy floor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome {
    /// Op executed; carries the ACK to return (None when no ack is due).
    Executed(Option<Box<RocePacket>>),
    /// PSN gap: op not executed; carries the NAK packet.
    Nak(Box<RocePacket>),
    /// Duplicate PSN: silently dropped.
    DuplicateDropped,
    /// Validation failed (bad rkey, bounds, unknown QP, malformed).
    Error(NicError),
}

/// NIC-level receive errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// No QP with that number.
    UnknownQp(u32),
    /// QP sequence violation.
    Qp(QpError),
    /// Memory violation.
    Mr(MrError),
    /// FETCH_ADD response value (not an error; internal use).
    Malformed,
}

/// Counters for the NIC ingress path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Verbs executed.
    pub executed: u64,
    /// NAKs generated.
    pub naks: u64,
    /// Duplicates dropped.
    pub dups: u64,
    /// Errors (rkey/bounds/unknown QP).
    pub errors: u64,
    /// Total wire bytes received.
    pub bytes_rx: u64,
}

/// The collector-side RDMA NIC.
///
/// Owns the registered memory and the responder half of every QP. The DMA
/// engine (memory writes) runs with zero CPU involvement; completions are
/// queued only for SEND and WRITE-with-immediate, which is what the
/// collector CPU polls.
pub struct RdmaNic {
    /// Registered memory.
    pub memory: MemoryRegistry,
    /// Responder QPs. A collector hosts a handful (one per primitive
    /// service), so the per-packet lookup is a linear scan over a dense
    /// vector — measurably cheaper than hashing the QPN on every ingress.
    qps: Vec<QueuePair>,
    /// Per-QP in-progress segmented write: (rkey, next va, bytes left).
    in_progress: HashMap<u32, (u32, u64, u32)>,
    completions: VecDeque<WorkCompletion>,
    ack_coalesce: u32,
    /// Counters.
    pub stats: NicStats,
    /// Throughput model (used by harnesses; ingress execution itself is
    /// functional, not timed).
    pub perf: NicPerfModel,
}

impl RdmaNic {
    /// NIC with the given performance config and empty memory registry.
    pub fn new(config: NicConfig) -> Self {
        Self::with_registry(config, MemoryRegistry::new())
    }

    /// NIC over an existing registry — the per-shard endpoint constructor.
    ///
    /// A sharded translator gives each worker its own `RdmaNic` built from a
    /// *clone* of the collector's registry: region handles are copied but
    /// the striped backing stores are shared, so shard threads issue writes
    /// fully in parallel (distinct stripes never contend) while QP state,
    /// segmentation cursors, and counters stay shard-private. This models
    /// one NIC receive queue / DMA channel per shard hitting common DRAM.
    pub fn with_registry(config: NicConfig, memory: MemoryRegistry) -> Self {
        RdmaNic {
            memory,
            qps: Vec::new(),
            in_progress: HashMap::new(),
            completions: VecDeque::new(),
            ack_coalesce: config.ack_coalesce.max(1),
            stats: NicStats::default(),
            perf: NicPerfModel::new(config),
        }
    }

    /// Install a responder QP (replaces any existing QP with the same QPN).
    pub fn add_qp(&mut self, qp: QueuePair) {
        if let Some(existing) = self.qps.iter_mut().find(|q| q.qpn == qp.qpn) {
            *existing = qp;
        } else {
            self.qps.push(qp);
        }
    }

    /// Access a QP (tests / CM).
    pub fn qp(&self, qpn: u32) -> Option<&QueuePair> {
        self.qps.iter().find(|q| q.qpn == qpn)
    }

    /// Mutable access to a QP (CM state transitions).
    pub fn qp_mut(&mut self, qpn: u32) -> Option<&mut QueuePair> {
        self.qps.iter_mut().find(|q| q.qpn == qpn)
    }

    /// Pop the next completion, if any (the collector CPU's poll loop).
    pub fn poll_completion(&mut self) -> Option<WorkCompletion> {
        self.completions.pop_front()
    }

    /// Number of queued completions.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// DPDK-style RX burst: execute `pkts` back-to-back, appending any
    /// response packets that must actually go on the wire (coalesced ACKs,
    /// NAKs) to `responses`. Returns the number of packets executed.
    ///
    /// This is the collector's hot receive path: per-packet outcome enums
    /// and ACK packet construction are skipped unless a response is due.
    pub fn ingress_burst(
        &mut self,
        pkts: &[RocePacket],
        responses: &mut Vec<RocePacket>,
    ) -> u64 {
        let mut executed = 0u64;
        for pkt in pkts {
            match self.ingress(pkt) {
                RxOutcome::Executed(ack) => {
                    executed += 1;
                    if let Some(ack) = ack {
                        responses.push(*ack);
                    }
                }
                RxOutcome::Nak(nak) => responses.push(*nak),
                RxOutcome::DuplicateDropped | RxOutcome::Error(_) => {}
            }
        }
        executed
    }

    /// Execute one inbound RoCE packet.
    pub fn ingress(&mut self, pkt: &RocePacket) -> RxOutcome {
        self.stats.bytes_rx += pkt.wire_len() as u64;
        let qpn = pkt.bth.dest_qp;
        let Some(qp) = self.qps.iter_mut().find(|q| q.qpn == qpn) else {
            self.stats.errors += 1;
            return RxOutcome::Error(NicError::UnknownQp(qpn));
        };
        // PSN discipline first (transport layer), then memory execution.
        match qp.receive(pkt.bth.psn) {
            Ok(()) => {}
            Err(QpError::Duplicate(_)) => {
                self.stats.dups += 1;
                return RxOutcome::DuplicateDropped;
            }
            Err(QpError::OutOfOrder { expected, .. }) => {
                self.stats.naks += 1;
                // NAK carries the expected PSN so the requester can resync.
                let requester = qp.dest_qpn;
                return RxOutcome::Nak(Box::new(RocePacket::nak(requester, expected)));
            }
            Err(e) => {
                self.stats.errors += 1;
                return RxOutcome::Error(NicError::Qp(e));
            }
        }

        let requester_qpn = qp.dest_qpn;
        let mut read_data: Option<Bytes> = None;
        let result: Result<(), NicError> = match pkt.bth.opcode {
            Opcode::WriteOnly | Opcode::WriteOnlyImm => {
                let reth = pkt.reth.as_ref().expect("decoded WRITE has RETH");
                self.memory
                    .write(reth.rkey, reth.va, &pkt.payload)
                    .map_err(NicError::Mr)
                    .map(|_| {
                        if let Some(imm) = pkt.imm {
                            self.completions.push_back(WorkCompletion {
                                qpn,
                                status: WcStatus::Success,
                                imm: Some(imm.0),
                                payload: pkt.payload.clone(),
                            });
                        }
                    })
            }
            Opcode::WriteFirst => {
                // Start of a segmented write: execute this fragment and
                // remember the cursor for the continuations.
                let reth = pkt.reth.as_ref().expect("decoded WRITE FIRST has RETH");
                self.memory
                    .write(reth.rkey, reth.va, &pkt.payload)
                    .map_err(NicError::Mr)
                    .map(|_| {
                        let done = pkt.payload.len() as u32;
                        self.in_progress.insert(
                            qpn,
                            (reth.rkey, reth.va + done as u64, reth.dma_len - done),
                        );
                    })
            }
            Opcode::WriteMiddle | Opcode::WriteLast => {
                match self.in_progress.get_mut(&qpn) {
                    None => Err(NicError::Malformed), // continuation w/o FIRST
                    Some((rkey, va, remaining)) => {
                        let n = pkt.payload.len() as u32;
                        if n > *remaining {
                            self.in_progress.remove(&qpn);
                            Err(NicError::Malformed) // overruns the RETH length
                        } else {
                            let (rkey, dst) = (*rkey, *va);
                            *va += n as u64;
                            *remaining -= n;
                            let finished =
                                pkt.bth.opcode == Opcode::WriteLast || *remaining == 0;
                            if finished {
                                self.in_progress.remove(&qpn);
                            }
                            self.memory.write(rkey, dst, &pkt.payload).map_err(NicError::Mr)
                        }
                    }
                }
            }
            Opcode::FetchAdd => {
                let ae = pkt.atomic.as_ref().expect("decoded FETCH_ADD has AtomicETH");
                self.memory
                    .fetch_add(ae.rkey, ae.va, ae.swap_add)
                    .map(|_| ())
                    .map_err(NicError::Mr)
            }
            Opcode::ReadRequest => {
                let reth = pkt.reth.as_ref().expect("decoded READ has RETH");
                match self.memory.lookup(reth.rkey) {
                    None => Err(NicError::Mr(MrError::BadRkey(reth.rkey))),
                    Some(region) => region
                        .peek(reth.va, reth.dma_len as usize)
                        .map_err(NicError::Mr)
                        .map(|data| read_data = Some(Bytes::from(data))),
                }
            }
            Opcode::ReadResponseOnly => Ok(()), // requester-side path
            Opcode::SendOnly | Opcode::SendOnlyImm => {
                self.completions.push_back(WorkCompletion {
                    qpn,
                    status: WcStatus::Success,
                    imm: pkt.imm.map(|i| i.0),
                    payload: pkt.payload.clone(),
                });
                Ok(())
            }
            Opcode::Ack | Opcode::AtomicAck => Ok(()), // requester-side path
        };

        match result {
            Ok(()) => {
                self.stats.executed += 1;
                // ACK coalescing: solicited packets (and every
                // `ack_coalesce`-th eligible packet) get an immediate ACK;
                // the rest are covered by the next cumulative ACK. The
                // coalescing state is per-QP, as on real HCAs — traffic on
                // one QP cannot starve another QP's ACK stream. DTA's
                // translator never consumes ACKs, so the batching is free.
                let ack = if let Some(data) = read_data {
                    // A READ's response packet doubles as its ack; never
                    // coalesced (the requester is blocked on the bytes).
                    Some(Box::new(RocePacket::read_response(requester_qpn, pkt.bth.psn, data)))
                } else if pkt.bth.opcode.needs_ack() {
                    let coalesce = self.ack_coalesce;
                    let qp = self.qps.iter_mut().find(|q| q.qpn == qpn).expect("qp exists");
                    qp.ack_due(coalesce, pkt.bth.solicited)
                        .then(|| Box::new(RocePacket::ack(requester_qpn, pkt.bth.psn)))
                } else {
                    None
                };
                RxOutcome::Executed(ack)
            }
            Err(e) => {
                self.stats.errors += 1;
                RxOutcome::Error(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::{MemoryRegion, MrAccess};
    use bytes::Bytes;
    use crate::packet::Reth;

    fn nic_with_qp() -> RdmaNic {
        // Per-packet ACKs so tests can assert response contents.
        let mut nic = RdmaNic::new(NicConfig::bluefield2().with_ack_coalesce(1));
        nic.memory.register(MemoryRegion::new(0x10000, 4096, 0xAB, MrAccess::ATOMIC));
        let mut qp = QueuePair::new(5);
        qp.to_rtr(1, 0);
        qp.to_rts(0);
        nic.add_qp(qp);
        nic
    }

    #[test]
    fn acks_coalesce_at_configured_factor() {
        let mut nic = RdmaNic::new(NicConfig::bluefield2().with_ack_coalesce(4));
        nic.memory.register(MemoryRegion::new(0x10000, 4096, 0xAB, MrAccess::ATOMIC));
        let mut qp = QueuePair::new(5);
        qp.to_rtr(1, 0);
        qp.to_rts(0);
        nic.add_qp(qp);
        let mut acks = Vec::new();
        for psn in 0..8u32 {
            match nic.ingress(&write_pkt(psn, 0x10000, &[1, 2, 3, 4])) {
                RxOutcome::Executed(ack) => acks.push(ack),
                other => panic!("unexpected {other:?}"),
            }
        }
        let got: Vec<Option<u32>> =
            acks.iter().map(|a| a.as_ref().map(|p| p.bth.psn)).collect();
        // One cumulative ACK per 4 packets, carrying the latest PSN.
        assert_eq!(
            got,
            vec![None, None, None, Some(3), None, None, None, Some(7)]
        );
        // Coalescing is per-QP: interleaved traffic on a second QP must
        // not consume the first QP's pending-ACK budget.
        let mut qp2 = QueuePair::new(6);
        qp2.to_rtr(2, 0);
        qp2.to_rts(0);
        nic.add_qp(qp2);
        for psn in 0..3u32 {
            match nic.ingress(&RocePacket::write(
                6,
                psn,
                Reth { va: 0x10000, rkey: 0xAB, dma_len: 4 },
                Bytes::from_static(&[0; 4]),
            )) {
                RxOutcome::Executed(None) => {}
                other => panic!("QP 6 acked early (shared counter?): {other:?}"),
            }
        }
        // QP 5's own counter was flushed at psn 7; its next ACK arrives
        // exactly 4 packets later, unaffected by QP 6's traffic.
        for psn in 8..12u32 {
            let got = nic.ingress(&write_pkt(psn, 0x10000, &[1, 2, 3, 4]));
            match (psn, got) {
                (11, RxOutcome::Executed(Some(ack))) => assert_eq!(ack.bth.psn, 11),
                (11, other) => panic!("expected QP 5 ack at its 8th packet, got {other:?}"),
                (_, RxOutcome::Executed(None)) => {}
                (_, other) => panic!("unexpected {other:?}"),
            }
        }

        // Solicited (write-imm) packets flush the pending ACK immediately.
        let imm = RocePacket::write_imm(
            5,
            12,
            Reth { va: 0x10000, rkey: 0xAB, dma_len: 4 },
            0x1,
            Bytes::from_static(&[0; 4]),
        );
        match nic.ingress(&imm) {
            RxOutcome::Executed(Some(ack)) => assert_eq!(ack.bth.psn, 12),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn write_pkt(psn: u32, va: u64, data: &'static [u8]) -> RocePacket {
        RocePacket::write(5, psn, Reth { va, rkey: 0xAB, dma_len: data.len() as u32 }, Bytes::from_static(data))
    }

    #[test]
    fn write_executes_and_acks() {
        let mut nic = nic_with_qp();
        match nic.ingress(&write_pkt(0, 0x10000, &[1, 2, 3, 4])) {
            RxOutcome::Executed(Some(ack)) => assert_eq!(ack.bth.psn, 0),
            other => panic!("unexpected {other:?}"),
        }
        let region = nic.memory.lookup(0xAB).unwrap();
        assert_eq!(region.peek(0x10000, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn psn_gap_naks_without_executing() {
        let mut nic = nic_with_qp();
        match nic.ingress(&write_pkt(5, 0x10000, &[9; 4])) {
            RxOutcome::Nak(nak) => assert_eq!(nak.bth.psn, 0),
            other => panic!("unexpected {other:?}"),
        }
        // Memory untouched.
        let region = nic.memory.lookup(0xAB).unwrap();
        assert_eq!(region.peek(0x10000, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn duplicate_dropped_silently() {
        let mut nic = nic_with_qp();
        assert!(matches!(nic.ingress(&write_pkt(0, 0x10000, &[1; 4])), RxOutcome::Executed(_)));
        assert!(matches!(
            nic.ingress(&write_pkt(0, 0x10000, &[2; 4])),
            RxOutcome::DuplicateDropped
        ));
        // First write's data survives.
        let region = nic.memory.lookup(0xAB).unwrap();
        assert_eq!(region.peek(0x10000, 4).unwrap(), vec![1; 4]);
    }

    #[test]
    fn bad_rkey_is_error() {
        let mut nic = nic_with_qp();
        let pkt = RocePacket::write(
            5,
            0,
            Reth { va: 0x10000, rkey: 0xFF, dma_len: 4 },
            Bytes::from_static(&[0; 4]),
        );
        assert!(matches!(
            nic.ingress(&pkt),
            RxOutcome::Error(NicError::Mr(MrError::BadRkey(0xFF)))
        ));
    }

    #[test]
    fn fetch_add_accumulates() {
        let mut nic = nic_with_qp();
        for i in 0..3 {
            let pkt = RocePacket::fetch_add(5, i, 0x10000, 0xAB, 10);
            assert!(matches!(nic.ingress(&pkt), RxOutcome::Executed(_)));
        }
        let region = nic.memory.lookup(0xAB).unwrap();
        assert_eq!(
            u64::from_be_bytes(region.peek(0x10000, 8).unwrap().try_into().unwrap()),
            30
        );
    }

    #[test]
    fn write_imm_raises_completion() {
        let mut nic = nic_with_qp();
        let pkt = RocePacket::write_imm(
            5,
            0,
            Reth { va: 0x10000, rkey: 0xAB, dma_len: 4 },
            0x42,
            Bytes::from_static(&[7; 4]),
        );
        nic.ingress(&pkt);
        let wc = nic.poll_completion().expect("completion queued");
        assert_eq!(wc.imm, Some(0x42));
        assert!(nic.poll_completion().is_none());
    }

    #[test]
    fn plain_write_raises_no_completion() {
        let mut nic = nic_with_qp();
        nic.ingress(&write_pkt(0, 0x10000, &[1; 4]));
        assert!(nic.poll_completion().is_none());
    }

    #[test]
    fn unknown_qp_is_error() {
        let mut nic = nic_with_qp();
        let pkt = write_pkt(0, 0x10000, &[0; 4]);
        let mut bad = pkt.clone();
        bad.bth.dest_qp = 99;
        assert!(matches!(
            nic.ingress(&bad),
            RxOutcome::Error(NicError::UnknownQp(99))
        ));
    }

    #[test]
    fn read_request_returns_bytes_in_response() {
        let mut nic = nic_with_qp();
        assert!(matches!(nic.ingress(&write_pkt(0, 0x10000, &[9, 8, 7, 6])), RxOutcome::Executed(_)));
        let req = RocePacket::read_request(
            5,
            1,
            Reth { va: 0x10000, rkey: 0xAB, dma_len: 4 },
        );
        match nic.ingress(&req) {
            RxOutcome::Executed(Some(resp)) => {
                assert_eq!(resp.bth.opcode, Opcode::ReadResponseOnly);
                assert_eq!(resp.bth.psn, 1, "response echoes the request PSN");
                assert_eq!(&resp.payload[..], &[9, 8, 7, 6]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_read_request_dropped_silently() {
        let mut nic = nic_with_qp();
        let req = RocePacket::read_request(5, 0, Reth { va: 0x10000, rkey: 0xAB, dma_len: 4 });
        assert!(matches!(nic.ingress(&req), RxOutcome::Executed(Some(_))));
        assert!(matches!(nic.ingress(&req), RxOutcome::DuplicateDropped));
    }

    #[test]
    fn read_request_bad_rkey_is_error() {
        let mut nic = nic_with_qp();
        let req = RocePacket::read_request(5, 0, Reth { va: 0x10000, rkey: 0xFF, dma_len: 4 });
        assert!(matches!(
            nic.ingress(&req),
            RxOutcome::Error(NicError::Mr(MrError::BadRkey(0xFF)))
        ));
    }

    #[test]
    fn perf_model_msg_rate_bound() {
        let m = NicPerfModel::new(NicConfig::bluefield2());
        // 78B KW writes: msg-rate bound (110M), not line-rate bound (160M).
        let rate = m.message_rate(78);
        assert!((rate - 110e6).abs() < 1.0);
    }

    #[test]
    fn perf_model_line_rate_bound() {
        let m = NicPerfModel::new(NicConfig::bluefield2());
        // 1500B messages: line-rate bound = 100e9/12000 = 8.33M.
        let rate = m.message_rate(1500);
        assert!((rate - 100e9 / 12000.0).abs() < 1.0);
    }

    #[test]
    fn multi_nic_scales_rate() {
        let m = NicPerfModel::new(NicConfig::bluefield2().with_nics(2));
        assert!((m.message_rate(78) - 220e6).abs() < 1.0);
    }

    #[test]
    fn report_rate_append_batching() {
        let m = NicPerfModel::new(NicConfig::bluefield2());
        // Batch of 16 4B events: 64B payload -> 142B wire.
        let rate = m.report_rate(142, 16.0, 1.0);
        assert!(rate > 1.0e9, "batch-16 append should exceed 1B rps, got {rate}");
    }

    #[test]
    fn report_rate_redundancy_divides() {
        let m = NicPerfModel::new(NicConfig::bluefield2());
        let n1 = m.report_rate(78, 1.0, 1.0);
        let n4 = m.report_rate(78, 1.0, 4.0);
        assert!((n1 / n4 - 4.0).abs() < 1e-9);
    }
}

//! Verb-level operations and completions.

use bytes::Bytes;

use crate::packet::{Reth, RocePacket};
use crate::qp::QueuePair;

/// A verb-level RDMA operation, before transport encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaOp {
    /// One-sided write of `data` to `(rkey, va)`.
    Write {
        /// Target region key.
        rkey: u32,
        /// Target virtual address.
        va: u64,
        /// Bytes to write.
        data: Bytes,
    },
    /// One-sided write that also raises a completion with immediate data at
    /// the responder (DTA's push-notification path, §7).
    WriteImm {
        /// Target region key.
        rkey: u32,
        /// Target virtual address.
        va: u64,
        /// Bytes to write.
        data: Bytes,
        /// Immediate value delivered to the responder CPU.
        imm: u32,
    },
    /// 64-bit fetch-and-add at `(rkey, va)`.
    FetchAdd {
        /// Target region key.
        rkey: u32,
        /// Target virtual address (8-byte aligned).
        va: u64,
        /// Addend.
        add: u64,
    },
    /// Two-sided send (metadata advertisement).
    Send {
        /// Message payload.
        data: Bytes,
    },
}

impl RdmaOp {
    /// Encode this op as the next packet on `qp` (allocates a PSN).
    pub fn into_packet(self, qp: &mut QueuePair) -> RocePacket {
        let psn = qp.next_send_psn();
        let dqpn = qp.dest_qpn;
        match self {
            RdmaOp::Write { rkey, va, data } => RocePacket::write(
                dqpn,
                psn,
                Reth { va, rkey, dma_len: data.len() as u32 },
                data,
            ),
            RdmaOp::WriteImm { rkey, va, data, imm } => RocePacket::write_imm(
                dqpn,
                psn,
                Reth { va, rkey, dma_len: data.len() as u32 },
                imm,
                data,
            ),
            RdmaOp::FetchAdd { rkey, va, add } => RocePacket::fetch_add(dqpn, psn, va, rkey, add),
            RdmaOp::Send { data } => RocePacket::send(dqpn, psn, data),
        }
    }

    /// Wire size this op will occupy (for NIC/line-rate models) — full
    /// RoCEv2 frame including Eth/IP/UDP.
    pub fn wire_len(&self) -> usize {
        use crate::packet::{AtomicEth, Bth, ImmDt};
        let overhead = dta_core::framing::UDP_FRAME_OVERHEAD + Bth::LEN + 4; // +ICRC
        match self {
            RdmaOp::Write { data, .. } => overhead + Reth::LEN + data.len(),
            RdmaOp::WriteImm { data, .. } => overhead + Reth::LEN + ImmDt::LEN + data.len(),
            RdmaOp::FetchAdd { .. } => overhead + AtomicEth::LEN,
            RdmaOp::Send { data } => overhead + data.len(),
        }
    }
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcStatus {
    /// Operation executed.
    Success,
    /// Remote access error (bad rkey / bounds).
    RemoteAccessError,
    /// Sequence error (NAK).
    SequenceError,
}

/// A work completion surfaced to the collector CPU.
///
/// One-sided WRITEs complete invisibly; only SENDs and WRITE-with-immediate
/// raise completions at the responder — this is exactly the paper's
/// observation that the CPU "must first find out if new data has been
/// written into the memory" unless the immediate flag is used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkCompletion {
    /// QP the completion arrived on.
    pub qpn: u32,
    /// Status.
    pub status: WcStatus,
    /// Immediate data, when present.
    pub imm: Option<u32>,
    /// Payload for SENDs (metadata messages).
    pub payload: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rts_qp() -> QueuePair {
        let mut qp = QueuePair::new(7);
        qp.to_rtr(9, 0);
        qp.to_rts(1000);
        qp
    }

    #[test]
    fn write_op_consumes_psn() {
        let mut qp = rts_qp();
        let p1 = RdmaOp::Write { rkey: 1, va: 0, data: Bytes::from_static(&[0; 4]) }
            .into_packet(&mut qp);
        let p2 = RdmaOp::Write { rkey: 1, va: 4, data: Bytes::from_static(&[0; 4]) }
            .into_packet(&mut qp);
        assert_eq!(p1.bth.psn, 1000);
        assert_eq!(p2.bth.psn, 1001);
        assert_eq!(p1.bth.dest_qp, 9);
    }

    #[test]
    fn wire_len_matches_encoded() {
        let mut qp = rts_qp();
        let ops = [
            RdmaOp::Write { rkey: 1, va: 0, data: Bytes::from_static(&[0; 16]) },
            RdmaOp::WriteImm { rkey: 1, va: 0, data: Bytes::from_static(&[0; 8]), imm: 3 },
            RdmaOp::FetchAdd { rkey: 1, va: 0, add: 1 },
            RdmaOp::Send { data: Bytes::from_static(b"hello") },
        ];
        for op in ops {
            let expect = op.wire_len();
            let pkt = op.into_packet(&mut qp);
            assert_eq!(pkt.wire_len(), expect);
        }
    }
}

//! Connection management.
//!
//! The translator's control plane "is in charge of setting up the RDMA
//! connection to the collector by crafting RDMA Communication Manager
//! (RDMA_CM) packets" (§5.2), and the collector "can host several primitives
//! in parallel using unique RDMA_CM ports, and advertise primitive-specific
//! metadata to the translator using RDMA-Send packets" (§5.3).
//!
//! We model the handshake at the message level: `ConnectRequest` /
//! `ConnectReply` exchange QPNs, starting PSNs, and the per-primitive memory
//! metadata (rkey, base address, slot geometry).

use serde::{Deserialize, Serialize};

use crate::qp::QueuePair;

/// Identifier of a collector-hosted service (one per primitive instance).
pub type ServiceId = u16;

/// Memory/service metadata advertised by the collector for one primitive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnectionParams {
    /// Service identifier (maps to an RDMA_CM port in the paper).
    pub service: ServiceId,
    /// Responder QP number at the collector.
    pub qpn: u32,
    /// Responder's starting PSN.
    pub start_psn: u32,
    /// rkey of the service's memory region.
    pub rkey: u32,
    /// Base virtual address of the region.
    pub base_va: u64,
    /// Region length in bytes.
    pub region_len: u64,
    /// Number of addressable slots (primitive-specific geometry).
    pub slots: u64,
    /// Bytes per slot.
    pub slot_bytes: u32,
}

/// CM protocol events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CmEvent {
    /// Requester (translator) asks to connect to a service, offering its QPN
    /// and starting PSN.
    ConnectRequest {
        /// Target service.
        service: ServiceId,
        /// Requester QP number.
        qpn: u32,
        /// Requester starting PSN.
        start_psn: u32,
    },
    /// Responder (collector) accepts, returning its parameters.
    ConnectReply(ConnectionParams),
    /// Responder rejects (unknown service).
    Reject {
        /// The service that was requested.
        service: ServiceId,
    },
    /// Connection teardown (RDMA_CM `DREQ`/`DREP`): either side declares
    /// the connection identified by `qpn` dead. A requester sends it when
    /// closing gracefully; a translator *observing* one for a collector's
    /// QP treats it as a fail-stop signal (the CM-teardown detection path
    /// of collector failover, complementing the completion timeout).
    Disconnect {
        /// The QP whose connection is torn down.
        qpn: u32,
    },
}

/// Collector-side connection manager.
///
/// Owns the service table and mints responder QPs on demand.
#[derive(Debug, Default)]
pub struct CmManager {
    services: Vec<ConnectionParams>,
    next_qpn: u32,
}

impl CmManager {
    /// Manager with no services, allocating QPNs from 0x100.
    pub fn new() -> Self {
        CmManager { services: Vec::new(), next_qpn: 0x100 }
    }

    /// Publish a service. `params.qpn` is overwritten with a freshly
    /// allocated responder QPN; the completed record is returned.
    pub fn publish(&mut self, mut params: ConnectionParams) -> ConnectionParams {
        assert!(
            self.services.iter().all(|s| s.service != params.service),
            "service {} already published",
            params.service
        );
        params.qpn = self.next_qpn;
        self.next_qpn += 1;
        self.services.push(params);
        params
    }

    /// Handle a CM request, returning the reply and (on accept) the
    /// responder QP to install into the collector NIC.
    pub fn handle(&self, event: &CmEvent) -> (CmEvent, Option<QueuePair>) {
        self.accept(event, None)
    }

    /// Handle a CM request, minting a **dedicated** responder QPN for this
    /// connection instead of the service's published one.
    ///
    /// A sharded translator opens one connection per (shard, service) pair;
    /// dedicating a responder QP to each gives every shard its own PSN
    /// domain (the property that lets shard threads issue RDMA concurrently
    /// without serializing on a shared sequence-number stream — the same
    /// reason the paper gives each translator pipe its own queue pairs).
    pub fn handle_dedicated(&mut self, event: &CmEvent) -> (CmEvent, Option<QueuePair>) {
        let minted = self.next_qpn;
        let (reply, qp) = self.accept(event, Some(minted));
        if qp.is_some() {
            self.next_qpn += 1;
        }
        (reply, qp)
    }

    /// Shared handshake body: look up the service, build the responder QP
    /// (at `qpn_override` when given, else the service's published QPN),
    /// and cross-wire both PSN domains.
    fn accept(&self, event: &CmEvent, qpn_override: Option<u32>) -> (CmEvent, Option<QueuePair>) {
        match event {
            CmEvent::ConnectRequest { service, qpn, start_psn } => {
                match self.services.iter().find(|s| s.service == *service) {
                    Some(params) => {
                        let mut params = *params;
                        if let Some(minted) = qpn_override {
                            params.qpn = minted;
                        }
                        let mut qp = QueuePair::new(params.qpn);
                        qp.to_rtr(*qpn, *start_psn);
                        qp.to_rts(params.start_psn);
                        (CmEvent::ConnectReply(params), Some(qp))
                    }
                    None => (CmEvent::Reject { service: *service }, None),
                }
            }
            // A DREQ is acknowledged with a DREP naming the same QP. The
            // manager holds no per-connection state to tear down (QPs live
            // in the NIC); the echo closes the handshake.
            CmEvent::Disconnect { qpn } => (CmEvent::Disconnect { qpn: *qpn }, None),
            _ => (CmEvent::Reject { service: 0 }, None),
        }
    }
}

/// Requester-side helper: build the request and complete the local QP from
/// the reply.
#[derive(Debug)]
pub struct CmRequester {
    /// The requester's QP (INIT until the reply arrives).
    pub qp: QueuePair,
    start_psn: u32,
}

impl CmRequester {
    /// New requester with a local QPN and chosen starting PSN.
    pub fn new(qpn: u32, start_psn: u32) -> Self {
        CmRequester { qp: QueuePair::new(qpn), start_psn }
    }

    /// The request to transmit.
    pub fn request(&self, service: ServiceId) -> CmEvent {
        CmEvent::ConnectRequest { service, qpn: self.qp.qpn, start_psn: self.start_psn }
    }

    /// Consume the reply; on accept the local QP moves to RTS and the
    /// connection parameters are returned.
    pub fn complete(mut self, reply: &CmEvent) -> Result<(QueuePair, ConnectionParams), String> {
        match reply {
            CmEvent::ConnectReply(params) => {
                self.qp.to_rtr(params.qpn, params.start_psn);
                self.qp.to_rts(self.start_psn);
                Ok((self.qp, *params))
            }
            CmEvent::Reject { service } => Err(format!("service {service} rejected")),
            other => Err(format!("unexpected CM event {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QpState;

    fn kv_params() -> ConnectionParams {
        ConnectionParams {
            service: 1,
            qpn: 0,
            start_psn: 7000,
            rkey: 0xAB,
            base_va: 0x10_0000,
            region_len: 1 << 20,
            slots: 65536,
            slot_bytes: 8,
        }
    }

    #[test]
    fn full_handshake_connects_both_sides() {
        let mut cm = CmManager::new();
        cm.publish(kv_params());
        let requester = CmRequester::new(0x55, 1234);
        let req = requester.request(1);
        let (reply, responder_qp) = cm.handle(&req);
        let responder_qp = responder_qp.expect("accepted");
        let (req_qp, params) = requester.complete(&reply).unwrap();

        assert_eq!(req_qp.state, QpState::Rts);
        assert_eq!(responder_qp.state, QpState::Rts);
        // Cross-wired QPNs.
        assert_eq!(req_qp.dest_qpn, params.qpn);
        assert_eq!(responder_qp.dest_qpn, 0x55);
        // PSN domains aligned.
        assert_eq!(responder_qp.expected_psn(), 1234);
    }

    #[test]
    fn dedicated_handshakes_mint_unique_responder_qpns() {
        // Two shards connecting to the same service must land on distinct
        // responder QPs (independent PSN domains), and each reply must
        // advertise the QPN actually minted for that connection.
        let mut cm = CmManager::new();
        cm.publish(kv_params());
        let mut qpns = Vec::new();
        for shard in 0..4u32 {
            let requester = CmRequester::new(0x1000 + shard, 0);
            let (reply, responder) = cm.handle_dedicated(&requester.request(1));
            let responder = responder.expect("accepted");
            let (req_qp, params) = requester.complete(&reply).unwrap();
            assert_eq!(responder.qpn, params.qpn, "reply advertises minted QPN");
            assert_eq!(req_qp.dest_qpn, responder.qpn);
            assert_eq!(responder.dest_qpn, 0x1000 + shard);
            qpns.push(responder.qpn);
        }
        qpns.sort_unstable();
        qpns.dedup();
        assert_eq!(qpns.len(), 4, "responder QPNs not unique per shard");
    }

    #[test]
    fn disconnect_echoes_drep_for_the_same_qp() {
        let mut cm = CmManager::new();
        let published = cm.publish(kv_params());
        let (reply, qp) = cm.handle(&CmEvent::Disconnect { qpn: published.qpn });
        assert!(qp.is_none(), "a teardown mints no QP");
        assert_eq!(reply, CmEvent::Disconnect { qpn: published.qpn });
        // Connecting again after a disconnect still works: teardown is
        // stateless at the manager.
        let requester = CmRequester::new(0x56, 0);
        let (reply, responder) = cm.handle(&requester.request(1));
        assert!(responder.is_some());
        assert!(requester.complete(&reply).is_ok());
    }

    #[test]
    fn unknown_service_rejected() {
        let cm = CmManager::new();
        let requester = CmRequester::new(1, 0);
        let (reply, qp) = cm.handle(&requester.request(9));
        assert!(qp.is_none());
        assert!(requester.complete(&reply).is_err());
    }

    #[test]
    #[should_panic]
    fn duplicate_service_rejected() {
        let mut cm = CmManager::new();
        cm.publish(kv_params());
        cm.publish(kv_params());
    }

    #[test]
    fn qpns_are_unique_per_service() {
        let mut cm = CmManager::new();
        let a = cm.publish(ConnectionParams { service: 1, ..kv_params() });
        let b = cm.publish(ConnectionParams { service: 2, ..kv_params() });
        assert_ne!(a.qpn, b.qpn);
    }
}

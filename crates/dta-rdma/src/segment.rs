//! MTU segmentation for RDMA WRITEs.
//!
//! RoCE RC segments messages larger than the path MTU into WRITE FIRST /
//! MIDDLE / LAST packets; only the FIRST carries the RETH, and the
//! responder advances a per-QP cursor. DTA's per-report writes are tiny,
//! but large Append batches (e.g., 64 × 64 B) exceed a 1024 B MTU and take
//! this path.

use bytes::Bytes;

use crate::packet::{Bth, Opcode, Reth, RocePacket};
use crate::qp::QueuePair;

/// Standard IB path MTUs.
pub const MTU_256: usize = 256;
/// 1024-byte MTU (the common RoCE default).
pub const MTU_1024: usize = 1024;
/// 4096-byte MTU.
pub const MTU_4096: usize = 4096;

/// Segment a WRITE of `payload` to `(rkey, va)` into MTU-sized packets on
/// `qp`. Returns a single WRITE-Only when the payload fits in one MTU.
///
/// # Panics
/// Panics if `mtu` is zero or the payload is empty.
pub fn segment_write(
    qp: &mut QueuePair,
    rkey: u32,
    va: u64,
    payload: Bytes,
    mtu: usize,
) -> Vec<RocePacket> {
    assert!(mtu > 0, "MTU must be positive");
    assert!(!payload.is_empty(), "empty writes are not segmented");
    let dest_qp = qp.dest_qpn;
    let total = payload.len();
    if total <= mtu {
        let psn = qp.next_send_psn();
        return vec![RocePacket::write(
            dest_qp,
            psn,
            Reth { va, rkey, dma_len: total as u32 },
            payload,
        )];
    }
    let mut out = Vec::with_capacity(total.div_ceil(mtu));
    let mut off = 0usize;
    while off < total {
        let end = (off + mtu).min(total);
        let chunk = payload.slice(off..end);
        let opcode = if off == 0 {
            Opcode::WriteFirst
        } else if end == total {
            Opcode::WriteLast
        } else {
            Opcode::WriteMiddle
        };
        let psn = qp.next_send_psn();
        out.push(RocePacket {
            bth: Bth {
                opcode,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: end == total,
                psn,
            },
            reth: (off == 0).then_some(Reth { va, rkey, dma_len: total as u32 }),
            atomic: None,
            imm: None,
            payload: chunk,
        });
        off = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::{MemoryRegion, MrAccess};
    use crate::nic::{NicConfig, NicError, RdmaNic, RxOutcome};

    fn setup() -> (RdmaNic, QueuePair) {
        let mut nic = RdmaNic::new(NicConfig::bluefield2());
        nic.memory.register(MemoryRegion::new(0, 1 << 16, 0xDD, MrAccess::WRITE));
        let mut responder = QueuePair::new(2);
        responder.to_rtr(1, 0);
        responder.to_rts(0);
        nic.add_qp(responder);
        let mut requester = QueuePair::new(1);
        requester.to_rtr(2, 0);
        requester.to_rts(0);
        (nic, requester)
    }

    #[test]
    fn small_write_is_single_packet() {
        let (_, mut qp) = setup();
        let pkts = segment_write(&mut qp, 0xDD, 0, Bytes::from(vec![1u8; 100]), MTU_1024);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].bth.opcode, Opcode::WriteOnly);
    }

    #[test]
    fn large_write_segments_and_reassembles() {
        let (mut nic, mut qp) = setup();
        let data: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let pkts = segment_write(&mut qp, 0xDD, 0x100, Bytes::from(data.clone()), MTU_1024);
        assert_eq!(pkts.len(), 4);
        assert_eq!(pkts[0].bth.opcode, Opcode::WriteFirst);
        assert_eq!(pkts[1].bth.opcode, Opcode::WriteMiddle);
        assert_eq!(pkts[2].bth.opcode, Opcode::WriteMiddle);
        assert_eq!(pkts[3].bth.opcode, Opcode::WriteLast);
        assert!(pkts[0].reth.is_some());
        assert!(pkts[1].reth.is_none());
        for p in &pkts {
            assert!(matches!(nic.ingress(p), RxOutcome::Executed(_)));
        }
        let mem = nic.memory.lookup(0xDD).unwrap();
        assert_eq!(mem.peek(0x100, 4096).unwrap(), data);
    }

    #[test]
    fn uneven_tail_segment_handled() {
        let (mut nic, mut qp) = setup();
        let data = vec![7u8; 2500];
        let pkts = segment_write(&mut qp, 0xDD, 0, Bytes::from(data.clone()), MTU_1024);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[2].payload.len(), 452);
        for p in &pkts {
            assert!(matches!(nic.ingress(p), RxOutcome::Executed(_)));
        }
        assert_eq!(nic.memory.lookup(0xDD).unwrap().peek(0, 2500).unwrap(), data);
    }

    #[test]
    fn lost_middle_segment_naks_the_rest() {
        let (mut nic, mut qp) = setup();
        let pkts = segment_write(&mut qp, 0xDD, 0, Bytes::from(vec![1u8; 3000]), MTU_1024);
        assert!(matches!(nic.ingress(&pkts[0]), RxOutcome::Executed(_)));
        // Drop pkts[1]; pkts[2] has a PSN gap and must be NAKed, leaving the
        // write incomplete rather than corrupt.
        assert!(matches!(nic.ingress(&pkts[2]), RxOutcome::Nak(_)));
    }

    #[test]
    fn continuation_without_first_is_malformed() {
        let (mut nic, mut qp) = setup();
        let pkts = segment_write(&mut qp, 0xDD, 0, Bytes::from(vec![1u8; 3000]), MTU_1024);
        // Deliver only the middle: PSN 0 is expected but opcode is a
        // continuation with no in-progress state.
        let mut middle = pkts[1].clone();
        middle.bth.psn = 0;
        assert!(matches!(
            nic.ingress(&middle),
            RxOutcome::Error(NicError::Malformed)
        ));
    }

    #[test]
    fn interleaved_qps_keep_separate_cursors() {
        let mut nic = RdmaNic::new(NicConfig::bluefield2());
        nic.memory.register(MemoryRegion::new(0, 1 << 16, 0xDD, MrAccess::WRITE));
        for qpn in [10u32, 20] {
            let mut r = QueuePair::new(qpn);
            r.to_rtr(qpn + 100, 0);
            r.to_rts(0);
            nic.add_qp(r);
        }
        let mut qa = QueuePair::new(110);
        qa.to_rtr(10, 0);
        qa.to_rts(0);
        let mut qb = QueuePair::new(120);
        qb.to_rtr(20, 0);
        qb.to_rts(0);
        let a = segment_write(&mut qa, 0xDD, 0, Bytes::from(vec![0xAA; 2048]), MTU_1024);
        let b = segment_write(&mut qb, 0xDD, 0x800, Bytes::from(vec![0xBB; 2048]), MTU_1024);
        // Interleave the two QPs' segments.
        for p in [&a[0], &b[0], &a[1], &b[1]] {
            assert!(matches!(nic.ingress(p), RxOutcome::Executed(_)));
        }
        let mem = nic.memory.lookup(0xDD).unwrap();
        assert_eq!(mem.peek(0, 2048).unwrap(), vec![0xAA; 2048]);
        assert_eq!(mem.peek(0x800, 2048).unwrap(), vec![0xBB; 2048]);
    }

    #[test]
    fn overrun_beyond_reth_length_rejected() {
        let (mut nic, mut qp) = setup();
        let pkts = segment_write(&mut qp, 0xDD, 0, Bytes::from(vec![1u8; 2048]), MTU_1024);
        assert!(matches!(nic.ingress(&pkts[0]), RxOutcome::Executed(_)));
        // Tamper: grow the last segment beyond the announced dma_len.
        let mut last = pkts[1].clone();
        last.payload = Bytes::from(vec![9u8; 1500]);
        assert!(matches!(
            nic.ingress(&last),
            RxOutcome::Error(NicError::Malformed)
        ));
    }
}

//! Registered memory regions.
//!
//! The collector allocates its primitive data structures in RDMA-registered
//! memory ("all RDMA-registered memory is allocated on 1GB huge pages", §6)
//! and hands out rkeys to the translator. Every inbound WRITE / FETCH_ADD is
//! validated against the region's bounds and key before touching memory —
//! and counted, because "memory instructions per report" is the paper's
//! Figure 8 metric.
//!
//! Storage is **lock-striped**: the region is split into fixed power-of-two
//! stripes, each behind its own `RwLock`. Slot writes landing in different
//! stripes proceed in parallel (like DMA channels hitting different DRAM
//! banks), and the common one-stripe access takes exactly one uncontended
//! lock instead of the previous whole-region `RwLock`. The accessors are
//! allocation-free: [`MemoryRegion::read_into`] copies into a caller buffer
//! and [`MemoryRegion::with_slice`] lends a borrowed view (zero-copy when
//! the range stays inside one stripe, which slot-sized accesses always do
//! in practice).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Stripe width in bytes. Power of two so stripe index and offset are a
/// shift and a mask. 4KB keeps a slot access inside one stripe except when
/// it straddles a 4KB boundary (rare: slots are tens of bytes).
pub const STRIPE_BYTES: usize = 4096;
const STRIPE_SHIFT: u32 = STRIPE_BYTES.trailing_zeros();

/// Errors when executing an RDMA op against registered memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrError {
    /// No region with the given rkey.
    BadRkey(u32),
    /// The access falls outside the region.
    OutOfBounds {
        /// Requested virtual address.
        va: u64,
        /// Requested length.
        len: usize,
    },
    /// Atomic access not aligned to 8 bytes.
    Misaligned(u64),
    /// Region does not permit the requested access.
    AccessDenied,
}

impl core::fmt::Display for MrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MrError::BadRkey(k) => write!(f, "unknown rkey {k:#x}"),
            MrError::OutOfBounds { va, len } => {
                write!(f, "access [{va:#x}, +{len}) outside region")
            }
            MrError::Misaligned(va) => write!(f, "atomic at {va:#x} not 8B-aligned"),
            MrError::AccessDenied => write!(f, "region access denied"),
        }
    }
}

impl std::error::Error for MrError {}

/// Access permissions of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrAccess {
    /// Remote writes allowed.
    pub remote_write: bool,
    /// Remote atomics allowed.
    pub remote_atomic: bool,
}

impl MrAccess {
    /// Write-only region (Key-Write, Postcarding, Append targets).
    pub const WRITE: MrAccess = MrAccess { remote_write: true, remote_atomic: false };
    /// Atomic-capable region (Key-Increment sketch).
    pub const ATOMIC: MrAccess = MrAccess { remote_write: true, remote_atomic: true };
}

/// Query-side counters. Write/atomic instruction counts live inside the
/// stripes (updated under the stripe lock those ops already hold) and are
/// summed on demand — the write hot path performs no region-global atomic
/// RMW at all.
#[derive(Debug, Default)]
pub struct MrStats {
    /// FETCH_ADD operations executed.
    pub atomics: AtomicU64,
    /// Local read operations (collector-side queries).
    pub local_reads: AtomicU64,
}

/// The counters a stripe lock serializes alongside its bytes (cheaper
/// than region-global atomics).
#[derive(Default)]
struct StripeMeta {
    writes: u64,
    bytes_written: u64,
    /// Whether any write-locked access ever happened (RDMA WRITE, atomic,
    /// or reset). Clean stripes are still all-zero, so snapshots skip them.
    dirty: bool,
}

/// A minimal spin rwlock specialized for stripe access: slot-sized
/// critical sections (a bounds-checked memcpy) make parking machinery pure
/// overhead. Writers CAS `0 -> WRITER`; readers increment while no writer
/// holds it. Not panic-safe: a panicking critical section deadlocks the
/// stripe instead of poisoning (acceptable for the simulator; sections
/// contain no panicking calls).
struct StripeLock {
    state: AtomicU32,
    meta: UnsafeCell<StripeMeta>,
}

const WRITER: u32 = u32::MAX;

impl StripeLock {
    fn new() -> Self {
        StripeLock { state: AtomicU32::new(0), meta: UnsafeCell::new(StripeMeta::default()) }
    }

    #[inline]
    fn acquire_write(&self) {
        let mut spins = 0u32;
        while self
            .state
            .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn release_write(&self) {
        self.state.store(0, Ordering::Release);
    }

    #[inline]
    fn acquire_read(&self) {
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s != WRITER
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn release_read(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }
}

/// The striped backing store shared by all clones of a region.
///
/// The bytes live in **one** shared zeroed allocation (so registering a
/// multi-MB region is one `alloc_zeroed` — per-stripe 4KB boxes memset
/// eagerly and cost ~0.6ms per default-sized collector); stripe `i` covers
/// `[i * STRIPE_BYTES, (i+1) * STRIPE_BYTES) ∩ [0, len)` and that range is
/// only dereferenced while `locks[i]` is held.
struct Stripes {
    len: usize,
    /// `UnsafeCell<u8>` has the same in-memory representation as `u8`;
    /// wrapping each byte keeps the shared-allocation interior mutability
    /// sound without ever forming overlapping `&mut [u8]`.
    data: Box<[UnsafeCell<u8>]>,
    locks: Vec<StripeLock>,
}

// SAFETY: every byte of `data` is assigned to exactly one stripe, and all
// access to a stripe's bytes and meta happens under its rwlock — the same
// discipline as a Vec of RwLock<[u8; STRIPE_BYTES]>.
unsafe impl Sync for Stripes {}
unsafe impl Send for Stripes {}

impl Drop for Stripes {
    fn drop(&mut self) {
        self.recycle();
    }
}

/// Process-wide recycling pool of zeroed stripe backings, keyed by length.
///
/// Region registration patterns repeat (every simulated collector sizes
/// its stores the same way), and glibc's adaptive mmap threshold turns a
/// repeated multi-MB `alloc_zeroed` into an explicit memset. Recycled
/// buffers are re-zeroed **dirty stripes only** on return, so a mostly
/// clean region costs almost nothing to recycle. The pool is bounded;
/// overflow buffers just drop.
fn stripe_pool() -> &'static Mutex<Vec<PooledBytes>> {
    static POOL: std::sync::OnceLock<Mutex<Vec<PooledBytes>>> = std::sync::OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// One recyclable zeroed backing allocation.
type PooledBytes = Box<[UnsafeCell<u8>]>;

/// Upper bound on pooled buffers (a workstation-scale cap, not a tuning
/// knob: 32 default-sized collectors' worth).
const STRIPE_POOL_MAX: usize = 128;

impl Stripes {
    fn new(len: usize) -> Self {
        let n = len.div_ceil(STRIPE_BYTES);
        let pooled = stripe_pool()
            .lock()
            .ok()
            .and_then(|mut pool| {
                pool.iter()
                    .position(|b| b.len() == len)
                    .map(|i| pool.swap_remove(i))
            });
        let data = pooled.unwrap_or_else(|| {
            let mut v = std::mem::ManuallyDrop::new(vec![0u8; len]);
            // SAFETY: UnsafeCell<u8> is repr(transparent) over u8 (same
            // size and alignment); `vec![0u8; len]` allocates capacity ==
            // len, so no reallocation hides behind into_boxed_slice.
            unsafe {
                Vec::from_raw_parts(v.as_mut_ptr() as *mut UnsafeCell<u8>, v.len(), v.capacity())
            }
            .into_boxed_slice()
        });
        Stripes { len, data, locks: (0..n).map(|_| StripeLock::new()).collect() }
    }

    /// Byte range of stripe `i`.
    #[inline]
    fn range(&self, i: usize) -> (usize, usize) {
        let start = i * STRIPE_BYTES;
        (start, self.len.min(start + STRIPE_BYTES))
    }

    #[inline]
    fn with_write<R>(&self, i: usize, f: impl FnOnce(&mut [u8], &mut StripeMeta) -> R) -> R {
        let lock = &self.locks[i];
        lock.acquire_write();
        let (s, e) = self.range(i);
        // SAFETY: the write lock gives exclusive access to this stripe's
        // bytes and meta; the slice covers only this stripe's range.
        let r = unsafe {
            let buf =
                std::slice::from_raw_parts_mut(self.data[s..e].as_ptr() as *mut u8, e - s);
            let meta = &mut *lock.meta.get();
            meta.dirty = true;
            f(buf, meta)
        };
        lock.release_write();
        r
    }

    /// Return the backing to the pool, zeroed. Only dirty stripes are
    /// wiped (clean ones are zero by invariant).
    fn recycle(&mut self) {
        if self.data.is_empty() {
            return;
        }
        for i in 0..self.locks.len() {
            // SAFETY: `&mut self` in drop — no other access possible.
            if unsafe { &*self.locks[i].meta.get() }.dirty {
                let (s, e) = self.range(i);
                // SAFETY: same exclusivity as the meta read above (`&mut
                // self` in drop), and the slice covers only stripe `i`'s
                // range of the shared allocation.
                unsafe {
                    std::slice::from_raw_parts_mut(self.data[s..e].as_ptr() as *mut u8, e - s)
                        .fill(0);
                }
            }
        }
        let data = std::mem::take(&mut self.data);
        if let Ok(mut pool) = stripe_pool().lock() {
            if pool.len() < STRIPE_POOL_MAX {
                pool.push(data);
            }
        }
    }

    #[inline]
    fn with_read<R>(&self, i: usize, f: impl FnOnce(&[u8], &StripeMeta) -> R) -> R {
        let lock = &self.locks[i];
        lock.acquire_read();
        let (s, e) = self.range(i);
        // SAFETY: the shared lock excludes writers for this stripe.
        let r = unsafe {
            let buf = std::slice::from_raw_parts(self.data[s..e].as_ptr() as *const u8, e - s);
            f(buf, &*lock.meta.get())
        };
        lock.release_read();
        r
    }
}

/// A registered memory region.
///
/// Interior mutability allows the simulated NIC (ingress path) and the
/// collector's query threads to share the region, like DMA and CPU share
/// DRAM. Locking is per-stripe; accesses to different stripes never
/// contend, and multi-stripe accesses take the stripe locks in ascending
/// order (so concurrent spanning accesses cannot deadlock).
#[derive(Clone)]
pub struct MemoryRegion {
    /// Starting virtual address.
    pub base_va: u64,
    /// rkey advertised to peers.
    pub rkey: u32,
    access: MrAccess,
    mem: Arc<Stripes>,
    stats: Arc<MrStats>,
}

impl core::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("base_va", &self.base_va)
            .field("rkey", &self.rkey)
            .field("len", &self.len())
            .field("stripes", &self.mem.locks.len())
            .finish()
    }
}

impl MemoryRegion {
    /// Register `len` zeroed bytes at `base_va` with the given key/access.
    pub fn new(base_va: u64, len: usize, rkey: u32, access: MrAccess) -> Self {
        MemoryRegion {
            base_va,
            rkey,
            access,
            mem: Arc::new(Stripes::new(len)),
            stats: Arc::new(MrStats::default()),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.mem.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter handle.
    pub fn stats(&self) -> &MrStats {
        &self.stats
    }

    fn offset(&self, va: u64, len: usize) -> Result<usize, MrError> {
        let end = va.checked_add(len as u64).ok_or(MrError::OutOfBounds { va, len })?;
        if va < self.base_va || end > self.base_va + self.len() as u64 {
            return Err(MrError::OutOfBounds { va, len });
        }
        Ok((va - self.base_va) as usize)
    }

    /// Execute an RDMA WRITE of `data` at `va`.
    #[inline]
    pub fn write(&self, va: u64, data: &[u8]) -> Result<(), MrError> {
        if !self.access.remote_write {
            return Err(MrError::AccessDenied);
        }
        let off = self.offset(va, data.len())?;
        let stripe = off >> STRIPE_SHIFT;
        let within = off & (STRIPE_BYTES - 1);
        if within + data.len() <= STRIPE_BYTES {
            // Fast path: slot-sized writes stay inside one stripe. All
            // accounting happens under the stripe lock already held — the
            // write path touches no region-global atomics.
            self.mem.with_write(stripe, |buf, m| {
                buf[within..within + data.len()].copy_from_slice(data);
                m.writes += 1;
                m.bytes_written += data.len() as u64;
            });
        } else {
            self.write_spanning(off, data);
        }
        Ok(())
    }

    /// Slow path for writes crossing stripe boundaries: stripe locks are
    /// taken in ascending order (no deadlock against other spanning ops).
    /// The op counts once, on its first stripe.
    fn write_spanning(&self, mut off: usize, data: &[u8]) {
        let mut src = data;
        let mut first = true;
        while !src.is_empty() {
            let stripe = off >> STRIPE_SHIFT;
            let within = off & (STRIPE_BYTES - 1);
            let take = src.len().min(STRIPE_BYTES - within);
            self.mem.with_write(stripe, |buf, m| {
                buf[within..within + take].copy_from_slice(&src[..take]);
                if first {
                    m.writes += 1;
                }
                m.bytes_written += take as u64;
            });
            first = false;
            src = &src[take..];
            off += take;
        }
    }

    /// RDMA WRITE operations executed (summed from the per-stripe
    /// counters).
    pub fn writes(&self) -> u64 {
        (0..self.mem.locks.len()).map(|i| self.mem.with_read(i, |_, m| m.writes)).sum()
    }

    /// Total bytes written into the region (summed from the per-stripe
    /// counters).
    pub fn bytes_written(&self) -> u64 {
        (0..self.mem.locks.len()).map(|i| self.mem.with_read(i, |_, m| m.bytes_written)).sum()
    }

    /// Total memory instructions executed against this region (one per
    /// RDMA op, as in Figure 8: the NIC's DMA engine issues one memory
    /// transaction per operation).
    pub fn memory_instructions(&self) -> u64 {
        self.writes() + self.stats.atomics.load(Ordering::Relaxed)
    }

    /// Execute a FETCH_ADD of `add` at `va` (8-byte, per the IB spec).
    /// Returns the original value.
    pub fn fetch_add(&self, va: u64, add: u64) -> Result<u64, MrError> {
        if !self.access.remote_atomic {
            return Err(MrError::AccessDenied);
        }
        if !va.is_multiple_of(8) {
            return Err(MrError::Misaligned(va));
        }
        let off = self.offset(va, 8)?;
        // The region-relative offset must be 8B-aligned too (as with real
        // RDMA, where registered regions are page-aligned): an unaligned
        // base_va would otherwise let an aligned va straddle a stripe.
        if off % 8 != 0 {
            return Err(MrError::Misaligned(va));
        }
        let stripe = off >> STRIPE_SHIFT;
        let within = off & (STRIPE_BYTES - 1);
        let old = self.mem.with_write(stripe, |buf, _| {
            let word = &mut buf[within..within + 8];
            let old = u64::from_be_bytes(word.as_ref().try_into().unwrap());
            word.copy_from_slice(&old.wrapping_add(add).to_be_bytes());
            old
        });
        self.stats.atomics.fetch_add(1, Ordering::Relaxed);
        Ok(old)
    }

    /// Copy `dst.len()` bytes at `va` into a caller-provided buffer — the
    /// allocation-free read used by every query path.
    ///
    /// Counted as a query-side memory access when `counted` paths call it
    /// via [`MemoryRegion::read`]; use [`MemoryRegion::peek_into`] for
    /// diagnostics.
    pub fn read_into(&self, va: u64, dst: &mut [u8]) -> Result<(), MrError> {
        self.copy_out(va, dst)?;
        // Counted only on success, consistently with `with_slice`.
        self.stats.local_reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// [`MemoryRegion::read_into`] without touching the query counters
    /// (test/diagnostic use).
    pub fn peek_into(&self, va: u64, dst: &mut [u8]) -> Result<(), MrError> {
        self.copy_out(va, dst)
    }

    fn copy_out(&self, va: u64, dst: &mut [u8]) -> Result<(), MrError> {
        let mut off = self.offset(va, dst.len())?;
        let mut out = dst;
        while !out.is_empty() {
            let stripe = off >> STRIPE_SHIFT;
            let within = off & (STRIPE_BYTES - 1);
            let take = out.len().min(STRIPE_BYTES - within);
            self.mem
                .with_read(stripe, |buf, _| out[..take].copy_from_slice(&buf[within..within + take]));
            out = &mut out[take..];
            off += take;
        }
        Ok(())
    }

    /// Run `f` over the bytes at `[va, va+len)` without copying when the
    /// range lies inside one stripe (slot-sized accesses always do unless
    /// they straddle a stripe boundary, in which case the bytes are staged
    /// through a small stack buffer — still allocation-free for ranges up
    /// to 64 bytes, the largest slot any primitive uses).
    ///
    /// Counted as one query-side memory access.
    pub fn with_slice<R>(
        &self,
        va: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, MrError> {
        let off = self.offset(va, len)?;
        self.stats.local_reads.fetch_add(1, Ordering::Relaxed);
        let stripe = off >> STRIPE_SHIFT;
        let within = off & (STRIPE_BYTES - 1);
        if within + len <= STRIPE_BYTES {
            Ok(self.mem.with_read(stripe, |buf, _| f(&buf[within..within + len])))
        } else if len <= 64 {
            let mut buf = [0u8; 64];
            self.copy_out(va, &mut buf[..len])?;
            Ok(f(&buf[..len]))
        } else {
            let mut buf = vec![0u8; len];
            self.copy_out(va, &mut buf)?;
            Ok(f(&buf))
        }
    }

    /// Local (collector-side) read of `len` bytes at `va` into a fresh
    /// vector. Not an RDMA op; counted separately as a query-side memory
    /// access. Hot paths should prefer [`MemoryRegion::read_into`] /
    /// [`MemoryRegion::with_slice`], which do not allocate.
    pub fn read(&self, va: u64, len: usize) -> Result<Vec<u8>, MrError> {
        let mut out = vec![0u8; len];
        self.read_into(va, &mut out)?;
        Ok(out)
    }

    /// Read without counting (test/diagnostic use).
    pub fn peek(&self, va: u64, len: usize) -> Result<Vec<u8>, MrError> {
        let mut out = vec![0u8; len];
        self.peek_into(va, &mut out)?;
        Ok(out)
    }

    /// Zero the whole region (e.g., periodic Key-Increment counter reset).
    pub fn reset(&self) {
        for i in 0..self.mem.locks.len() {
            self.mem.with_write(i, |buf, _| buf.fill(0));
        }
    }

    /// Copy the whole region out into a [`SnapshotBuf`]: dirty stripes
    /// memcpy under their read locks; clean stripes are never read *or*
    /// written, because the destination comes from the same zeroed-buffer
    /// pool the stripes themselves recycle through. The cost is
    /// proportional to the bytes the run dirtied, not the region size —
    /// and the buffer returns to the pool when the snapshot drops. This is
    /// what the scenario harness snapshots collector memory with.
    pub fn snapshot(&self) -> SnapshotBuf {
        let mut out = SnapshotBuf::zeroed(self.len());
        for i in 0..self.mem.locks.len() {
            let (s, _) = self.mem.range(i);
            self.mem.with_read(i, |buf, m| {
                if m.dirty {
                    out.write_range(s, buf);
                }
            });
        }
        out
    }
}

/// An owned byte image of a region, produced by [`MemoryRegion::snapshot`].
///
/// Backed by the same process-wide zeroed-buffer pool the stripe stores
/// recycle through: acquisition is pool-pop (no allocation, no memset for
/// the clean majority of a region), and drop re-zeros only the ranges that
/// were written before returning the buffer. Dereferences to `&[u8]`.
pub struct SnapshotBuf {
    data: Box<[UnsafeCell<u8>]>,
    len: usize,
    /// `(start, end)` byte ranges written (re-zeroed on drop).
    written: Vec<(u32, u32)>,
}

impl SnapshotBuf {
    /// An all-zero image of `len` bytes (pooled when possible).
    fn zeroed(len: usize) -> Self {
        let pooled = stripe_pool().lock().ok().and_then(|mut pool| {
            pool.iter()
                .position(|b| b.len() == len)
                .map(|i| pool.swap_remove(i))
        });
        let data = pooled.unwrap_or_else(|| {
            let mut v = std::mem::ManuallyDrop::new(vec![0u8; len]);
            // SAFETY: UnsafeCell<u8> is repr(transparent) over u8; the
            // vec! allocation has capacity == len.
            unsafe {
                Vec::from_raw_parts(v.as_mut_ptr() as *mut UnsafeCell<u8>, v.len(), v.capacity())
            }
            .into_boxed_slice()
        });
        SnapshotBuf { data, len, written: Vec::new() }
    }

    /// Copy `src` into the image at byte offset `start`.
    fn write_range(&mut self, start: usize, src: &[u8]) {
        let end = start + src.len();
        debug_assert!(end <= self.len);
        // SAFETY: the buffer is exclusively owned; the range is in bounds.
        unsafe {
            std::slice::from_raw_parts_mut(self.data[start..end].as_ptr() as *mut u8, src.len())
                .copy_from_slice(src);
        }
        self.written.push((start as u32, end as u32));
    }

    /// Byte-wise OR `other` into this image.
    ///
    /// The collector-fleet memory merge: when every key's slots are
    /// written on exactly one collector (write-once Key-Write, slot-
    /// disjoint key pools), OR-ing the per-collector images is a union of
    /// the written bytes, and the merged image is comparable byte-for-byte
    /// against a single-image run. Panics if the lengths differ.
    pub fn or_with(&mut self, other: &[u8]) {
        assert_eq!(other.len(), self.len, "cannot OR differently sized region images");
        // SAFETY: the buffer is exclusively owned; plain-byte writes.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(self.data.as_ptr() as *mut u8, self.len)
        };
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for (i, (d, &s)) in dst.iter_mut().zip(other).enumerate() {
            if s != 0 {
                *d |= s;
                lo = lo.min(i);
                hi = hi.max(i + 1);
            }
        }
        if lo < hi {
            self.written.push((lo as u32, hi as u32));
        }
    }

    /// The full image bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: exclusive ownership; shared reads of plain bytes.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr() as *const u8, self.len) }
    }
}

impl std::ops::Deref for SnapshotBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Drop for SnapshotBuf {
    fn drop(&mut self) {
        for &(s, e) in &self.written {
            // SAFETY: exclusive ownership in drop.
            unsafe {
                std::slice::from_raw_parts_mut(
                    self.data[s as usize..e as usize].as_ptr() as *mut u8,
                    (e - s) as usize,
                )
                .fill(0);
            }
        }
        let data = std::mem::take(&mut self.data);
        if data.is_empty() {
            return;
        }
        if let Ok(mut pool) = stripe_pool().lock() {
            if pool.len() < STRIPE_POOL_MAX {
                pool.push(data);
            }
        }
    }
}

impl Clone for SnapshotBuf {
    fn clone(&self) -> Self {
        let mut out = SnapshotBuf::zeroed(self.len);
        for &(s, e) in &self.written {
            out.write_range(s as usize, &self.as_bytes()[s as usize..e as usize]);
        }
        out
    }
}

impl PartialEq for SnapshotBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for SnapshotBuf {}

impl core::fmt::Debug for SnapshotBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SnapshotBuf")
            .field("len", &self.len)
            .field("written_ranges", &self.written.len())
            .finish()
    }
}

// SAFETY: plain bytes behind exclusive ownership.
unsafe impl Send for SnapshotBuf {}
unsafe impl Sync for SnapshotBuf {}

/// The per-NIC table of registered regions, keyed by rkey.
///
/// Lookup is a hash-indexed probe (fibonacci-hashed rkey, linear probing
/// over a power-of-two table), so a collector hosting many regions pays
/// O(1) per validated op instead of the old linear scan. Cloning a registry
/// clones the region *handles* only — the striped backing stores are
/// shared, which is how per-shard NIC endpoints all land in the same
/// collector memory.
#[derive(Debug, Default, Clone)]
pub struct MemoryRegistry {
    regions: Vec<MemoryRegion>,
    /// Open-addressed rkey index: `(rkey, region_index + 1)`, 0 = empty.
    index: Vec<(u32, u32)>,
    index_mask: usize,
}

/// Fibonacci mix of an rkey into the index table. rkeys are often small
/// sequential constants; the multiply spreads them across the table so
/// probes stay short.
#[inline]
fn rkey_hash(rkey: u32) -> usize {
    rkey.wrapping_mul(0x9E37_79B9) as usize
}

impl MemoryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a region; rkeys must be unique.
    ///
    /// # Panics
    /// Panics if the rkey is already registered.
    pub fn register(&mut self, region: MemoryRegion) {
        assert!(
            self.lookup(region.rkey).is_none(),
            "duplicate rkey {:#x}",
            region.rkey
        );
        self.regions.push(region);
        // Keep the load factor at most 1/2 so probe chains stay short.
        if self.index.len() < self.regions.len() * 2 {
            self.rebuild_index();
        } else {
            let idx = self.regions.len() - 1;
            self.index_insert(self.regions[idx].rkey, idx as u32);
        }
    }

    fn rebuild_index(&mut self) {
        let cap = (self.regions.len() * 4).next_power_of_two().max(8);
        self.index = vec![(0, 0); cap];
        self.index_mask = cap - 1;
        for i in 0..self.regions.len() {
            self.index_insert(self.regions[i].rkey, i as u32);
        }
    }

    fn index_insert(&mut self, rkey: u32, region_idx: u32) {
        let mut at = rkey_hash(rkey) & self.index_mask;
        while self.index[at].1 != 0 {
            at = (at + 1) & self.index_mask;
        }
        self.index[at] = (rkey, region_idx + 1);
    }

    /// Find a region by rkey.
    #[inline]
    pub fn lookup(&self, rkey: u32) -> Option<&MemoryRegion> {
        if self.index.is_empty() {
            return None;
        }
        let mut at = rkey_hash(rkey) & self.index_mask;
        loop {
            let (k, v) = self.index[at];
            if v == 0 {
                return None;
            }
            if k == rkey {
                return Some(&self.regions[(v - 1) as usize]);
            }
            at = (at + 1) & self.index_mask;
        }
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterate over the registered regions (rkey order of registration).
    pub fn regions(&self) -> impl Iterator<Item = &MemoryRegion> {
        self.regions.iter()
    }

    /// Execute a validated WRITE.
    pub fn write(&self, rkey: u32, va: u64, data: &[u8]) -> Result<(), MrError> {
        self.lookup(rkey).ok_or(MrError::BadRkey(rkey))?.write(va, data)
    }

    /// Execute a validated FETCH_ADD.
    pub fn fetch_add(&self, rkey: u32, va: u64, add: u64) -> Result<u64, MrError> {
        self.lookup(rkey).ok_or(MrError::BadRkey(rkey))?.fetch_add(va, add)
    }

    /// Sum of memory instructions across all regions.
    pub fn memory_instructions(&self) -> u64 {
        self.regions.iter().map(|r| r.memory_instructions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_back() {
        let mr = MemoryRegion::new(0x1000, 64, 1, MrAccess::WRITE);
        mr.write(0x1010, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mr.read(0x1010, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(mr.writes(), 1);
        assert_eq!(mr.bytes_written(), 4);
        assert_eq!(mr.stats().local_reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_or_merge_unions_disjoint_writes() {
        let a = MemoryRegion::new(0, 64, 1, MrAccess::WRITE);
        let b = MemoryRegion::new(0, 64, 1, MrAccess::WRITE);
        let both = MemoryRegion::new(0, 64, 1, MrAccess::WRITE);
        a.write(4, &[1, 2]).unwrap();
        b.write(32, &[7]).unwrap();
        both.write(4, &[1, 2]).unwrap();
        both.write(32, &[7]).unwrap();
        let mut merged = a.snapshot();
        merged.or_with(&b.snapshot());
        assert_eq!(&*merged, &*both.snapshot());
    }

    #[test]
    fn read_into_is_allocation_free_interface() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::WRITE);
        mr.write(8, &[7; 8]).unwrap();
        let mut buf = [0u8; 8];
        mr.read_into(8, &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
        assert!(matches!(
            mr.read_into(60, &mut buf),
            Err(MrError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn with_slice_lends_written_bytes() {
        let mr = MemoryRegion::new(0x100, 256, 1, MrAccess::WRITE);
        mr.write(0x180, &[9, 8, 7]).unwrap();
        let sum = mr.with_slice(0x180, 3, |s| s.iter().map(|&b| b as u32).sum::<u32>()).unwrap();
        assert_eq!(sum, 24);
        assert!(mr.with_slice(0x1FF, 2, |_| ()).is_err());
    }

    #[test]
    fn accesses_spanning_stripes_are_exact() {
        // Region bigger than one stripe; write across the boundary.
        let len = STRIPE_BYTES * 2 + 17;
        let mr = MemoryRegion::new(0, len, 1, MrAccess::WRITE);
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let va = (STRIPE_BYTES - 100) as u64;
        mr.write(va, &data).unwrap();
        assert_eq!(mr.peek(va, data.len()).unwrap(), data);
        // Spanning with_slice stages through a buffer but sees the same bytes.
        let first = mr.with_slice(va, data.len(), |s| s.to_vec()).unwrap();
        assert_eq!(first, data);
        // Tail of the region is still addressable.
        mr.write((len - 4) as u64, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mr.peek((len - 4) as u64, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn parallel_writers_to_distinct_stripes() {
        let mr = MemoryRegion::new(0, STRIPE_BYTES * 8, 1, MrAccess::WRITE);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let mr = mr.clone();
                s.spawn(move || {
                    let base = t * STRIPE_BYTES as u64;
                    for i in 0..64u64 {
                        mr.write(base + i * 8, &[t as u8 + 1; 8]).unwrap();
                    }
                });
            }
        });
        for t in 0..8u64 {
            let got = mr.peek(t * STRIPE_BYTES as u64, 8).unwrap();
            assert_eq!(got, vec![t as u8 + 1; 8]);
        }
        assert_eq!(mr.writes(), 8 * 64);
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let mr = MemoryRegion::new(0x1000, 64, 1, MrAccess::WRITE);
        assert!(matches!(mr.write(0x1040, &[0]), Err(MrError::OutOfBounds { .. })));
        assert!(matches!(mr.write(0x0FFF, &[0]), Err(MrError::OutOfBounds { .. })));
        // Boundary-exact write succeeds.
        mr.write(0x103C, &[0; 4]).unwrap();
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::ATOMIC);
        assert_eq!(mr.fetch_add(8, 5).unwrap(), 0);
        assert_eq!(mr.fetch_add(8, 7).unwrap(), 5);
        assert_eq!(
            u64::from_be_bytes(mr.peek(8, 8).unwrap().try_into().unwrap()),
            12
        );
    }

    #[test]
    fn misaligned_atomic_rejected() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::ATOMIC);
        assert!(matches!(mr.fetch_add(4, 1), Err(MrError::Misaligned(4))));
    }

    #[test]
    fn unaligned_base_va_atomic_rejected_not_panicking() {
        // Over an unaligned base_va, an 8B-aligned va has an unaligned
        // region offset and could straddle a stripe boundary; every
        // atomic must error cleanly (never panic). Aligned-base regions
        // are unaffected.
        let mr = MemoryRegion::new(4, STRIPE_BYTES * 2, 1, MrAccess::ATOMIC);
        let va = STRIPE_BYTES as u64; // va % 8 == 0, but off % 8 == 4
        assert!(matches!(mr.fetch_add(va, 1), Err(MrError::Misaligned(_))));
        assert!(matches!(mr.fetch_add(12, 1), Err(MrError::Misaligned(_))));
        let aligned = MemoryRegion::new(8, STRIPE_BYTES * 2, 2, MrAccess::ATOMIC);
        assert_eq!(aligned.fetch_add(16, 5).unwrap(), 0);
    }

    #[test]
    fn atomic_denied_on_write_only_region() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::WRITE);
        assert!(matches!(mr.fetch_add(0, 1), Err(MrError::AccessDenied)));
    }

    #[test]
    fn registry_validates_rkey() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 64, 10, MrAccess::WRITE));
        assert!(reg.write(10, 0, &[1]).is_ok());
        assert!(matches!(reg.write(11, 0, &[1]), Err(MrError::BadRkey(11))));
    }

    #[test]
    fn registry_indexes_many_regions() {
        // The hash index must stay exact through repeated growth/rehash:
        // register several hundred regions with awkward (clustered and
        // wide-spread) rkeys, then find every one and miss on neighbours.
        let mut reg = MemoryRegistry::new();
        let rkeys: Vec<u32> = (0..512u32)
            .map(|i| if i % 2 == 0 { i * 2 } else { 0x8000_0000 | (i * 3) })
            .collect();
        for (i, &rk) in rkeys.iter().enumerate() {
            reg.register(MemoryRegion::new(
                (i as u64) << 16,
                64,
                rk,
                MrAccess::WRITE,
            ));
        }
        assert_eq!(reg.len(), 512);
        for (i, &rk) in rkeys.iter().enumerate() {
            let r = reg.lookup(rk).unwrap_or_else(|| panic!("rkey {rk:#x} lost"));
            assert_eq!(r.base_va, (i as u64) << 16, "index returned wrong region");
        }
        for missing in [1u32, 5, 0x7FFF_FFFF, u32::MAX] {
            assert!(reg.lookup(missing).is_none(), "phantom hit for {missing:#x}");
        }
        // And the indexed regions execute.
        assert!(reg.write(rkeys[300], (300u64) << 16, &[1, 2, 3]).is_ok());
    }

    #[test]
    fn cloned_registry_shares_backing_stores() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 64, 7, MrAccess::WRITE));
        let clone = reg.clone();
        clone.write(7, 0, &[0xEE; 4]).unwrap();
        // The write through the clone is visible through the original.
        assert_eq!(reg.lookup(7).unwrap().peek(0, 4).unwrap(), vec![0xEE; 4]);
    }

    #[test]
    #[should_panic]
    fn duplicate_rkey_panics() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 64, 10, MrAccess::WRITE));
        reg.register(MemoryRegion::new(0x100, 64, 10, MrAccess::WRITE));
    }

    #[test]
    fn memory_instruction_accounting() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 1024, 1, MrAccess::ATOMIC));
        for i in 0..10 {
            reg.write(1, i * 8, &[0; 8]).unwrap();
        }
        for _ in 0..5 {
            reg.fetch_add(1, 0, 1).unwrap();
        }
        assert_eq!(reg.memory_instructions(), 15);
    }

    #[test]
    fn fetch_add_wraps() {
        let mr = MemoryRegion::new(0, 8, 1, MrAccess::ATOMIC);
        mr.fetch_add(0, u64::MAX).unwrap();
        assert_eq!(mr.fetch_add(0, 2).unwrap(), u64::MAX);
        assert_eq!(
            u64::from_be_bytes(mr.peek(0, 8).unwrap().try_into().unwrap()),
            1
        );
    }

    #[test]
    fn concurrent_fetch_adds_sum_exactly() {
        let mr = MemoryRegion::new(0, STRIPE_BYTES * 2, 1, MrAccess::ATOMIC);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mr = mr.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        mr.fetch_add(0, 1).unwrap();
                        mr.fetch_add(STRIPE_BYTES as u64, 2).unwrap();
                    }
                });
            }
        });
        let lo = u64::from_be_bytes(mr.peek(0, 8).unwrap().try_into().unwrap());
        let hi =
            u64::from_be_bytes(mr.peek(STRIPE_BYTES as u64, 8).unwrap().try_into().unwrap());
        assert_eq!(lo, 4000);
        assert_eq!(hi, 8000);
    }

    #[test]
    fn reset_zeroes_region() {
        let mr = MemoryRegion::new(0, 16, 1, MrAccess::WRITE);
        mr.write(0, &[0xFF; 16]).unwrap();
        mr.reset();
        assert_eq!(mr.peek(0, 16).unwrap(), vec![0u8; 16]);
    }
}

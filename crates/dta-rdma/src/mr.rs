//! Registered memory regions.
//!
//! The collector allocates its primitive data structures in RDMA-registered
//! memory ("all RDMA-registered memory is allocated on 1GB huge pages", §6)
//! and hands out rkeys to the translator. Every inbound WRITE / FETCH_ADD is
//! validated against the region's bounds and key before touching memory —
//! and counted, because "memory instructions per report" is the paper's
//! Figure 8 metric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Errors when executing an RDMA op against registered memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrError {
    /// No region with the given rkey.
    BadRkey(u32),
    /// The access falls outside the region.
    OutOfBounds {
        /// Requested virtual address.
        va: u64,
        /// Requested length.
        len: usize,
    },
    /// Atomic access not aligned to 8 bytes.
    Misaligned(u64),
    /// Region does not permit the requested access.
    AccessDenied,
}

impl core::fmt::Display for MrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MrError::BadRkey(k) => write!(f, "unknown rkey {k:#x}"),
            MrError::OutOfBounds { va, len } => {
                write!(f, "access [{va:#x}, +{len}) outside region")
            }
            MrError::Misaligned(va) => write!(f, "atomic at {va:#x} not 8B-aligned"),
            MrError::AccessDenied => write!(f, "region access denied"),
        }
    }
}

impl std::error::Error for MrError {}

/// Access permissions of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrAccess {
    /// Remote writes allowed.
    pub remote_write: bool,
    /// Remote atomics allowed.
    pub remote_atomic: bool,
}

impl MrAccess {
    /// Write-only region (Key-Write, Postcarding, Append targets).
    pub const WRITE: MrAccess = MrAccess { remote_write: true, remote_atomic: false };
    /// Atomic-capable region (Key-Increment sketch).
    pub const ATOMIC: MrAccess = MrAccess { remote_write: true, remote_atomic: true };
}

/// Memory-instruction counters (Figure 8 accounting).
#[derive(Debug, Default)]
pub struct MrStats {
    /// RDMA WRITE operations executed.
    pub writes: AtomicU64,
    /// FETCH_ADD operations executed.
    pub atomics: AtomicU64,
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Local read operations (collector-side queries).
    pub local_reads: AtomicU64,
}

impl MrStats {
    /// Total memory instructions so far (one per RDMA op, as in Figure 8:
    /// the NIC's DMA engine issues one memory transaction per operation).
    pub fn memory_instructions(&self) -> u64 {
        self.writes.load(Ordering::Relaxed) + self.atomics.load(Ordering::Relaxed)
    }
}

/// A registered memory region.
///
/// Interior mutability allows the simulated NIC (ingress path) and the
/// collector's query threads to share the region, like DMA and CPU share
/// DRAM.
#[derive(Clone)]
pub struct MemoryRegion {
    /// Starting virtual address.
    pub base_va: u64,
    /// rkey advertised to peers.
    pub rkey: u32,
    access: MrAccess,
    mem: Arc<RwLock<Vec<u8>>>,
    stats: Arc<MrStats>,
}

impl core::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("base_va", &self.base_va)
            .field("rkey", &self.rkey)
            .field("len", &self.len())
            .finish()
    }
}

impl MemoryRegion {
    /// Register `len` zeroed bytes at `base_va` with the given key/access.
    pub fn new(base_va: u64, len: usize, rkey: u32, access: MrAccess) -> Self {
        MemoryRegion {
            base_va,
            rkey,
            access,
            mem: Arc::new(RwLock::new(vec![0u8; len])),
            stats: Arc::new(MrStats::default()),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.mem.read().len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter handle.
    pub fn stats(&self) -> &MrStats {
        &self.stats
    }

    fn offset(&self, va: u64, len: usize) -> Result<usize, MrError> {
        let end = va.checked_add(len as u64).ok_or(MrError::OutOfBounds { va, len })?;
        if va < self.base_va || end > self.base_va + self.len() as u64 {
            return Err(MrError::OutOfBounds { va, len });
        }
        Ok((va - self.base_va) as usize)
    }

    /// Execute an RDMA WRITE of `data` at `va`.
    pub fn write(&self, va: u64, data: &[u8]) -> Result<(), MrError> {
        if !self.access.remote_write {
            return Err(MrError::AccessDenied);
        }
        let off = self.offset(va, data.len())?;
        self.mem.write()[off..off + data.len()].copy_from_slice(data);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Execute a FETCH_ADD of `add` at `va` (8-byte, per the IB spec).
    /// Returns the original value.
    pub fn fetch_add(&self, va: u64, add: u64) -> Result<u64, MrError> {
        if !self.access.remote_atomic {
            return Err(MrError::AccessDenied);
        }
        if va % 8 != 0 {
            return Err(MrError::Misaligned(va));
        }
        let off = self.offset(va, 8)?;
        let mut mem = self.mem.write();
        let old = u64::from_be_bytes(mem[off..off + 8].try_into().unwrap());
        let new = old.wrapping_add(add);
        mem[off..off + 8].copy_from_slice(&new.to_be_bytes());
        self.stats.atomics.fetch_add(1, Ordering::Relaxed);
        Ok(old)
    }

    /// Local (collector-side) read of `len` bytes at `va`. Not an RDMA op;
    /// counted separately as a query-side memory access.
    pub fn read(&self, va: u64, len: usize) -> Result<Vec<u8>, MrError> {
        let off = self.offset(va, len)?;
        self.stats.local_reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.mem.read()[off..off + len].to_vec())
    }

    /// Read without counting (test/diagnostic use).
    pub fn peek(&self, va: u64, len: usize) -> Result<Vec<u8>, MrError> {
        let off = self.offset(va, len)?;
        Ok(self.mem.read()[off..off + len].to_vec())
    }

    /// Zero the whole region (e.g., periodic Key-Increment counter reset).
    pub fn reset(&self) {
        self.mem.write().fill(0);
    }
}

/// The per-NIC table of registered regions, keyed by rkey.
#[derive(Debug, Default)]
pub struct MemoryRegistry {
    regions: Vec<MemoryRegion>,
}

impl MemoryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a region; rkeys must be unique.
    ///
    /// # Panics
    /// Panics if the rkey is already registered.
    pub fn register(&mut self, region: MemoryRegion) {
        assert!(
            self.lookup(region.rkey).is_none(),
            "duplicate rkey {:#x}",
            region.rkey
        );
        self.regions.push(region);
    }

    /// Find a region by rkey.
    pub fn lookup(&self, rkey: u32) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.rkey == rkey)
    }

    /// Execute a validated WRITE.
    pub fn write(&self, rkey: u32, va: u64, data: &[u8]) -> Result<(), MrError> {
        self.lookup(rkey).ok_or(MrError::BadRkey(rkey))?.write(va, data)
    }

    /// Execute a validated FETCH_ADD.
    pub fn fetch_add(&self, rkey: u32, va: u64, add: u64) -> Result<u64, MrError> {
        self.lookup(rkey).ok_or(MrError::BadRkey(rkey))?.fetch_add(va, add)
    }

    /// Sum of memory instructions across all regions.
    pub fn memory_instructions(&self) -> u64 {
        self.regions.iter().map(|r| r.stats().memory_instructions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_back() {
        let mr = MemoryRegion::new(0x1000, 64, 1, MrAccess::WRITE);
        mr.write(0x1010, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mr.read(0x1010, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(mr.stats().writes.load(Ordering::Relaxed), 1);
        assert_eq!(mr.stats().local_reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let mr = MemoryRegion::new(0x1000, 64, 1, MrAccess::WRITE);
        assert!(matches!(mr.write(0x1040, &[0]), Err(MrError::OutOfBounds { .. })));
        assert!(matches!(mr.write(0x0FFF, &[0]), Err(MrError::OutOfBounds { .. })));
        // Boundary-exact write succeeds.
        mr.write(0x103C, &[0; 4]).unwrap();
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::ATOMIC);
        assert_eq!(mr.fetch_add(8, 5).unwrap(), 0);
        assert_eq!(mr.fetch_add(8, 7).unwrap(), 5);
        assert_eq!(
            u64::from_be_bytes(mr.peek(8, 8).unwrap().try_into().unwrap()),
            12
        );
    }

    #[test]
    fn misaligned_atomic_rejected() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::ATOMIC);
        assert!(matches!(mr.fetch_add(4, 1), Err(MrError::Misaligned(4))));
    }

    #[test]
    fn atomic_denied_on_write_only_region() {
        let mr = MemoryRegion::new(0, 64, 1, MrAccess::WRITE);
        assert!(matches!(mr.fetch_add(0, 1), Err(MrError::AccessDenied)));
    }

    #[test]
    fn registry_validates_rkey() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 64, 10, MrAccess::WRITE));
        assert!(reg.write(10, 0, &[1]).is_ok());
        assert!(matches!(reg.write(11, 0, &[1]), Err(MrError::BadRkey(11))));
    }

    #[test]
    #[should_panic]
    fn duplicate_rkey_panics() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 64, 10, MrAccess::WRITE));
        reg.register(MemoryRegion::new(0x100, 64, 10, MrAccess::WRITE));
    }

    #[test]
    fn memory_instruction_accounting() {
        let mut reg = MemoryRegistry::new();
        reg.register(MemoryRegion::new(0, 1024, 1, MrAccess::ATOMIC));
        for i in 0..10 {
            reg.write(1, i * 8, &[0; 8]).unwrap();
        }
        for _ in 0..5 {
            reg.fetch_add(1, 0, 1).unwrap();
        }
        assert_eq!(reg.memory_instructions(), 15);
    }

    #[test]
    fn fetch_add_wraps() {
        let mr = MemoryRegion::new(0, 8, 1, MrAccess::ATOMIC);
        mr.fetch_add(0, u64::MAX).unwrap();
        assert_eq!(mr.fetch_add(0, 2).unwrap(), u64::MAX);
        assert_eq!(
            u64::from_be_bytes(mr.peek(0, 8).unwrap().try_into().unwrap()),
            1
        );
    }

    #[test]
    fn reset_zeroes_region() {
        let mr = MemoryRegion::new(0, 16, 1, MrAccess::WRITE);
        mr.write(0, &[0xFF; 16]).unwrap();
        mr.reset();
        assert_eq!(mr.peek(0, 16).unwrap(), vec![0u8; 16]);
    }
}

//! RoCEv2 wire format.
//!
//! A RoCEv2 packet is `Eth | IPv4 | UDP(dport=4791) | BTH | [ext headers] |
//! payload | ICRC`. We implement the headers DTA needs: BTH (always), RETH
//! (RDMA WRITE), AtomicETH (FETCH_ADD), ImmDt (immediate data), and a
//! CRC32-based ICRC over the payload (the real ICRC masks some fields; the
//! simulation checks integrity end-to-end which is the property that
//! matters).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dta_core::report::ReportError;
use dta_hash_icrc::icrc32;

/// UDP destination port registered for RoCEv2.
pub const ROCE_UDP_PORT: u16 = 4791;

/// IB transport opcodes (Reliable Connection class) used by DTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// RDMA WRITE First (starts a multi-packet write; carries the RETH).
    WriteFirst = 0x06,
    /// RDMA WRITE Middle.
    WriteMiddle = 0x07,
    /// RDMA WRITE Last.
    WriteLast = 0x08,
    /// SEND Only.
    SendOnly = 0x04,
    /// SEND Only with Immediate.
    SendOnlyImm = 0x05,
    /// RDMA WRITE Only.
    WriteOnly = 0x0A,
    /// RDMA WRITE Only with Immediate.
    WriteOnlyImm = 0x0B,
    /// RDMA READ Request (carries a RETH naming the bytes to return).
    ReadRequest = 0x0C,
    /// RDMA READ Response Only (single-packet response carrying the bytes).
    ReadResponseOnly = 0x10,
    /// ACK.
    Ack = 0x11,
    /// Atomic ACK.
    AtomicAck = 0x12,
    /// FETCH & ADD.
    FetchAdd = 0x14,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(v: u8) -> Result<Self, ReportError> {
        Ok(match v {
            0x06 => Opcode::WriteFirst,
            0x07 => Opcode::WriteMiddle,
            0x08 => Opcode::WriteLast,
            0x04 => Opcode::SendOnly,
            0x05 => Opcode::SendOnlyImm,
            0x0A => Opcode::WriteOnly,
            0x0B => Opcode::WriteOnlyImm,
            0x0C => Opcode::ReadRequest,
            0x10 => Opcode::ReadResponseOnly,
            0x11 => Opcode::Ack,
            0x12 => Opcode::AtomicAck,
            0x14 => Opcode::FetchAdd,
            other => return Err(ReportError::UnknownOpcode(other)),
        })
    }

    /// Whether this opcode carries a RETH.
    pub fn has_reth(self) -> bool {
        matches!(
            self,
            Opcode::WriteOnly | Opcode::WriteOnlyImm | Opcode::WriteFirst | Opcode::ReadRequest
        )
    }

    /// Whether this opcode continues a multi-packet write.
    pub fn is_write_continuation(self) -> bool {
        matches!(self, Opcode::WriteMiddle | Opcode::WriteLast)
    }

    /// Whether this opcode carries an AtomicETH.
    pub fn has_atomic_eth(self) -> bool {
        matches!(self, Opcode::FetchAdd)
    }

    /// Whether this opcode carries immediate data.
    pub fn has_imm(self) -> bool {
        matches!(self, Opcode::SendOnlyImm | Opcode::WriteOnlyImm)
    }

    /// Whether the responder must generate an acknowledgement. READ
    /// requests are excluded because the READ response itself carries the
    /// acknowledgement; READ responses are requester-bound and never acked.
    pub fn needs_ack(self) -> bool {
        !matches!(
            self,
            Opcode::Ack | Opcode::AtomicAck | Opcode::ReadRequest | Opcode::ReadResponseOnly
        )
    }
}

/// Base Transport Header — 12 bytes, present in every IB packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bth {
    /// Operation code.
    pub opcode: Opcode,
    /// Solicited event flag (raises an interrupt at the receiver; DTA's
    /// `immediate` flag maps here).
    pub solicited: bool,
    /// Partition key (default partition 0xFFFF).
    pub pkey: u16,
    /// Destination queue pair number (24 bits).
    pub dest_qp: u32,
    /// Whether an ACK is requested for this packet.
    pub ack_req: bool,
    /// Packet sequence number (24 bits).
    pub psn: u32,
}

impl Bth {
    /// Encoded size.
    pub const LEN: usize = 12;

    /// Serialize.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.opcode as u8);
        // se(1) | migreq(1) | padcnt(2) | tver(4): only SE used here.
        buf.put_u8(if self.solicited { 0x80 } else { 0x00 });
        buf.put_u16(self.pkey);
        buf.put_u32(self.dest_qp & 0x00FF_FFFF); // rsvd byte + 24-bit QPN
        let ar = if self.ack_req { 0x8000_0000u32 } else { 0 };
        buf.put_u32(ar | (self.psn & 0x00FF_FFFF));
    }

    /// Deserialize.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let opcode = Opcode::from_u8(buf.get_u8())?;
        let flags = buf.get_u8();
        let pkey = buf.get_u16();
        let dest_qp = buf.get_u32() & 0x00FF_FFFF;
        let last = buf.get_u32();
        Ok(Bth {
            opcode,
            solicited: flags & 0x80 != 0,
            pkey,
            dest_qp,
            ack_req: last & 0x8000_0000 != 0,
            psn: last & 0x00FF_FFFF,
        })
    }
}

/// RDMA Extended Transport Header — 16 bytes, carried by WRITE packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reth {
    /// Remote virtual address.
    pub va: u64,
    /// Remote key of the target memory region.
    pub rkey: u32,
    /// DMA length in bytes.
    pub dma_len: u32,
}

impl Reth {
    /// Encoded size.
    pub const LEN: usize = 16;

    /// Serialize.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.va);
        buf.put_u32(self.rkey);
        buf.put_u32(self.dma_len);
    }

    /// Deserialize.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        Ok(Reth { va: buf.get_u64(), rkey: buf.get_u32(), dma_len: buf.get_u32() })
    }
}

/// Atomic Extended Transport Header — 28 bytes, carried by FETCH_ADD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicEth {
    /// Remote virtual address (must be 8-byte aligned).
    pub va: u64,
    /// Remote key.
    pub rkey: u32,
    /// Swap (unused by FETCH_ADD) or add data.
    pub swap_add: u64,
    /// Compare data (unused by FETCH_ADD).
    pub compare: u64,
}

impl AtomicEth {
    /// Encoded size.
    pub const LEN: usize = 28;

    /// Serialize.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.va);
        buf.put_u32(self.rkey);
        buf.put_u64(self.swap_add);
        buf.put_u64(self.compare);
    }

    /// Deserialize.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        Ok(AtomicEth {
            va: buf.get_u64(),
            rkey: buf.get_u32(),
            swap_add: buf.get_u64(),
            compare: buf.get_u64(),
        })
    }
}

/// Immediate data header — 4 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmDt(pub u32);

impl ImmDt {
    /// Encoded size.
    pub const LEN: usize = 4;
}

/// A complete RoCEv2 transport PDU (everything inside the UDP payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RocePacket {
    /// Base transport header.
    pub bth: Bth,
    /// RETH when the opcode requires one.
    pub reth: Option<Reth>,
    /// AtomicETH when the opcode requires one.
    pub atomic: Option<AtomicEth>,
    /// Immediate data when the opcode carries it.
    pub imm: Option<ImmDt>,
    /// Payload (the written bytes for WRITE, message for SEND, empty for
    /// FETCH_ADD requests).
    pub payload: Bytes,
}

impl RocePacket {
    /// A WRITE Only packet.
    pub fn write(dest_qp: u32, psn: u32, reth: Reth, payload: Bytes) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::WriteOnly,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: true,
                psn,
            },
            reth: Some(reth),
            atomic: None,
            imm: None,
            payload,
        }
    }

    /// A WRITE Only with Immediate packet (consumes a receive WQE and raises
    /// a completion at the responder — DTA's push-notification path).
    pub fn write_imm(dest_qp: u32, psn: u32, reth: Reth, imm: u32, payload: Bytes) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::WriteOnlyImm,
                solicited: true,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: true,
                psn,
            },
            reth: Some(reth),
            atomic: None,
            imm: Some(ImmDt(imm)),
            payload,
        }
    }

    /// A FETCH_ADD packet.
    pub fn fetch_add(dest_qp: u32, psn: u32, va: u64, rkey: u32, add: u64) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::FetchAdd,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: true,
                psn,
            },
            reth: None,
            atomic: Some(AtomicEth { va, rkey, swap_add: add, compare: 0 }),
            imm: None,
            payload: Bytes::new(),
        }
    }

    /// A READ Request for the bytes named by `reth` (the rebalance drain
    /// path: the translator reads a source collector's region slice before
    /// replaying it to the new owner).
    pub fn read_request(dest_qp: u32, psn: u32, reth: Reth) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::ReadRequest,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: true,
                psn,
            },
            reth: Some(reth),
            atomic: None,
            imm: None,
            payload: Bytes::new(),
        }
    }

    /// A single-packet READ Response carrying the requested bytes. Echoes
    /// the request PSN so the requester can match it to its outstanding
    /// READ (and treat it as a cumulative ACK up to that PSN).
    pub fn read_response(dest_qp: u32, psn: u32, payload: Bytes) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::ReadResponseOnly,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: false,
                psn,
            },
            reth: None,
            atomic: None,
            imm: None,
            payload,
        }
    }

    /// A SEND Only packet (used by CM metadata advertisement).
    pub fn send(dest_qp: u32, psn: u32, payload: Bytes) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::SendOnly,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: true,
                psn,
            },
            reth: None,
            atomic: None,
            imm: None,
            payload,
        }
    }

    /// A NAK reporting `expected_psn` (simulation convention: a NAK is an
    /// ACK-opcode packet with the solicited bit set, standing in for the
    /// AETH syndrome field).
    pub fn nak(dest_qp: u32, expected_psn: u32) -> Self {
        let mut p = Self::ack(dest_qp, expected_psn);
        p.bth.solicited = true;
        p
    }

    /// Whether this packet is a NAK (see [`RocePacket::nak`]).
    pub fn is_nak(&self) -> bool {
        self.bth.opcode == Opcode::Ack && self.bth.solicited
    }

    /// An ACK for `psn`.
    pub fn ack(dest_qp: u32, psn: u32) -> Self {
        RocePacket {
            bth: Bth {
                opcode: Opcode::Ack,
                solicited: false,
                pkey: 0xFFFF,
                dest_qp,
                ack_req: false,
                psn,
            },
            reth: None,
            atomic: None,
            imm: None,
            payload: Bytes::new(),
        }
    }

    /// Transport PDU size (headers + payload + ICRC), i.e. the UDP payload
    /// length.
    pub fn pdu_len(&self) -> usize {
        let mut n = Bth::LEN;
        if self.reth.is_some() {
            n += Reth::LEN;
        }
        if self.atomic.is_some() {
            n += AtomicEth::LEN;
        }
        if self.imm.is_some() {
            n += ImmDt::LEN;
        }
        n + self.payload.len() + 4 // ICRC
    }

    /// Full wire size including Eth/IP/UDP framing.
    pub fn wire_len(&self) -> usize {
        dta_core::framing::UDP_FRAME_OVERHEAD + self.pdu_len()
    }

    /// Serialize including trailing ICRC.
    pub fn encode(&self) -> Bytes {
        debug_assert_eq!(self.reth.is_some(), self.bth.opcode.has_reth());
        debug_assert_eq!(self.atomic.is_some(), self.bth.opcode.has_atomic_eth());
        debug_assert_eq!(self.imm.is_some(), self.bth.opcode.has_imm());
        let mut buf = BytesMut::with_capacity(self.pdu_len());
        self.bth.encode(&mut buf);
        if let Some(r) = &self.reth {
            r.encode(&mut buf);
        }
        if let Some(a) = &self.atomic {
            a.encode(&mut buf);
        }
        if let Some(ImmDt(v)) = self.imm {
            buf.put_u32(v);
        }
        buf.put_slice(&self.payload);
        let crc = icrc32(&buf);
        buf.put_u32(crc);
        buf.freeze()
    }

    /// Deserialize and verify the ICRC.
    pub fn decode(buf: Bytes) -> Result<Self, ReportError> {
        if buf.len() < Bth::LEN + 4 {
            return Err(ReportError::Truncated { need: Bth::LEN + 4, have: buf.len() });
        }
        let body = buf.slice(0..buf.len() - 4);
        let wire_crc = u32::from_be_bytes(buf[buf.len() - 4..].try_into().unwrap());
        if icrc32(&body) != wire_crc {
            return Err(ReportError::BadVersion(0)); // ICRC failure
        }
        let mut cur = body.clone();
        let bth = Bth::decode(&mut cur)?;
        let reth = if bth.opcode.has_reth() { Some(Reth::decode(&mut cur)?) } else { None };
        let atomic = if bth.opcode.has_atomic_eth() {
            Some(AtomicEth::decode(&mut cur)?)
        } else {
            None
        };
        let imm = if bth.opcode.has_imm() {
            if cur.remaining() < 4 {
                return Err(ReportError::Truncated { need: 4, have: cur.remaining() });
            }
            Some(ImmDt(cur.get_u32()))
        } else {
            None
        };
        let payload = cur.copy_to_bytes(cur.remaining());
        Ok(RocePacket { bth, reth, atomic, imm, payload })
    }
}

/// Minimal ICRC implementation (CRC32/IEEE over the transport PDU). The real
/// ICRC masks mutable fields; the simulation's PDUs are immutable in flight
/// so a plain CRC provides the same integrity property.
mod dta_hash_icrc {
    use dta_hash::{Crc32, CrcParams};
    use std::sync::OnceLock;

    /// CRC32 (IEEE, reflected) over `data`, via the shared slice-by-8
    /// engine — this runs once per encoded/decoded packet, so it must not
    /// be the bit-serial walk.
    pub fn icrc32(data: &[u8]) -> u32 {
        static ENGINE: OnceLock<Crc32> = OnceLock::new();
        ENGINE.get_or_init(|| Crc32::new(CrcParams::IEEE)).compute(data)
    }

    #[cfg(test)]
    mod tests {
        /// The engine-backed ICRC must equal the original bit-serial
        /// definition (wire-format stability).
        #[test]
        fn matches_bit_serial_reference() {
            fn reference(data: &[u8]) -> u32 {
                let mut crc = 0xFFFF_FFFFu32;
                for &b in data {
                    crc ^= b as u32;
                    for _ in 0..8 {
                        let mask = (crc & 1).wrapping_neg();
                        crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                    }
                }
                !crc
            }
            for len in [0usize, 1, 7, 8, 13, 64, 300] {
                let data: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
                assert_eq!(super::icrc32(&data), reference(&data), "len {len}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_roundtrip() {
        let p = RocePacket::write(
            0x1234,
            77,
            Reth { va: 0xDEAD_BEEF_0000, rkey: 42, dma_len: 8 },
            Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8]),
        );
        let wire = p.encode();
        assert_eq!(wire.len(), p.pdu_len());
        assert_eq!(RocePacket::decode(wire).unwrap(), p);
    }

    #[test]
    fn fetch_add_roundtrip() {
        let p = RocePacket::fetch_add(9, 1, 0x1000, 7, 100);
        assert_eq!(RocePacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn send_roundtrip() {
        let p = RocePacket::send(3, 0, Bytes::from_static(b"metadata"));
        assert_eq!(RocePacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn write_imm_roundtrip_preserves_solicited() {
        let p = RocePacket::write_imm(
            1,
            2,
            Reth { va: 0, rkey: 1, dma_len: 4 },
            0xCAFE,
            Bytes::from_static(&[0; 4]),
        );
        let got = RocePacket::decode(p.encode()).unwrap();
        assert!(got.bth.solicited);
        assert_eq!(got.imm, Some(ImmDt(0xCAFE)));
    }

    #[test]
    fn corrupt_packet_fails_icrc() {
        let p = RocePacket::write(
            1,
            1,
            Reth { va: 0, rkey: 1, dma_len: 4 },
            Bytes::from_static(&[9; 4]),
        );
        let mut wire = BytesMut::from(&p.encode()[..]);
        wire[14] ^= 0xFF;
        assert!(RocePacket::decode(wire.freeze()).is_err());
    }

    #[test]
    fn psn_is_24_bits() {
        let p = RocePacket::ack(1, 0x01FF_FFFF);
        let got = RocePacket::decode(p.encode()).unwrap();
        assert_eq!(got.bth.psn, 0x00FF_FFFF);
    }

    #[test]
    fn write_wire_overhead_matches_model() {
        // 4B payload WRITE: 42 (Eth/IP/UDP) + 12 (BTH) + 16 (RETH) + 4 + 4
        // (ICRC) = 78 bytes. This constant feeds the NIC line-rate model.
        let p = RocePacket::write(
            1,
            0,
            Reth { va: 0, rkey: 0, dma_len: 4 },
            Bytes::from_static(&[0; 4]),
        );
        assert_eq!(p.wire_len(), 78);
    }

    #[test]
    fn ack_needs_no_ack() {
        assert!(!Opcode::Ack.needs_ack());
        assert!(Opcode::WriteOnly.needs_ack());
        assert!(Opcode::FetchAdd.needs_ack());
    }

    #[test]
    fn read_request_roundtrip() {
        let p = RocePacket::read_request(
            0x77,
            19,
            Reth { va: 0x1_0000_0040, rkey: 0x10, dma_len: 8 },
        );
        assert!(p.bth.opcode.has_reth());
        assert!(!p.bth.opcode.needs_ack(), "the READ response is the ack");
        assert_eq!(RocePacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn read_response_roundtrip_carries_payload() {
        let p = RocePacket::read_response(0x78, 19, Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert!(!p.bth.opcode.needs_ack());
        let got = RocePacket::decode(p.encode()).unwrap();
        assert_eq!(got, p);
        assert_eq!(&got.payload[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }
}

//! Reliable-connection queue pairs.
//!
//! RoCE RC transport requires every packet arriving at a QP to carry the
//! *expected* packet sequence number. This is the property that makes
//! "several switches sharing the same queue pair" impractical — "RDMA
//! imposes the assumption that every packet received at the collector has a
//! strictly sequential ID, which is impractical for a distributed network of
//! switches" (§3). Centralizing RDMA generation in the translator gives a
//! single PSN domain per collector QP; the translator keeps "SRAM storage
//! for the queue pair packet sequence numbers" (§5.2).

/// QP lifecycle states (subset of the IB state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Created, not yet connected.
    Init,
    /// Ready to receive.
    Rtr,
    /// Ready to send (fully connected).
    Rts,
    /// Error: a fatal sequence/protection violation occurred.
    Error,
}

/// QP-level receive errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpError {
    /// Packet PSN is ahead of expected: a gap means loss; responder NAKs.
    OutOfOrder {
        /// Expected PSN.
        expected: u32,
        /// Received PSN.
        got: u32,
    },
    /// Packet PSN already consumed (duplicate); silently dropped.
    Duplicate(u32),
    /// QP not in a receiving state.
    BadState(QpState),
}

const PSN_MASK: u32 = 0x00FF_FFFF;
/// Half the PSN space; distinguishes "old duplicate" from "future" PSNs.
const PSN_HALF: u32 = 0x0080_0000;

/// One side of a reliable connection.
#[derive(Debug, Clone)]
pub struct QueuePair {
    /// Local QP number.
    pub qpn: u32,
    /// Remote QP number (valid from RTR).
    pub dest_qpn: u32,
    /// State.
    pub state: QpState,
    /// Next PSN to use when sending.
    send_psn: u32,
    /// Next PSN expected when receiving.
    expect_psn: u32,
    /// Count of NAKs generated.
    pub naks: u64,
    /// Count of duplicates dropped.
    pub duplicates: u64,
    /// Count of packets accepted in order.
    pub accepted: u64,
    /// ACK-eligible packets received since this QP last emitted an ACK
    /// (responder-side ACK coalescing state — per-QP, as on real HCAs).
    unacked: u32,
}

impl QueuePair {
    /// Create a QP in the INIT state.
    pub fn new(qpn: u32) -> Self {
        QueuePair {
            qpn,
            dest_qpn: 0,
            state: QpState::Init,
            send_psn: 0,
            expect_psn: 0,
            naks: 0,
            duplicates: 0,
            accepted: 0,
            unacked: 0,
        }
    }

    /// Record one ACK-eligible packet and decide whether an ACK is due
    /// now: every `coalesce`-th eligible packet, or immediately for
    /// solicited packets (which also flush the pending count).
    pub fn ack_due(&mut self, coalesce: u32, solicited: bool) -> bool {
        self.unacked += 1;
        if solicited || self.unacked >= coalesce.max(1) {
            self.unacked = 0;
            true
        } else {
            false
        }
    }

    /// Transition INIT -> RTR with the remote QPN and its starting PSN.
    pub fn to_rtr(&mut self, dest_qpn: u32, remote_start_psn: u32) {
        assert_eq!(self.state, QpState::Init, "RTR requires INIT");
        self.dest_qpn = dest_qpn;
        self.expect_psn = remote_start_psn & PSN_MASK;
        self.state = QpState::Rtr;
    }

    /// Transition RTR -> RTS with our starting PSN.
    pub fn to_rts(&mut self, local_start_psn: u32) {
        assert_eq!(self.state, QpState::Rtr, "RTS requires RTR");
        self.send_psn = local_start_psn & PSN_MASK;
        self.state = QpState::Rts;
    }

    /// Allocate the PSN for the next outgoing packet.
    pub fn next_send_psn(&mut self) -> u32 {
        let psn = self.send_psn;
        self.send_psn = (self.send_psn + 1) & PSN_MASK;
        psn
    }

    /// PSN the receiver currently expects.
    pub fn expected_psn(&self) -> u32 {
        self.expect_psn
    }

    /// Validate an inbound packet's PSN. On success the expected PSN
    /// advances.
    pub fn receive(&mut self, psn: u32) -> Result<(), QpError> {
        if !matches!(self.state, QpState::Rtr | QpState::Rts) {
            return Err(QpError::BadState(self.state));
        }
        let psn = psn & PSN_MASK;
        if psn == self.expect_psn {
            self.expect_psn = (self.expect_psn + 1) & PSN_MASK;
            self.accepted += 1;
            return Ok(());
        }
        // Window arithmetic in the 24-bit circular space.
        let delta = psn.wrapping_sub(self.expect_psn) & PSN_MASK;
        if delta < PSN_HALF {
            self.naks += 1;
            Err(QpError::OutOfOrder { expected: self.expect_psn, got: psn })
        } else {
            self.duplicates += 1;
            Err(QpError::Duplicate(psn))
        }
    }

    /// Resynchronize the receive side to `psn` (the translator's "RDMA
    /// queue-pair resynchronization" path after a loss event, §5.2).
    pub fn resync(&mut self, psn: u32) {
        self.expect_psn = psn & PSN_MASK;
    }

    /// Resynchronize the send side to `psn` — used by the requester when a
    /// NAK reports the responder's expected PSN. DTA is best-effort: the
    /// lost operations are not replayed, but the PSN stream realigns so the
    /// connection keeps flowing.
    pub fn resync_send(&mut self, psn: u32) {
        self.send_psn = psn & PSN_MASK;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_pair() -> (QueuePair, QueuePair) {
        let mut a = QueuePair::new(1);
        let mut b = QueuePair::new(2);
        a.to_rtr(2, 100);
        a.to_rts(50);
        b.to_rtr(1, 50);
        b.to_rts(100);
        (a, b)
    }

    #[test]
    fn in_order_stream_accepted() {
        let (mut a, mut b) = connected_pair();
        for _ in 0..100 {
            let psn = a.next_send_psn();
            b.receive(psn).unwrap();
        }
        assert_eq!(b.accepted, 100);
        assert_eq!(b.naks + b.duplicates, 0);
    }

    #[test]
    fn gap_generates_nak() {
        let (mut a, mut b) = connected_pair();
        let _lost = a.next_send_psn();
        let next = a.next_send_psn();
        assert!(matches!(
            b.receive(next),
            Err(QpError::OutOfOrder { expected: 50, got: 51 })
        ));
        assert_eq!(b.naks, 1);
    }

    #[test]
    fn duplicate_detected() {
        let (mut a, mut b) = connected_pair();
        let psn = a.next_send_psn();
        b.receive(psn).unwrap();
        assert!(matches!(b.receive(psn), Err(QpError::Duplicate(50))));
        assert_eq!(b.duplicates, 1);
    }

    #[test]
    fn resync_recovers_after_loss() {
        let (mut a, mut b) = connected_pair();
        let _lost = a.next_send_psn();
        let p2 = a.next_send_psn();
        assert!(b.receive(p2).is_err());
        // Translator resyncs the expected PSN past the hole.
        b.resync(p2);
        assert!(b.receive(p2).is_ok());
        let p3 = a.next_send_psn();
        assert!(b.receive(p3).is_ok());
    }

    #[test]
    fn psn_wraps_at_24_bits() {
        let mut a = QueuePair::new(1);
        a.to_rtr(2, 0);
        a.to_rts(PSN_MASK); // last PSN in the space
        assert_eq!(a.next_send_psn(), PSN_MASK);
        assert_eq!(a.next_send_psn(), 0);
    }

    #[test]
    fn receive_in_init_rejected() {
        let mut q = QueuePair::new(1);
        assert!(matches!(q.receive(0), Err(QpError::BadState(QpState::Init))));
    }

    #[test]
    #[should_panic]
    fn rts_requires_rtr() {
        let mut q = QueuePair::new(1);
        q.to_rts(0);
    }

    #[test]
    fn wraparound_duplicate_classified_correctly() {
        let mut b = QueuePair::new(2);
        b.to_rtr(1, 5);
        // PSN 4 is "one behind": a duplicate, not a future gap.
        assert!(matches!(b.receive(4), Err(QpError::Duplicate(4))));
    }
}

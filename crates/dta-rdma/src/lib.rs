//! Simulated RoCEv2 (RDMA over Converged Ethernet v2) substrate.
//!
//! DTA's translator converts telemetry reports into standard RDMA verbs and
//! the collector ingests them with a commodity RDMA NIC (BlueField-2 in the
//! paper's testbed). No RDMA hardware is present here, so this crate
//! implements the relevant slice of the InfiniBand transport in software:
//!
//! * [`packet`] — real RoCEv2 wire format: BTH, RETH, AtomicETH, ImmDt,
//!   ICRC, carried in UDP port 4791.
//! * [`verbs`] — the verb-level operations DTA uses: `RDMA WRITE`,
//!   `FETCH_ADD`, `SEND` (with immediate).
//! * [`mr`] — registered memory regions with rkey validation, bounds checks,
//!   and memory-instruction accounting (the Figure 8 metric).
//! * [`qp`] — reliable-connection queue pairs with packet sequence numbers:
//!   in-order delivery enforcement, duplicate drop, NAK generation. The
//!   strict-PSN requirement is exactly why multiple switches cannot share a
//!   QP and why the translator exists (§3, "Meeting goal #1").
//! * [`nic`] — an ingress engine executing RoCE packets against registered
//!   memory plus the performance model (message rate + line rate) that
//!   bounds DTA's collection throughput (§6.7: "Our base performance is
//!   bounded by the RDMA message rate of the NIC").
//! * [`cm`] — a minimal RDMA_CM-style handshake used by the translator
//!   control plane to set up QPs and learn rkeys/addresses.

pub mod cm;
pub mod mr;
pub mod nic;
pub mod packet;
pub mod qp;
pub mod segment;
pub mod verbs;

pub use cm::{CmEvent, CmManager, ConnectionParams};
pub use mr::{MemoryRegion, MemoryRegistry, MrError, MrStats, SnapshotBuf};
pub use nic::{NicConfig, NicPerfModel, RdmaNic, RxOutcome};
pub use packet::{AtomicEth, Bth, ImmDt, Opcode, Reth, RocePacket, ROCE_UDP_PORT};
pub use qp::{QpError, QpState, QueuePair};
pub use segment::{segment_write, MTU_1024};
pub use verbs::{RdmaOp, WorkCompletion};

//! Transport-level property tests: PSN discipline, codec roundtrips, and
//! requester/responder stream behaviour under loss and duplication.

use bytes::Bytes;
use dta_rdma::mr::{MemoryRegion, MrAccess};
use dta_rdma::nic::{NicConfig, RdmaNic, RxOutcome};
use dta_rdma::packet::{Reth, RocePacket};
use dta_rdma::qp::QueuePair;
use dta_rdma::verbs::RdmaOp;
use proptest::prelude::*;

fn connected_nic() -> (RdmaNic, QueuePair) {
    let mut nic = RdmaNic::new(NicConfig::bluefield2());
    nic.memory.register(MemoryRegion::new(0, 1 << 16, 0xCC, MrAccess::ATOMIC));
    let mut responder = QueuePair::new(0x200);
    responder.to_rtr(0x100, 0);
    responder.to_rts(0);
    nic.add_qp(responder);
    let mut requester = QueuePair::new(0x100);
    requester.to_rtr(0x200, 0);
    requester.to_rts(0);
    (nic, requester)
}

proptest! {
    /// Any subset of a PSN stream delivered in order executes a prefix-
    /// consistent set: once a gap appears, everything after is NAKed until
    /// resync.
    #[test]
    fn psn_stream_with_losses_never_executes_out_of_order(
        deliver in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let (mut nic, mut requester) = connected_nic();
        let mut resynced = true;
        let mut executed = 0u64;
        for (i, keep) in deliver.iter().enumerate() {
            let op = RdmaOp::Write {
                rkey: 0xCC,
                va: (i as u64 % 1024) * 8,
                data: Bytes::from(vec![i as u8; 8]),
            };
            let pkt = op.into_packet(&mut requester);
            if !keep {
                resynced = false; // dropped in flight
                continue;
            }
            match nic.ingress(&pkt) {
                RxOutcome::Executed(_) => {
                    prop_assert!(resynced, "executed across an unrepaired gap");
                    executed += 1;
                }
                RxOutcome::Nak(nak) => {
                    // Requester resynchronizes to the responder's expected
                    // PSN; subsequent packets flow again.
                    requester.resync_send(nak.bth.psn);
                    resynced = true;
                }
                other => prop_assert!(false, "unexpected outcome {:?}", other),
            }
        }
        prop_assert_eq!(nic.stats.executed, executed);
    }

    /// Replaying any delivered packet is always detected as a duplicate.
    #[test]
    fn duplicates_always_detected(count in 1usize..50, replay_at in any::<prop::sample::Index>()) {
        let (mut nic, mut requester) = connected_nic();
        let mut packets = Vec::new();
        for i in 0..count {
            let op = RdmaOp::Write { rkey: 0xCC, va: 0, data: Bytes::from(vec![i as u8; 4]) };
            let pkt = op.into_packet(&mut requester);
            prop_assert!(matches!(nic.ingress(&pkt), RxOutcome::Executed(_)));
            packets.push(pkt);
        }
        let replay = &packets[replay_at.index(packets.len())];
        prop_assert!(matches!(nic.ingress(replay), RxOutcome::DuplicateDropped));
    }

    /// FETCH_ADD streams accumulate exactly, regardless of addend pattern.
    #[test]
    fn fetch_add_stream_sums_exactly(
        addends in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let (mut nic, mut requester) = connected_nic();
        for a in &addends {
            let pkt = RdmaOp::FetchAdd { rkey: 0xCC, va: 64, add: *a }.into_packet(&mut requester);
            prop_assert!(matches!(nic.ingress(&pkt), RxOutcome::Executed(_)));
        }
        let mem = nic.memory.lookup(0xCC).unwrap();
        let got = u64::from_be_bytes(mem.peek(64, 8).unwrap().try_into().unwrap());
        prop_assert_eq!(got, addends.iter().sum::<u64>());
    }

    /// Writes within bounds always land byte-exact; any write touching
    /// beyond the region is rejected without side effects.
    #[test]
    fn bounds_are_exact(va in 0u64..(1 << 16) + 64, len in 1usize..64) {
        let (mut nic, mut requester) = connected_nic();
        let data = vec![0xEE; len];
        let pkt = RocePacket::write(
            0x200,
            requester.next_send_psn(),
            Reth { va, rkey: 0xCC, dma_len: len as u32 },
            Bytes::from(data.clone()),
        );
        let in_bounds = va + len as u64 <= (1 << 16);
        match nic.ingress(&pkt) {
            RxOutcome::Executed(_) => {
                prop_assert!(in_bounds);
                let mem = nic.memory.lookup(0xCC).unwrap();
                prop_assert_eq!(mem.peek(va, len).unwrap(), data);
            }
            RxOutcome::Error(_) => prop_assert!(!in_bounds),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}

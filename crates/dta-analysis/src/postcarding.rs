//! Postcarding error bounds — equations (5)–(8), Appendix A.6.
//!
//! The structure mirrors Key-Write, with the per-slot checksum-collision
//! probability `2^{-b}` replaced by the probability that an overwritten
//! *chunk* still decodes as valid information for the queried key:
//! `p = ((|V| + 1) · 2^{-b})^B` — every one of the `B` hop slots must
//! decode to some value in `V ∪ {⊔}`.

use crate::choose;

/// `p`: probability an overwritten chunk holds valid-looking information.
pub fn pc_valid_info_prob(values: u64, b: u32, hops: u32) -> f64 {
    let per_slot = ((values + 1) as f64) * 2f64.powi(-(b as i32));
    per_slot.min(1.0).powi(hops as i32)
}

/// Probability of failing to report a collected flow (empty return): the
/// sum of equations (5), (6), (7).
pub fn pc_empty_return_bound(n: u32, b: u32, alpha: f64, values: u64, hops: u32) -> f64 {
    assert!(n >= 1 && b >= 1 && hops >= 1);
    let nf = n as f64;
    let p_over = 1.0 - (-alpha * nf).exp();
    let p = pc_valid_info_prob(values, b, hops);

    // (5): all chunks overwritten, none decodes as valid.
    let t5 = p_over.powi(n as i32) * (1.0 - p).powi(n as i32);
    // (6): all overwritten, ≥2 decode valid but disagree.
    let t6 = p_over.powi(n as i32)
        * (1.0 - (1.0 - p).powi(n as i32) - nf * p * (1.0 - p).powi(n as i32 - 1));
    // (7): j of N overwritten and at least one decodes valid.
    let mut t7 = 0.0;
    for j in 1..n {
        let jf = j as f64;
        t7 += choose(n as u64, j as u64)
            * p_over.powf(jf)
            * (-alpha * nf * (nf - jf)).exp()
            * (1.0 - (1.0 - p).powf(jf));
    }
    (t5 + t6 + t7).clamp(0.0, 1.0)
}

/// Probability of reporting a wrong path: equation (8).
pub fn pc_wrong_return_bound(n: u32, b: u32, alpha: f64, values: u64, hops: u32) -> f64 {
    let nf = n as f64;
    let p_over = 1.0 - (-alpha * nf).exp();
    (p_over.powi(n as i32) * nf * pc_valid_info_prob(values, b, hops)).clamp(0.0, 1.0)
}

/// The paper's §4 comparison: using plain Key-Write per postcard spends
/// `2b` bits per slot (checksum + value) and has per-hop wrong-output
/// probability from equation (4); across `B` hops the union bound gives
/// `B` times that. Returns `(kw_wrong_any_hop, postcarding_wrong)` for the
/// same `b`.
pub fn kw_vs_postcarding_wrong_output(
    n: u32,
    b: u32,
    alpha: f64,
    values: u64,
    hops: u32,
) -> (f64, f64) {
    let kw_per_hop = crate::keywrite::kw_wrong_return_bound(n, b, alpha);
    (kw_per_hop * hops as f64, pc_wrong_return_bound(n, b, alpha, values, hops))
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: u64 = 1 << 18; // "a large data center (|V| = 2^18 switches)"

    #[test]
    fn paper_numeric_example() {
        // Appendix A.6: B=5, N=2, b=32, α=0.1 -> empty ≤ 3.3%,
        // wrong < 1e-22.
        let empty = pc_empty_return_bound(2, 32, 0.1, V, 5);
        assert!(empty < 0.033, "empty {empty}");
        assert!(empty > 0.030);
        let wrong = pc_wrong_return_bound(2, 32, 0.1, V, 5);
        assert!(wrong < 1e-22, "wrong {wrong}");
    }

    #[test]
    fn postcarding_beats_kw_on_wrong_output() {
        // "using KW for postcarding gives a false output probability of
        // ≈ 8e-11 ... using twice the bit-width per entry!"
        let (kw, pc) = kw_vs_postcarding_wrong_output(2, 32, 0.1, V, 5);
        assert!((kw - 8e-11).abs() < 2e-11, "KW-any-hop {kw}");
        assert!(pc < 1e-22);
        assert!(pc < kw / 1e10, "postcarding must win by orders of magnitude");
    }

    #[test]
    fn valid_info_prob_decays_with_hops() {
        let p1 = pc_valid_info_prob(V, 32, 1);
        let p5 = pc_valid_info_prob(V, 32, 5);
        assert!((p5 - p1.powi(5)).abs() < 1e-30);
        assert!(p5 < p1);
    }

    #[test]
    fn narrow_slots_raise_error() {
        let wide = pc_wrong_return_bound(2, 32, 0.5, V, 5);
        let narrow = pc_wrong_return_bound(2, 20, 0.5, V, 5);
        assert!(narrow > wide);
    }

    #[test]
    fn bounds_are_probabilities() {
        for n in 1..=4 {
            for alpha in [0.0, 0.1, 1.0, 4.0] {
                for b in [16, 24, 32] {
                    let e = pc_empty_return_bound(n, b, alpha, V, 5);
                    let w = pc_wrong_return_bound(n, b, alpha, V, 5);
                    assert!((0.0..=1.0).contains(&e));
                    assert!((0.0..=1.0).contains(&w));
                }
            }
        }
    }

    #[test]
    fn saturated_per_slot_probability_clamps() {
        // |V|+1 >= 2^b: every slot always "decodes"; p must clamp at 1.
        let p = pc_valid_info_prob(1 << 20, 8, 3);
        assert_eq!(p, 1.0);
    }
}

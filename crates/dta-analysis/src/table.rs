//! Experiment table emission.
//!
//! The `repro` harness prints every reproduced table/figure as rows; this
//! module renders them as aligned markdown (for EXPERIMENTS.md) and CSV
//! (for plotting).

/// A simple column-oriented table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn core::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("### {}\n\n", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {:<w$} |", c, w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = self.headers.iter().map(esc).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a rate in engineering units (e.g., `452.5M`, `1.07B`).
pub fn fmt_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Format a probability/fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "rate"]);
        t.row(&["kw".into(), "110M".into()]);
        t.row(&["append".into(), "1.07B".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| kw"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["hello, world".into()]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(1.07e9), "1.07B");
        assert_eq!(fmt_rate(452.5e6), "452.5M");
        assert_eq!(fmt_rate(950e3), "950.0K");
        assert_eq!(fmt_rate(42.0), "42.0");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.033), "3.3%");
    }
}

//! Key-Write error bounds — equations (1)–(4), Appendix A.5.
//!
//! Parameters: redundancy `N`, checksum width `b` bits, and load `α` — the
//! number of distinct keys written after the queried key divided by the
//! number of slots `M`. The Poisson approximation `(1 − e^{−αN})` is the
//! probability that one particular slot was overwritten.

use crate::choose;

/// Probability that a query returns nothing (an *empty return*): the sum of
/// terms (1), (2), and (3) of the paper.
pub fn kw_empty_return_bound(n: u32, b: u32, alpha: f64) -> f64 {
    assert!(n >= 1 && b >= 1 && alpha >= 0.0);
    let nf = n as f64;
    let p_over = 1.0 - (-alpha * nf).exp(); // one slot overwritten
    let q = 2f64.powi(-(b as i32)); // checksum collision chance

    // (1): all N slots overwritten, none carries our checksum.
    let t1 = p_over.powi(n as i32) * (1.0 - q).powi(n as i32);

    // (2): all N overwritten, and ≥2 colliding checksums disagree.
    let t2 = p_over.powi(n as i32)
        * (1.0 - (1.0 - q).powi(n as i32) - nf * q * (1.0 - q).powi(n as i32 - 1));

    // (3): j of N overwritten (1 ≤ j < N), some overwriter matches our
    // checksum (with a potentially different value).
    let mut t3 = 0.0;
    for j in 1..n {
        let jf = j as f64;
        t3 += choose(n as u64, j as u64)
            * p_over.powf(jf)
            * (-alpha * nf * (nf - jf)).exp()
            * (1.0 - (1.0 - q).powf(jf));
    }
    t1 + t2 + t3
}

/// Probability that a query returns an incorrect value (a *return error*):
/// equation (4).
pub fn kw_wrong_return_bound(n: u32, b: u32, alpha: f64) -> f64 {
    assert!(n >= 1 && b >= 1 && alpha >= 0.0);
    let nf = n as f64;
    let p_over = 1.0 - (-alpha * nf).exp();
    p_over.powi(n as i32) * nf * 2f64.powi(-(b as i32))
}

/// The probability that *all* N copies are overwritten — the dominant term,
/// useful as the success-rate model behind Figures 12 and 13.
pub fn kw_all_overwritten(n: u32, alpha: f64) -> f64 {
    (1.0 - (-alpha * n as f64).exp()).powi(n as i32)
}

/// Expected query success rate at load factor `alpha` with redundancy `n`
/// (the Figure 12 y-axis: 1 − empty-return probability).
pub fn kw_success_rate(n: u32, b: u32, alpha: f64) -> f64 {
    (1.0 - kw_empty_return_bound(n, b, alpha)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numeric_example_n2() {
        // §4: "if N = 2, b = 32, α = 0.1, the chance of not providing the
        // output is less than 3.3%, while the probability of wrong output is
        // bounded by 1.6e-11".
        let empty = kw_empty_return_bound(2, 32, 0.1);
        assert!(empty < 0.033, "empty bound {empty}");
        assert!(empty > 0.030, "empty bound suspiciously small: {empty}");
        let wrong = kw_wrong_return_bound(2, 32, 0.1);
        assert!(wrong < 1.6e-11, "wrong bound {wrong}");
        assert!(wrong > 1.0e-11);
    }

    #[test]
    fn paper_numeric_example_n1_and_n4() {
        // "significantly lower than with N = 1 (9.5%) and higher than for
        // N = 4 (1.2%)".
        let n1 = kw_empty_return_bound(1, 32, 0.1);
        assert!((n1 - 0.095).abs() < 0.002, "N=1 bound {n1}");
        let n4 = kw_empty_return_bound(4, 32, 0.1);
        assert!((n4 - 0.012).abs() < 0.002, "N=4 bound {n4}");
    }

    #[test]
    fn wider_checksum_reduces_wrong_returns() {
        let w8 = kw_wrong_return_bound(2, 8, 0.5);
        let w16 = kw_wrong_return_bound(2, 16, 0.5);
        let w32 = kw_wrong_return_bound(2, 32, 0.5);
        assert!(w8 > w16 && w16 > w32);
        assert!((w8 / w16 - 256.0).abs() < 1.0);
    }

    #[test]
    fn success_decreases_with_load() {
        let mut prev = 1.0;
        for alpha in [0.05, 0.1, 0.2, 0.4, 0.8, 1.0] {
            let s = kw_success_rate(2, 32, alpha);
            assert!(s <= prev, "success must fall with load");
            prev = s;
        }
    }

    #[test]
    fn redundancy_crossover_exists() {
        // Figure 12: at low load larger N wins; at very high load N = 1
        // degrades more slowly than N = 8 (consensus is harder when all
        // slots churn). The *all-overwritten* term shows the crossover.
        let low = 0.05;
        let high = 3.0;
        assert!(kw_all_overwritten(8, low) < kw_all_overwritten(1, low));
        assert!(kw_all_overwritten(8, high) > kw_all_overwritten(1, high));
    }

    #[test]
    fn bounds_are_probabilities() {
        for n in 1..=8 {
            for alpha in [0.0, 0.1, 0.5, 1.0, 2.0] {
                let e = kw_empty_return_bound(n, 32, alpha);
                let w = kw_wrong_return_bound(n, 32, alpha);
                assert!((0.0..=1.0).contains(&e), "empty({n},{alpha}) = {e}");
                assert!((0.0..=1.0).contains(&w), "wrong({n},{alpha}) = {w}");
            }
        }
    }

    #[test]
    fn zero_load_never_fails() {
        assert_eq!(kw_empty_return_bound(2, 32, 0.0), 0.0);
        assert_eq!(kw_wrong_return_bound(2, 32, 0.0), 0.0);
    }
}

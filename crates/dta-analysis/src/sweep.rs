//! Corpus-sweep coverage aggregation.
//!
//! The `sweep` binary (`crates/bench/src/bin/sweep.rs`) expands every
//! corpus file's grid, runs the cells, and checks the file's declared
//! invariants; this module holds the shared result model — per-file
//! coverage, violations, the machine-readable JSON report — and the
//! Monte-Carlo cross-check that ties an observed Key-Write audit back to
//! the abstract-store prediction of [`crate::montecarlo`].
//!
//! The JSON renderer is hand-rolled like the `BENCH_translator.json`
//! writer in `crates/bench/src/perf.rs` — the build environment has no
//! serde.

use crate::montecarlo::simulate_keywrite;

/// One invariant failure on one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Corpus file the cell came from.
    pub file: String,
    /// Cell coordinates (`seed=1,mode=sharded4`, or `base`).
    pub cell: String,
    /// Which invariant failed.
    pub invariant: String,
    /// What was observed (counters, fingerprints, ...).
    pub detail: String,
}

/// Coverage of one corpus file after a sweep.
#[derive(Debug, Clone, Default)]
pub struct FileCoverage {
    /// Corpus file name.
    pub file: String,
    /// Cells the file's grid expands to.
    pub cells_total: u64,
    /// Cells actually run (== `cells_total` unless sampled down).
    pub cells_run: u64,
    /// Scenario executions (> `cells_run` when `bit_reproducible` doubles
    /// runs).
    pub runs: u64,
    /// `(axis, distinct values covered)` in declaration order.
    pub axes: Vec<(String, u64)>,
    /// Invariants the file declares (each checked on every cell run).
    pub invariants: Vec<String>,
    /// Individual invariant evaluations performed.
    pub checks: u64,
    /// Failures (empty on a green sweep).
    pub violations: Vec<Violation>,
}

/// A whole sweep: every file's coverage plus the sampling parameters, so
/// a CI artifact is self-describing and reproducible.
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    /// Sampling seed (0 when unsampled).
    pub seed: u64,
    /// `--sample N` cap per file, if any.
    pub sample: Option<u64>,
    /// Per-file coverage, corpus order.
    pub files: Vec<FileCoverage>,
}

impl SweepSummary {
    /// Total cells run across the corpus.
    pub fn cells_run(&self) -> u64 {
        self.files.iter().map(|f| f.cells_run).sum()
    }

    /// Total scenario executions across the corpus.
    pub fn runs(&self) -> u64 {
        self.files.iter().map(|f| f.runs).sum()
    }

    /// Total invariant evaluations across the corpus.
    pub fn checks(&self) -> u64 {
        self.files.iter().map(|f| f.checks).sum()
    }

    /// Every violation across the corpus.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.files.iter().flat_map(|f| f.violations.iter())
    }

    /// Whether the sweep is green.
    pub fn ok(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Render the machine-readable coverage report.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"dta-sweep/coverage-v1\",\n");
        writeln!(s, "  \"seed\": {},", self.seed).unwrap();
        match self.sample {
            Some(n) => writeln!(s, "  \"sample\": {n},").unwrap(),
            None => s.push_str("  \"sample\": null,\n"),
        }
        writeln!(s, "  \"cells_run\": {},", self.cells_run()).unwrap();
        writeln!(s, "  \"runs\": {},", self.runs()).unwrap();
        writeln!(s, "  \"checks\": {},", self.checks()).unwrap();
        writeln!(s, "  \"violations\": {},", self.violations().count()).unwrap();
        s.push_str("  \"files\": [\n");
        for (i, f) in self.files.iter().enumerate() {
            s.push_str("    {\n");
            writeln!(s, "      \"file\": {},", json_str(&f.file)).unwrap();
            writeln!(s, "      \"cells_total\": {},", f.cells_total).unwrap();
            writeln!(s, "      \"cells_run\": {},", f.cells_run).unwrap();
            writeln!(s, "      \"runs\": {},", f.runs).unwrap();
            write!(s, "      \"axes\": {{").unwrap();
            for (j, (axis, n)) in f.axes.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                write!(s, "{}: {n}", json_str(axis)).unwrap();
            }
            s.push_str("},\n");
            write!(s, "      \"invariants\": [").unwrap();
            for (j, inv) in f.invariants.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                write!(s, "{}", json_str(inv)).unwrap();
            }
            s.push_str("],\n");
            writeln!(s, "      \"checks\": {},", f.checks).unwrap();
            s.push_str("      \"violations\": [");
            for (j, v) in f.violations.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                write!(
                    s,
                    "\n        {{\"cell\": {}, \"invariant\": {}, \"detail\": {}}}",
                    json_str(&v.cell),
                    json_str(&v.invariant),
                    json_str(&v.detail)
                )
                .unwrap();
            }
            if !f.violations.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("]\n");
            s.push_str(if i + 1 < self.files.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Result of a Monte-Carlo Key-Write cross-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McCheck {
    /// Audit success rate the scenario observed.
    pub observed: f64,
    /// Success rate the abstract-store simulation predicts at this load.
    pub predicted: f64,
    /// Slot count the simulation ran at (scaled down from the real store).
    pub slots: u64,
    /// Load factor `keys_written / real_slots` (preserved by the scaling).
    pub alpha: f64,
    /// Whether observed is within `slack` of predicted.
    pub ok: bool,
}

/// Tolerance on `observed - predicted`: the simulation is only a few
/// hundred trials and the scenario's hash family is not the simulator's
/// uniform one, so this is a sanity band, not a confidence interval.
pub const MC_SLACK: f64 = 0.05;

/// Cross-check an observed Key-Write audit against the Appendix A.5
/// abstract store: at load `alpha = keys_written / real_slots`, the
/// plurality-vote success rate predicted by [`simulate_keywrite`] must be
/// within [`MC_SLACK`] of what the scenario measured.
///
/// The simulation preserves `alpha` but caps the table at 16 Ki slots so a
/// per-cell check stays sub-millisecond; returns `None` when the scenario
/// wrote no Key-Write keys (nothing to check).
pub fn mc_keywrite_check(
    real_slots: u64,
    redundancy: u32,
    keys_written: u64,
    observed_success: f64,
    seed: u64,
) -> Option<McCheck> {
    if keys_written == 0 || real_slots == 0 {
        return None;
    }
    let alpha = keys_written as f64 / real_slots as f64;
    let slots = real_slots.min(16 * 1024);
    let mc = simulate_keywrite(slots, redundancy.max(1), 32, alpha, 300, seed);
    let predicted = mc.success_rate();
    Some(McCheck {
        observed: observed_success,
        predicted,
        slots,
        alpha,
        ok: (observed_success - predicted).abs() <= MC_SLACK,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_green() {
        let s = SweepSummary::default();
        assert!(s.ok());
        assert_eq!(s.cells_run(), 0);
        let json = s.render_json();
        assert!(json.contains("\"schema\": \"dta-sweep/coverage-v1\""));
        assert!(json.contains("\"violations\": 0"));
    }

    #[test]
    fn json_report_carries_files_axes_and_violations() {
        let s = SweepSummary {
            seed: 7,
            sample: Some(4),
            files: vec![FileCoverage {
                file: "scenarios/smoke.toml".into(),
                cells_total: 9,
                cells_run: 4,
                runs: 8,
                axes: vec![("seed".into(), 3), ("mode".into(), 3)],
                invariants: vec!["bit_reproducible".into()],
                checks: 4,
                violations: vec![Violation {
                    file: "scenarios/smoke.toml".into(),
                    cell: "seed=1,mode=single".into(),
                    invariant: "bit_reproducible".into(),
                    detail: "memory fingerprint diverged".into(),
                }],
            }],
        };
        assert!(!s.ok());
        let json = s.render_json();
        assert!(json.contains("\"sample\": 4"));
        assert!(json.contains("\"seed\": 3, \"mode\": 3"));
        assert!(json.contains("\"cell\": \"seed=1,mode=single\""));
        assert!(json.contains("\"violations\": 1"));
    }

    #[test]
    fn json_strings_escape_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn mc_check_agrees_at_light_load() {
        // 256 keys in 128 Ki slots, N=2: success is essentially certain,
        // and a clean audit (observed 1.0) must pass.
        let c = mc_keywrite_check(1 << 17, 2, 256, 1.0, 42).unwrap();
        assert!(c.predicted > 0.99, "predicted {}", c.predicted);
        assert!(c.ok);
        assert!((c.alpha - 256.0 / 131072.0).abs() < 1e-12);
        assert_eq!(c.slots, 16 * 1024);
    }

    #[test]
    fn mc_check_flags_implausible_audits() {
        // Claiming a 50% audit at a load where ~100% must succeed fails.
        let c = mc_keywrite_check(1 << 17, 2, 256, 0.5, 42).unwrap();
        assert!(!c.ok);
        // And nothing written means nothing to check.
        assert!(mc_keywrite_check(1 << 17, 2, 0, 1.0, 42).is_none());
    }
}

//! Monte-Carlo validation of the Appendix A.5 / A.6 bounds.
//!
//! These simulators model the stores *abstractly* — slots hold (checksum,
//! value-id) pairs and overwrites are uniform — so millions of trials run in
//! milliseconds, letting tests verify the closed-form bounds without the
//! byte-level machinery of `dta-collector`. (Integration tests separately
//! check that the byte-level store matches the abstract one.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome counts of a Key-Write Monte-Carlo run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McOutcome {
    /// Trials performed.
    pub trials: u64,
    /// Queries that returned the correct value.
    pub correct: u64,
    /// Queries that returned nothing / ambiguous (empty returns).
    pub empty: u64,
    /// Queries that returned a wrong value (return errors).
    pub wrong: u64,
}

impl McOutcome {
    /// Fraction of empty returns.
    pub fn empty_rate(&self) -> f64 {
        self.empty as f64 / self.trials as f64
    }

    /// Fraction of wrong returns.
    pub fn wrong_rate(&self) -> f64 {
        self.wrong as f64 / self.trials as f64
    }

    /// Fraction of successful queries (the Figure 12/13 y-axis).
    pub fn success_rate(&self) -> f64 {
        self.correct as f64 / self.trials as f64
    }
}

/// Simulate Key-Write at load `alpha` with redundancy `n`, checksum width
/// `b`, over a table of `slots` slots, repeated `trials` times.
///
/// Each trial: write the victim key's checksum+value into `n` uniform
/// slots, then write `alpha * slots` other keys (each into its own `n`
/// slots), then query with plurality vote.
pub fn simulate_keywrite(
    slots: u64,
    n: u32,
    b: u32,
    alpha: f64,
    trials: u64,
    seed: u64,
) -> McOutcome {
    assert!(slots > 0 && n >= 1 && (1..=32).contains(&b));
    let mut rng = StdRng::seed_from_u64(seed);
    let mask: u32 = if b == 32 { u32::MAX } else { (1 << b) - 1 };
    let mut out = McOutcome { trials, ..Default::default() };
    // Slot contents: (checksum, value_id); value_id 0 is the victim's.
    let mut table: Vec<(u32, u64)> = vec![(u32::MAX, u64::MAX); slots as usize];
    let writes_per_trial = (alpha * slots as f64).round() as u64;

    for _ in 0..trials {
        table.fill((u32::MAX, u64::MAX));
        let victim_csum: u32 = rng.gen::<u32>() & mask;
        // The hash family assigns the victim n uniform slots; the query
        // later reads the same slots.
        let victim_slots: Vec<usize> = (0..n).map(|_| rng.gen_range(0..slots) as usize).collect();
        for &s in &victim_slots {
            table[s] = (victim_csum, 0);
        }
        for key_id in 1..=writes_per_trial {
            let csum = rng.gen::<u32>() & mask;
            for _ in 0..n {
                let s = rng.gen_range(0..slots) as usize;
                table[s] = (csum, key_id);
            }
        }
        // Query: plurality vote over checksum-matching slots.
        let mut candidates: Vec<(u64, u32)> = Vec::new();
        for &s in &victim_slots {
            let (csum, val) = table[s];
            if csum == victim_csum {
                match candidates.iter_mut().find(|(v, _)| *v == val) {
                    Some((_, c)) => *c += 1,
                    None => candidates.push((val, 1)),
                }
            }
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.1));
        match candidates.first() {
            None => out.empty += 1,
            Some((_, top)) if candidates.len() > 1 && candidates[1].1 == *top => {
                out.empty += 1; // ambiguous counts as empty
            }
            Some((val, _)) => {
                if *val == 0 {
                    out.correct += 1;
                } else {
                    out.wrong += 1;
                }
            }
        }
    }
    out
}

/// Simulate Postcarding queries (Appendix A.6) abstractly: chunks hold
/// `hops` encoded words; overwrites replace whole chunks; a chunk decodes
/// for the queried key only if every word XORs back into the value universe
/// (probability `((values+1)/2^b)^hops` per overwritten chunk).
#[allow(clippy::too_many_arguments)] // mirrors the analysis' parameter list
pub fn simulate_postcarding(
    chunks: u64,
    n: u32,
    b: u32,
    alpha: f64,
    values: u64,
    hops: u32,
    trials: u64,
    seed: u64,
) -> McOutcome {
    assert!(chunks > 0 && n >= 1 && (1..=32).contains(&b) && hops >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = McOutcome { trials, ..Default::default() };
    // Chunk contents: owner id (u64::MAX = never written; 0 = victim).
    let mut table: Vec<u64> = vec![u64::MAX; chunks as usize];
    let writes_per_trial = (alpha * chunks as f64).round() as u64;
    // Probability an overwritten chunk still decodes as valid for the
    // victim: every hop word must alias into V ∪ {⊔} under the victim's
    // checksums.
    let p_valid =
        (((values + 1) as f64) * 2f64.powi(-(b as i32))).min(1.0).powi(hops as i32);

    for _ in 0..trials {
        table.fill(u64::MAX);
        let victim_chunks: Vec<usize> =
            (0..n).map(|_| rng.gen_range(0..chunks) as usize).collect();
        for &c in &victim_chunks {
            table[c] = 0;
        }
        for key_id in 1..=writes_per_trial {
            for _ in 0..n {
                let c = rng.gen_range(0..chunks) as usize;
                table[c] = key_id;
            }
        }
        // Decode: intact chunks always decode correctly; overwritten chunks
        // decode (to a wrong path) with probability p_valid.
        let mut intact = 0u32;
        let mut false_valid = 0u32;
        for &c in &victim_chunks {
            if table[c] == 0 {
                intact += 1;
            } else if rng.gen_bool(p_valid) {
                false_valid += 1;
            }
        }
        if intact > 0 && false_valid == 0 {
            out.correct += 1;
        } else if intact == 0 && false_valid > 0 {
            out.wrong += 1; // all valid chunks agree on garbage (pessimistic)
        } else {
            out.empty += 1; // nothing decodes, or valid chunks disagree
        }
    }
    out
}

/// Simulate Key-Write aging (Figure 13): one victim write followed by
/// `newer` newer keys, at a store of `slots` slots; returns the success
/// rate over `trials`.
pub fn simulate_keywrite_aging(
    slots: u64,
    n: u32,
    newer: u64,
    trials: u64,
    seed: u64,
) -> f64 {
    let alpha = newer as f64 / slots as f64;
    simulate_keywrite(slots, n, 32, alpha, trials, seed).success_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywrite::{kw_empty_return_bound, kw_wrong_return_bound};

    #[test]
    fn empirical_empty_rate_close_to_bound() {
        // The bound is nearly tight for b=32 (checksum collisions are
        // negligible): empirical ≈ (1 - e^{-αN})^N.
        let mc = simulate_keywrite(4096, 2, 32, 0.1, 2000, 42);
        let bound = kw_empty_return_bound(2, 32, 0.1);
        assert!(
            mc.empty_rate() <= bound * 1.35 + 0.01,
            "empirical {} vs bound {bound}",
            mc.empty_rate()
        );
        assert!(
            mc.empty_rate() >= bound * 0.5 - 0.01,
            "bound should be near-tight: empirical {} vs bound {bound}",
            mc.empty_rate()
        );
    }

    #[test]
    fn wrong_returns_essentially_never_happen_at_b32() {
        let mc = simulate_keywrite(1024, 2, 32, 0.5, 2000, 7);
        assert_eq!(mc.wrong, 0, "2^-32 collisions in 2k trials");
        let bound = kw_wrong_return_bound(2, 32, 0.5);
        assert!(bound < 1e-9);
    }

    #[test]
    fn narrow_checksums_do_produce_wrong_returns() {
        // b = 4: collisions every ~16 keys; wrong returns become visible.
        let mc = simulate_keywrite(256, 2, 4, 1.0, 2000, 9);
        assert!(mc.wrong > 0, "expected visible wrong returns at b=4");
    }

    #[test]
    fn success_rate_falls_with_age() {
        let fresh = simulate_keywrite_aging(1 << 12, 2, 1 << 8, 300, 3);
        let aged = simulate_keywrite_aging(1 << 12, 2, 1 << 12, 300, 3);
        assert!(fresh > aged, "fresh {fresh} <= aged {aged}");
        assert!(fresh > 0.95, "fresh data should be queryable: {fresh}");
    }

    #[test]
    fn postcarding_mc_matches_bound_shape() {
        use crate::postcarding::pc_empty_return_bound;
        let mc = simulate_postcarding(4096, 2, 32, 0.1, 1 << 18, 5, 2000, 13);
        let bound = pc_empty_return_bound(2, 32, 0.1, 1 << 18, 5);
        // With b=32 the false-valid term is negligible: empirical empty
        // rate tracks the (1-e^{-αN})^N term.
        assert!(mc.empty_rate() <= bound * 1.4 + 0.01, "mc {} vs bound {bound}", mc.empty_rate());
        assert_eq!(mc.wrong, 0, "wrong returns at b=32: {}", mc.wrong);
        assert!(mc.success_rate() > 0.9);
    }

    #[test]
    fn postcarding_mc_narrow_slots_fail_visibly() {
        // b=8 with |V|=2^10: p_valid clamps to 1, every overwrite decodes.
        let mc = simulate_postcarding(256, 1, 8, 1.0, 1 << 10, 5, 1000, 17);
        assert!(mc.wrong > 0, "saturated slots must produce wrong paths");
    }

    #[test]
    fn redundancy_helps_at_moderate_load() {
        let n1 = simulate_keywrite(2048, 1, 32, 0.2, 1500, 5).success_rate();
        let n4 = simulate_keywrite(2048, 4, 32, 0.2, 1500, 5).success_rate();
        assert!(n4 > n1, "N=4 {n4} should beat N=1 {n1} at α=0.2");
    }
}

//! Analysis: closed-form bounds and experiment-table helpers.
//!
//! * [`keywrite`] — the Key-Write empty-return / wrong-return bounds,
//!   equations (1)–(4) of the paper (Appendix A.5).
//! * [`postcarding`] — the Postcarding bounds, equations (5)–(8)
//!   (Appendix A.6).
//! * [`cms`] — Count-Min Sketch error guarantees backing the Key-Increment
//!   primitive (§4, citing Cormode & Muthukrishnan).
//! * [`montecarlo`] — fast abstract simulators that validate the bounds
//!   empirically (used by tests and the A.5/A.6 repro experiments).
//! * [`cost`] — the Figure 3 collection-cost model (cores vs network size).
//! * [`table`] — markdown/CSV table emission for the `repro` harness.
//! * [`sweep`] — corpus-sweep coverage aggregation + the Monte-Carlo
//!   cross-check behind the `sweep` binary's coverage report.

pub mod cms;
pub mod cost;
pub mod keywrite;
pub mod montecarlo;
pub mod postcarding;
pub mod sweep;
pub mod table;

pub use keywrite::{kw_empty_return_bound, kw_wrong_return_bound};
pub use postcarding::{pc_empty_return_bound, pc_wrong_return_bound};
pub use table::Table;

/// Binomial coefficient over f64 (exact for the tiny `N` used here).
pub(crate) fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut out = 1.0;
    for i in 0..k {
        out *= (n - i) as f64 / (i + 1) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(4, 2), 6.0);
        assert_eq!(choose(8, 0), 1.0);
        assert_eq!(choose(8, 8), 1.0);
        assert_eq!(choose(3, 5), 0.0);
        assert_eq!(choose(10, 3), 120.0);
    }
}

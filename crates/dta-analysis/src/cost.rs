//! The Figure 3 collection-cost model.
//!
//! "Number of cores needed for single-metric collection with MultiLog at
//! various network sizes": combine the Table 1 per-switch report rates with
//! the MultiLog per-core ingestion rate, across 1 .. 10K switches.

use dta_baselines::{CollectorKind, CpuModel};
use dta_telemetry::{MonitoringSystem, ReportRateModel};
use serde::{Deserialize, Serialize};

/// One Figure 3 data point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Network size (switch count).
    pub switches: u64,
    /// Monitoring system generating reports.
    pub system: MonitoringSystem,
    /// Cores needed to keep up with MultiLog.
    pub cores: u64,
}

/// Compute Figure 3's curves for the given network sizes.
pub fn fig3_cores_needed(
    sizes: &[u64],
    systems: &[MonitoringSystem],
    cores_per_server: u32,
) -> Vec<Fig3Point> {
    let rates = ReportRateModel::default();
    let cpu = CpuModel::default();
    let mut out = Vec::new();
    for &system in systems {
        for &switches in sizes {
            let rps = rates.network_reports_per_sec(system, switches);
            let cores = cpu
                .cores_needed_sharded(CollectorKind::MultiLog, rps, cores_per_server)
                .expect("MultiLog is CPU-bound per server");
            out.push(Fig3Point { switches, system, cores });
        }
    }
    out
}

/// Fraction of a fat-tree's servers consumed by collection (the paper's
/// "over 11% of the servers" for K = 28 with 16-core servers).
pub fn server_fraction_for_collection(k: u32, cores: u64, cores_per_server: u32) -> f64 {
    let hosts = (k as u64).pow(3) / 4;
    let servers_needed = cores.div_ceil(cores_per_server as u64);
    servers_needed as f64 / hosts as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousand_switch_int_needs_about_10k_cores() {
        let pts = fig3_cores_needed(&[1000], &[MonitoringSystem::IntPostcards], 16);
        assert_eq!(pts.len(), 1);
        assert!(
            (9_000..=13_000).contains(&pts[0].cores),
            "cores = {}",
            pts[0].cores
        );
    }

    #[test]
    fn k28_collection_consumes_over_11_percent_of_servers() {
        // §2: "in a K = 28 fat tree, this would correspond to over 11% of
        // the servers (assuming 16 cores each)".
        let pts = fig3_cores_needed(&[980], &[MonitoringSystem::IntPostcards], 16);
        let frac = server_fraction_for_collection(28, pts[0].cores, 16);
        assert!(frac > 0.11, "fraction {frac}");
        assert!(frac < 0.20, "fraction {frac} implausibly high");
    }

    #[test]
    fn cost_ordering_follows_report_rates() {
        let sizes = [100u64];
        let systems = [
            MonitoringSystem::IntPostcards,
            MonitoringSystem::MarpleFlowletSizes,
            MonitoringSystem::NetSeerLossEvents,
        ];
        let pts = fig3_cores_needed(&sizes, &systems, 16);
        assert!(pts[0].cores > pts[1].cores, "INT outpaces flowlets");
        assert!(pts[1].cores > pts[2].cores, "flowlets outpace NetSeer");
    }

    #[test]
    fn cores_scale_linearly_with_network() {
        let pts = fig3_cores_needed(&[10, 1000], &[MonitoringSystem::IntPostcards], 16);
        let ratio = pts[1].cores as f64 / pts[0].cores as f64;
        assert!((ratio - 100.0).abs() / 100.0 < 0.02, "ratio {ratio}");
    }
}

//! Count-Min Sketch guarantees for Key-Increment.
//!
//! "Our KI memory acts as a Count-Min Sketch ... Hash collisions may lead to
//! an overestimate of the value, with error guarantees matching those of
//! Count-Min Sketches \[14\]." (§4)
//!
//! DTA's variant hashes `N` times into a *single* array of `M` counters
//! (rather than `N` disjoint rows of width `w`). The standard analysis
//! carries over with row width `M`: each probe's expected collision mass is
//! `T · N / M` where `T` is the total inserted count, and the query (the
//! minimum of `N` probes) overestimates by more than `ε·T` with probability
//! at most `(N/(ε·M))^N` by independence of the probes (Markov per probe).

/// Expected overestimate of a single probe: `T · N / M`.
pub fn expected_overestimate(total: u64, n: u32, slots: u64) -> f64 {
    total as f64 * n as f64 / slots as f64
}

/// Probability the KI estimate exceeds the true count by more than
/// `epsilon * total`.
pub fn overestimate_tail(epsilon: f64, n: u32, slots: u64) -> f64 {
    assert!(epsilon > 0.0);
    let per_probe = (n as f64 / (epsilon * slots as f64)).min(1.0);
    per_probe.powi(n as i32)
}

/// Counters `M` needed for error `ε·T` with failure probability `δ`, given
/// `n` probes: invert the tail bound.
pub fn slots_needed(epsilon: f64, delta: f64, n: u32) -> u64 {
    assert!(epsilon > 0.0 && (0.0..1.0).contains(&delta));
    let per_probe = delta.powf(1.0 / n as f64);
    (n as f64 / (epsilon * per_probe)).ceil() as u64
}

/// The classic CMS parameterization for reference: width `e/ε`, depth
/// `ln(1/δ)`.
pub fn classic_cms_dimensions(epsilon: f64, delta: f64) -> (u64, u32) {
    let width = (std::f64::consts::E / epsilon).ceil() as u64;
    let depth = (1.0 / delta).ln().ceil() as u32;
    (width, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_shrinks_with_more_probes() {
        let one = overestimate_tail(0.01, 1, 1 << 16);
        let four = overestimate_tail(0.01, 4, 1 << 16);
        assert!(four < one);
    }

    #[test]
    fn tail_shrinks_with_more_slots() {
        let small = overestimate_tail(0.01, 2, 1 << 10);
        let big = overestimate_tail(0.01, 2, 1 << 20);
        assert!(big < small);
    }

    #[test]
    fn slots_needed_inverts_tail() {
        let eps = 0.001;
        let delta = 0.01;
        for n in [1u32, 2, 4] {
            let m = slots_needed(eps, delta, n);
            let tail = overestimate_tail(eps, n, m);
            assert!(tail <= delta * 1.01, "n={n}: tail {tail} > {delta}");
        }
    }

    #[test]
    fn expected_overestimate_is_linear() {
        assert_eq!(expected_overestimate(1000, 2, 1000), 2.0);
        assert_eq!(expected_overestimate(2000, 2, 1000), 4.0);
    }

    #[test]
    fn classic_dimensions_match_cormode_muthukrishnan() {
        let (w, d) = classic_cms_dimensions(0.01, 0.01);
        assert_eq!(w, 272); // ceil(e / 0.01)
        assert_eq!(d, 5); // ceil(ln 100)
    }
}

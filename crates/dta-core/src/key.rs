//! Telemetry keys.
//!
//! Key-Write, Key-Increment and Postcarding all address collector memory by a
//! key from an arbitrary domain (flow 5-tuple, source IP, query ID, a
//! `<switchID, 5-tuple>` pair, ...). On the wire a key is a fixed 16-byte
//! field — large enough for every key type in the paper's Table 2 — that the
//! translator hashes verbatim.

use crate::flow::FlowTuple;
use serde::{Deserialize, Serialize};

/// A 16-byte telemetry key.
///
/// Keys shorter than 16 bytes are zero-padded on the right; the padding is
/// part of the hashed bytes, so two different-length keys with equal prefixes
/// remain distinct only if their content differs (all constructors here embed
/// a type tag to guarantee that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TelemetryKey(pub [u8; 16]);

/// Type tags embedded in byte 0 of structured keys, so that e.g. a flow key
/// can never alias a query-id key.
mod tag {
    pub const FLOW: u8 = 1;
    pub const SRC_IP: u8 = 2;
    pub const QUERY_ID: u8 = 3;
    pub const SWITCH_FLOW: u8 = 4;
    pub const RAW: u8 = 5;
    pub const U64: u8 = 6;
}

impl TelemetryKey {
    /// Length of every key on the wire.
    pub const LEN: usize = 16;

    /// Key for a flow 5-tuple (INT path tracing, PINT, Marple flowlets...).
    pub fn flow(f: &FlowTuple) -> Self {
        let mut k = [0u8; 16];
        k[0] = tag::FLOW;
        k[1..14].copy_from_slice(&f.encode());
        TelemetryKey(k)
    }

    /// Key for a source IP (Marple host counters).
    pub fn src_ip(ip: u32) -> Self {
        let mut k = [0u8; 16];
        k[0] = tag::SRC_IP;
        k[1..5].copy_from_slice(&ip.to_be_bytes());
        TelemetryKey(k)
    }

    /// Key for a Sonata query result.
    pub fn query_id(id: u32) -> Self {
        let mut k = [0u8; 16];
        k[0] = tag::QUERY_ID;
        k[1..5].copy_from_slice(&id.to_be_bytes());
        TelemetryKey(k)
    }

    /// Key for a `<switch ID, flow>` pair (PacketScope traversal info).
    pub fn switch_flow(switch_id: u16, f: &FlowTuple) -> Self {
        let mut k = [0u8; 16];
        k[0] = tag::SWITCH_FLOW;
        k[1..3].copy_from_slice(&switch_id.to_be_bytes());
        k[3..16].copy_from_slice(&f.encode());
        TelemetryKey(k)
    }

    /// Key from an arbitrary u64 identifier (packet IDs, test keys).
    pub fn from_u64(v: u64) -> Self {
        let mut k = [0u8; 16];
        k[0] = tag::U64;
        k[1..9].copy_from_slice(&v.to_be_bytes());
        TelemetryKey(k)
    }

    /// Key from raw bytes (`len <= 15`; byte 0 is the RAW tag).
    ///
    /// # Panics
    /// Panics if `bytes.len() > 15`.
    pub fn raw(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 15, "raw key too long: {}", bytes.len());
        let mut k = [0u8; 16];
        k[0] = tag::RAW;
        k[1..1 + bytes.len()].copy_from_slice(bytes);
        TelemetryKey(k)
    }

    /// The bytes the translator hashes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl AsRef<[u8]> for TelemetryKey {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&FlowTuple> for TelemetryKey {
    fn from(f: &FlowTuple) -> Self {
        TelemetryKey::flow(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_never_alias_across_types() {
        let f = FlowTuple::tcp(7, 7, 7, 7);
        let keys = [
            TelemetryKey::flow(&f),
            TelemetryKey::src_ip(7),
            TelemetryKey::query_id(7),
            TelemetryKey::switch_flow(7, &f),
            TelemetryKey::from_u64(7),
            TelemetryKey::raw(&[7]),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "key types {i} and {j} alias");
            }
        }
    }

    #[test]
    fn flow_key_roundtrips_flow_identity() {
        let a = FlowTuple::tcp(1, 2, 3, 4);
        let b = FlowTuple::tcp(1, 2, 3, 5);
        assert_ne!(TelemetryKey::flow(&a), TelemetryKey::flow(&b));
        assert_eq!(TelemetryKey::flow(&a), TelemetryKey::from(&a));
    }

    #[test]
    #[should_panic]
    fn oversized_raw_key_rejected() {
        let _ = TelemetryKey::raw(&[0u8; 16]);
    }

    #[test]
    fn switch_flow_distinguishes_switches() {
        let f = FlowTuple::udp(9, 9, 9, 9);
        assert_ne!(
            TelemetryKey::switch_flow(1, &f),
            TelemetryKey::switch_flow(2, &f)
        );
    }
}

//! The DTA wire protocol.
//!
//! Direct Telemetry Access (SIGCOMM 2023) defines a lightweight UDP-based
//! protocol spoken between telemetry *reporters* (switches) and the
//! *translator* (the collector's last-hop switch). A DTA report is a normal
//! UDP datagram whose payload carries two DTA-specific headers (Figure 4 of
//! the paper):
//!
//! ```text
//! | Eth | IP | UDP | DTA header | primitive sub-header | telemetry payload |
//! ```
//!
//! The DTA header selects one of the four collection primitives; the
//! primitive sub-header carries its parameters (key, redundancy, list id,
//! hop number, ...). The translator consumes these headers and replaces them
//! with RoCEv2 headers when generating the RDMA operation.
//!
//! This crate is the single source of truth for the wire format. It contains
//! no I/O and no simulation: just types, encoding, and decoding.

// Lint floor (enforced by `dta-lint` + clippy -D warnings, see DESIGN.md
// "Static analysis"): unsafe operations must be explicitly scoped even
// inside unsafe fns, and every public type must be debuggable.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod flow;
pub mod framing;
pub mod header;
pub mod key;
pub mod nack;
pub mod primitive;
pub mod report;

pub use flow::FlowTuple;
pub use header::{DtaFlags, DtaHeader, DtaOpcode, DTA_UDP_PORT, DTA_VERSION};
pub use nack::{decode_nack, encode_nack, DTA_NACK_PORT, NACK_MAGIC};
pub use key::TelemetryKey;
pub use primitive::{
    AppendHeader, KeyIncrementHeader, KeyWriteHeader, PostcardingHeader, PrimitiveHeader,
};
pub use report::{DtaReport, ReportError};

/// Maximum telemetry payload carried by one DTA report, in bytes.
///
/// The paper's evaluation uses payloads of 4–20 B (INT postcards to 5-hop
/// paths); we allow up to 64 B which comfortably covers every system in
/// Table 2 (the largest is NetSeer's 18 B loss events).
pub const MAX_TELEMETRY_PAYLOAD: usize = 64;

/// Maximum redundancy level a report may request (Figure 12 evaluates up
/// to N = 8).
pub const MAX_REDUNDANCY: u8 = 8;

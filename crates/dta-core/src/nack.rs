//! The DTA NACK wire format (§5.2).
//!
//! "Rate limiting can be configured to generate a NACK sent back to the
//! reporter in case of a dropped report during these congestion events."
//!
//! A NACK is a tiny UDP datagram from the translator back to the reporter
//! that originated the dropped report: a 4-byte magic followed by the
//! dropped report's sequence number. It lives in `dta-core` because both
//! ends of the loop speak it — the translator encodes (`dta-translator`),
//! the reporter decodes and retransmits (`dta-reporter`) — and neither
//! should depend on the other for a shared wire format.

use bytes::{BufMut, Bytes, BytesMut};

/// UDP source port for NACKs returned to reporters.
pub const DTA_NACK_PORT: u16 = 40081;

/// Magic prefix of a NACK payload.
pub const NACK_MAGIC: &[u8; 4] = b"DNAK";

/// Encode a NACK payload for report sequence `seq`.
pub fn encode_nack(seq: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_slice(NACK_MAGIC);
    b.put_u32(seq);
    b.freeze()
}

/// Decode a NACK payload, returning the dropped report's sequence number.
pub fn decode_nack(payload: &[u8]) -> Option<u32> {
    if payload.len() == 8 && &payload[..4] == NACK_MAGIC {
        Some(u32::from_be_bytes(payload[4..8].try_into().unwrap()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nack_roundtrip() {
        assert_eq!(decode_nack(&encode_nack(0xDEAD_BEEF)), Some(0xDEAD_BEEF));
        assert_eq!(decode_nack(b"bogus!!!"), None);
        assert_eq!(decode_nack(b"DNAK"), None); // too short
        assert_eq!(decode_nack(b"DNAKxxxxy"), None); // too long
    }
}

//! Ethernet / IPv4 / UDP framing.
//!
//! Reporters encapsulate DTA reports in ordinary UDP datagrams (Figure 4);
//! the translator substitutes the DTA headers with RoCEv2 headers while
//! keeping Ethernet/IP framing. These header types are shared by the
//! network simulator, the reporter, and the RDMA layer, and use real wire
//! sizes so that byte-accurate line-rate accounting is possible.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::report::ReportError;

/// Ethernet II header (no VLAN), 14 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: [u8; 6],
    /// Source MAC.
    pub src: [u8; 6],
    /// EtherType (0x0800 = IPv4).
    pub ethertype: u16,
}

impl EthHeader {
    /// Encoded size.
    pub const LEN: usize = 14;
    /// EtherType for IPv4.
    pub const ETHERTYPE_IPV4: u16 = 0x0800;

    /// IPv4 frame between two MACs.
    pub fn ipv4(src: [u8; 6], dst: [u8; 6]) -> Self {
        EthHeader { dst, src, ethertype: Self::ETHERTYPE_IPV4 }
    }

    /// Serialize.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst);
        buf.put_slice(&self.src);
        buf.put_u16(self.ethertype);
    }

    /// Deserialize.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let ethertype = buf.get_u16();
        Ok(EthHeader { dst, src, ethertype })
    }
}

/// IPv4 header without options, 20 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// DSCP/ECN byte (DTA reports may use a dedicated traffic class).
    pub tos: u8,
    /// Total length: header + payload.
    pub total_len: u16,
    /// Identification (used by the network fault injector for tracing).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (17 = UDP).
    pub proto: u8,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
}

impl Ipv4Header {
    /// Encoded size (IHL = 5).
    pub const LEN: usize = 20;
    /// Protocol number for UDP.
    pub const PROTO_UDP: u8 = 17;

    /// UDP packet between two addresses carrying `payload_len` bytes of UDP
    /// (header included).
    pub fn udp(src: u32, dst: u32, udp_len: usize) -> Self {
        Ipv4Header {
            tos: 0,
            total_len: (Self::LEN + udp_len) as u16,
            ident: 0,
            ttl: 64,
            proto: Self::PROTO_UDP,
            src,
            dst,
        }
    }

    /// RFC 1071 header checksum over the encoded header.
    pub fn checksum(&self) -> u16 {
        let mut buf = BytesMut::with_capacity(Self::LEN);
        self.encode_with_checksum(&mut buf, 0);
        let mut sum = 0u32;
        let b = &buf[..];
        for i in (0..Self::LEN).step_by(2) {
            sum += u16::from_be_bytes([b[i], b[i + 1]]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }

    fn encode_with_checksum<B: BufMut>(&self, buf: &mut B, csum: u16) {
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.tos);
        buf.put_u16(self.total_len);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // DF, no fragmentation
        buf.put_u8(self.ttl);
        buf.put_u8(self.proto);
        buf.put_u16(csum);
        buf.put_u32(self.src);
        buf.put_u32(self.dst);
    }

    /// Serialize with a valid checksum.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        self.encode_with_checksum(buf, self.checksum());
    }

    /// Deserialize, verifying version/IHL and the header checksum.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let vihl = buf.get_u8();
        if vihl != 0x45 {
            return Err(ReportError::BadVersion(vihl));
        }
        let tos = buf.get_u8();
        let total_len = buf.get_u16();
        let ident = buf.get_u16();
        let _frag = buf.get_u16();
        let ttl = buf.get_u8();
        let proto = buf.get_u8();
        let wire_csum = buf.get_u16();
        let src = buf.get_u32();
        let dst = buf.get_u32();
        let hdr = Ipv4Header { tos, total_len, ident, ttl, proto, src, dst };
        if wire_csum != hdr.checksum() {
            return Err(ReportError::BadVersion(0)); // corrupt header
        }
        Ok(hdr)
    }
}

/// UDP header, 8 bytes. The checksum is optional in IPv4 and DTA reporters
/// skip it ("freeing them from ... associated checksums", §3), so we carry 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length: header + payload.
    pub len: u16,
}

impl UdpHeader {
    /// Encoded size.
    pub const LEN: usize = 8;

    /// Header for a datagram with `payload_len` payload bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader { src_port, dst_port, len: (Self::LEN + payload_len) as u16 }
    }

    /// Serialize.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.len);
        buf.put_u16(0); // checksum elided
    }

    /// Deserialize.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let len = buf.get_u16();
        let _csum = buf.get_u16();
        Ok(UdpHeader { src_port, dst_port, len })
    }
}

/// Total per-packet framing overhead for a UDP datagram: Eth + IPv4 + UDP.
pub const UDP_FRAME_OVERHEAD: usize = EthHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN;

/// A fully framed UDP packet (the unit the simulated network carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpPacket {
    /// L2 header.
    pub eth: EthHeader,
    /// L3 header.
    pub ip: Ipv4Header,
    /// L4 header.
    pub udp: UdpHeader,
    /// UDP payload.
    pub payload: Bytes,
}

impl UdpPacket {
    /// Frame `payload` from `src_ip:src_port` to `dst_ip:dst_port` with
    /// placeholder MACs (the simulator routes on IP).
    pub fn frame(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16, payload: Bytes) -> Self {
        let udp = UdpHeader::new(src_port, dst_port, payload.len());
        let ip = Ipv4Header::udp(src_ip, dst_ip, udp.len as usize);
        UdpPacket {
            eth: EthHeader::ipv4([0x02, 0, 0, 0, 0, 1], [0x02, 0, 0, 0, 0, 2]),
            ip,
            udp,
            payload,
        }
    }

    /// Wire size in bytes.
    pub fn wire_len(&self) -> usize {
        UDP_FRAME_OVERHEAD + self.payload.len()
    }

    /// Serialize the whole packet.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.eth.encode(&mut buf);
        self.ip.encode(&mut buf);
        self.udp.encode(&mut buf);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Deserialize a whole packet.
    pub fn decode(mut buf: Bytes) -> Result<Self, ReportError> {
        let eth = EthHeader::decode(&mut buf)?;
        let ip = Ipv4Header::decode(&mut buf)?;
        let udp = UdpHeader::decode(&mut buf)?;
        let payload_len = (udp.len as usize).saturating_sub(UdpHeader::LEN);
        if buf.remaining() < payload_len {
            return Err(ReportError::Truncated { need: payload_len, have: buf.remaining() });
        }
        let payload = buf.copy_to_bytes(payload_len);
        Ok(UdpPacket { eth, ip, udp, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_packet_roundtrip() {
        let p = UdpPacket::frame(0x0A000001, 5555, 0x0A000002, 40080, Bytes::from_static(b"dta"));
        let wire = p.encode();
        assert_eq!(wire.len(), p.wire_len());
        assert_eq!(UdpPacket::decode(wire).unwrap(), p);
    }

    #[test]
    fn ipv4_checksum_validates() {
        let ip = Ipv4Header::udp(1, 2, 100);
        let mut buf = BytesMut::new();
        ip.encode(&mut buf);
        assert!(Ipv4Header::decode(&mut buf.freeze()).is_ok());
    }

    #[test]
    fn corrupt_ipv4_rejected() {
        let ip = Ipv4Header::udp(1, 2, 100);
        let mut buf = BytesMut::new();
        ip.encode(&mut buf);
        buf[16] ^= 0xFF; // flip a byte of the src address
        assert!(Ipv4Header::decode(&mut buf.freeze()).is_err());
    }

    #[test]
    fn frame_overhead_is_42_bytes() {
        assert_eq!(UDP_FRAME_OVERHEAD, 42);
    }

    #[test]
    fn truncated_payload_detected() {
        let p = UdpPacket::frame(1, 2, 3, 4, Bytes::from(vec![0u8; 20]));
        let wire = p.encode();
        let short = wire.slice(0..wire.len() - 5);
        assert!(UdpPacket::decode(short).is_err());
    }
}

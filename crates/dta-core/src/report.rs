//! Complete DTA reports: header + sub-header + telemetry payload.

use bytes::{Buf, BufMut, Bytes, BytesMut};


use crate::header::{DtaFlags, DtaHeader, DtaOpcode};
use crate::key::TelemetryKey;
use crate::primitive::{
    AppendHeader, KeyIncrementHeader, KeyWriteHeader, PostcardingHeader, PrimitiveHeader,
};
use crate::MAX_TELEMETRY_PAYLOAD;

/// Errors arising while decoding DTA messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// Buffer shorter than a fixed-size field requires.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Redundancy outside `1..=MAX_REDUNDANCY`.
    BadRedundancy(u8),
    /// Postcard hop index not below the declared path length.
    BadHop {
        /// Offending hop index.
        hop: u8,
        /// Declared path length.
        path_len: u8,
    },
    /// Telemetry payload exceeds [`MAX_TELEMETRY_PAYLOAD`].
    PayloadTooLarge(usize),
}

impl core::fmt::Display for ReportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReportError::Truncated { need, have } => {
                write!(f, "truncated DTA message: need {need} bytes, have {have}")
            }
            ReportError::BadVersion(v) => write!(f, "unsupported DTA version {v}"),
            ReportError::UnknownOpcode(o) => write!(f, "unknown DTA opcode {o}"),
            ReportError::BadRedundancy(n) => write!(f, "redundancy {n} out of range"),
            ReportError::BadHop { hop, path_len } => {
                write!(f, "hop {hop} not below path length {path_len}")
            }
            ReportError::PayloadTooLarge(n) => {
                write!(f, "telemetry payload of {n} bytes exceeds {MAX_TELEMETRY_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// A full DTA report as carried in a UDP payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtaReport {
    /// Fixed header.
    pub header: DtaHeader,
    /// Primitive parameters.
    pub primitive: PrimitiveHeader,
    /// Telemetry payload (the monitoring system's own bytes). Postcarding
    /// carries its value inside the sub-header, so its payload is empty.
    pub payload: Bytes,
}

impl DtaReport {
    /// Build a Key-Write report.
    pub fn key_write(seq: u32, key: TelemetryKey, redundancy: u8, data: impl Into<Bytes>) -> Self {
        DtaReport {
            header: DtaHeader::new(DtaOpcode::KeyWrite, seq),
            primitive: PrimitiveHeader::KeyWrite(KeyWriteHeader { key, redundancy }),
            payload: data.into(),
        }
    }

    /// Build an Append report.
    pub fn append(seq: u32, list_id: u32, data: impl Into<Bytes>) -> Self {
        DtaReport {
            header: DtaHeader::new(DtaOpcode::Append, seq),
            primitive: PrimitiveHeader::Append(AppendHeader { list_id }),
            payload: data.into(),
        }
    }

    /// Build a Key-Increment report.
    pub fn key_increment(seq: u32, key: TelemetryKey, redundancy: u8, delta: u64) -> Self {
        DtaReport {
            header: DtaHeader::new(DtaOpcode::KeyIncrement, seq),
            primitive: PrimitiveHeader::KeyIncrement(KeyIncrementHeader {
                key,
                redundancy,
                delta,
            }),
            payload: Bytes::new(),
        }
    }

    /// Build a Postcarding report.
    pub fn postcard(seq: u32, key: TelemetryKey, hop: u8, path_len: u8, value: u32) -> Self {
        DtaReport {
            header: DtaHeader::new(DtaOpcode::Postcarding, seq),
            primitive: PrimitiveHeader::Postcarding(PostcardingHeader {
                key,
                hop,
                path_len,
                value,
            }),
            payload: Bytes::new(),
        }
    }

    /// Set flag bits (builder style).
    pub fn with_flags(mut self, flags: DtaFlags) -> Self {
        self.header.flags = flags;
        self
    }

    /// Total encoded size in bytes (the DTA-over-UDP payload length).
    pub fn encoded_len(&self) -> usize {
        DtaHeader::LEN + self.primitive.encoded_len() + self.payload.len()
    }

    /// Serialize to a fresh buffer.
    pub fn encode(&self) -> Result<Bytes, ReportError> {
        if self.payload.len() > MAX_TELEMETRY_PAYLOAD {
            return Err(ReportError::PayloadTooLarge(self.payload.len()));
        }
        debug_assert_eq!(self.header.opcode, self.primitive.opcode());
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.header.encode(&mut buf);
        self.primitive.encode(&mut buf);
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Deserialize a report from a UDP payload.
    pub fn decode(mut buf: Bytes) -> Result<Self, ReportError> {
        let header = DtaHeader::decode(&mut buf)?;
        let primitive = PrimitiveHeader::decode(header.opcode, &mut buf)?;
        let payload = buf.copy_to_bytes(buf.remaining());
        if payload.len() > MAX_TELEMETRY_PAYLOAD {
            return Err(ReportError::PayloadTooLarge(payload.len()));
        }
        Ok(DtaReport { header, primitive, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywrite_report_roundtrip() {
        let r = DtaReport::key_write(9, TelemetryKey::from_u64(5), 2, vec![1, 2, 3, 4]);
        let wire = r.encode().unwrap();
        assert_eq!(DtaReport::decode(wire).unwrap(), r);
    }

    #[test]
    fn append_report_roundtrip() {
        let r = DtaReport::append(0, 77, vec![0xAA; 18]); // NetSeer-sized event
        let wire = r.encode().unwrap();
        assert_eq!(DtaReport::decode(wire).unwrap(), r);
    }

    #[test]
    fn keyincrement_report_roundtrip() {
        let r = DtaReport::key_increment(1, TelemetryKey::src_ip(1), 3, 12345);
        let wire = r.encode().unwrap();
        assert_eq!(DtaReport::decode(wire).unwrap(), r);
    }

    #[test]
    fn postcard_report_roundtrip() {
        let r = DtaReport::postcard(2, TelemetryKey::from_u64(8), 1, 5, 0x1234);
        let wire = r.encode().unwrap();
        assert_eq!(DtaReport::decode(wire).unwrap(), r);
    }

    #[test]
    fn oversized_payload_rejected_on_encode() {
        let r = DtaReport::append(0, 1, vec![0u8; MAX_TELEMETRY_PAYLOAD + 1]);
        assert!(matches!(r.encode(), Err(ReportError::PayloadTooLarge(_))));
    }

    #[test]
    fn wire_size_matches_figure4_layout() {
        // 4B INT postcard via Key-Write: 8 (hdr) + 17 (KW sub) + 4 = 29 B of
        // DTA payload — the lightweight encapsulation the paper relies on.
        let r = DtaReport::key_write(0, TelemetryKey::from_u64(1), 1, vec![0u8; 4]);
        assert_eq!(r.encoded_len(), 29);
        assert_eq!(r.encode().unwrap().len(), 29);
    }

    #[test]
    fn immediate_flag_survives_roundtrip() {
        let r = DtaReport::append(3, 1, vec![1]).with_flags(DtaFlags {
            immediate: true,
            nack_on_drop: true,
        });
        let got = DtaReport::decode(r.encode().unwrap()).unwrap();
        assert!(got.header.flags.immediate);
        assert!(got.header.flags.nack_on_drop);
    }
}

//! Primitive sub-headers (Figure 4: "Primitive Sub-header").
//!
//! Each of the four DTA primitives carries its parameters in a sub-header
//! immediately following the fixed [`crate::DtaHeader`]. The telemetry
//! payload follows the sub-header.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::header::DtaOpcode;
use crate::key::TelemetryKey;
use crate::report::ReportError;

/// Key-Write sub-header: `KeyWrite(key, data)` with per-report redundancy.
///
/// "DTA also lets switches specify the importance of per-key telemetry data
/// by including the level of redundancy, or the number of copies to store, as
/// a field in the KW header." (§4)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyWriteHeader {
    /// Storage key.
    pub key: TelemetryKey,
    /// Number of redundant copies `N` (1..=8).
    pub redundancy: u8,
}

impl KeyWriteHeader {
    /// Encoded size.
    pub const LEN: usize = TelemetryKey::LEN + 1;

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(self.key.as_bytes());
        buf.put_u8(self.redundancy);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let mut key = [0u8; 16];
        buf.copy_to_slice(&mut key);
        let redundancy = buf.get_u8();
        if redundancy == 0 || redundancy > crate::MAX_REDUNDANCY {
            return Err(ReportError::BadRedundancy(redundancy));
        }
        Ok(KeyWriteHeader { key: TelemetryKey(key), redundancy })
    }
}

/// Key-Increment sub-header: `KeyIncrement(key, counter)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyIncrementHeader {
    /// Counter key.
    pub key: TelemetryKey,
    /// Number of sketch rows to increment `N` (1..=8).
    pub redundancy: u8,
    /// The amount to add.
    pub delta: u64,
}

impl KeyIncrementHeader {
    /// Encoded size.
    pub const LEN: usize = TelemetryKey::LEN + 1 + 8;

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(self.key.as_bytes());
        buf.put_u8(self.redundancy);
        buf.put_u64(self.delta);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let mut key = [0u8; 16];
        buf.copy_to_slice(&mut key);
        let redundancy = buf.get_u8();
        if redundancy == 0 || redundancy > crate::MAX_REDUNDANCY {
            return Err(ReportError::BadRedundancy(redundancy));
        }
        let delta = buf.get_u64();
        Ok(KeyIncrementHeader { key: TelemetryKey(key), redundancy, delta })
    }
}

/// Append sub-header: `Append(listID, data)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppendHeader {
    /// Target list. The prototype translator "supports tracking up to 131K
    /// simultaneous lists" (§5.2).
    pub list_id: u32,
}

impl AppendHeader {
    /// Encoded size.
    pub const LEN: usize = 4;

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.list_id);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        Ok(AppendHeader { list_id: buf.get_u32() })
    }
}

/// Postcarding sub-header: `Postcarding(key, hop, data)`.
///
/// The egress switch includes the packet's path length so the translator can
/// trigger the aggregate write before the postcard counter reaches the
/// topology bound `B` (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostcardingHeader {
    /// Flow / packet identifier the postcards aggregate under.
    pub key: TelemetryKey,
    /// Hop index of this postcard (0-based, `< path_len`).
    pub hop: u8,
    /// Total path length of the packet, when known by the reporter
    /// (0 = unknown, translator waits for `B` postcards).
    pub path_len: u8,
    /// The 4-byte INT value for this hop (switch ID, queue depth, ...). The
    /// INT standard hardcodes 32-bit values \[21\].
    pub value: u32,
}

impl PostcardingHeader {
    /// Encoded size.
    pub const LEN: usize = TelemetryKey::LEN + 1 + 1 + 4;

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(self.key.as_bytes());
        buf.put_u8(self.hop);
        buf.put_u8(self.path_len);
        buf.put_u32(self.value);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let mut key = [0u8; 16];
        buf.copy_to_slice(&mut key);
        let hop = buf.get_u8();
        let path_len = buf.get_u8();
        let value = buf.get_u32();
        if path_len != 0 && hop >= path_len {
            return Err(ReportError::BadHop { hop, path_len });
        }
        Ok(PostcardingHeader { key: TelemetryKey(key), hop, path_len, value })
    }
}

/// A decoded primitive sub-header of any kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrimitiveHeader {
    /// Key-Write parameters.
    KeyWrite(KeyWriteHeader),
    /// Append parameters.
    Append(AppendHeader),
    /// Key-Increment parameters.
    KeyIncrement(KeyIncrementHeader),
    /// Postcarding parameters.
    Postcarding(PostcardingHeader),
}

impl PrimitiveHeader {
    /// The opcode matching this sub-header.
    pub fn opcode(&self) -> DtaOpcode {
        match self {
            PrimitiveHeader::KeyWrite(_) => DtaOpcode::KeyWrite,
            PrimitiveHeader::Append(_) => DtaOpcode::Append,
            PrimitiveHeader::KeyIncrement(_) => DtaOpcode::KeyIncrement,
            PrimitiveHeader::Postcarding(_) => DtaOpcode::Postcarding,
        }
    }

    /// Encoded size of this sub-header.
    pub fn encoded_len(&self) -> usize {
        match self {
            PrimitiveHeader::KeyWrite(_) => KeyWriteHeader::LEN,
            PrimitiveHeader::Append(_) => AppendHeader::LEN,
            PrimitiveHeader::KeyIncrement(_) => KeyIncrementHeader::LEN,
            PrimitiveHeader::Postcarding(_) => PostcardingHeader::LEN,
        }
    }

    /// Serialize into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            PrimitiveHeader::KeyWrite(h) => h.encode(buf),
            PrimitiveHeader::Append(h) => h.encode(buf),
            PrimitiveHeader::KeyIncrement(h) => h.encode(buf),
            PrimitiveHeader::Postcarding(h) => h.encode(buf),
        }
    }

    /// Deserialize the sub-header for `opcode` from `buf`.
    pub fn decode<B: Buf>(opcode: DtaOpcode, buf: &mut B) -> Result<Self, ReportError> {
        Ok(match opcode {
            DtaOpcode::KeyWrite => PrimitiveHeader::KeyWrite(KeyWriteHeader::decode(buf)?),
            DtaOpcode::Append => PrimitiveHeader::Append(AppendHeader::decode(buf)?),
            DtaOpcode::KeyIncrement => {
                PrimitiveHeader::KeyIncrement(KeyIncrementHeader::decode(buf)?)
            }
            DtaOpcode::Postcarding => {
                PrimitiveHeader::Postcarding(PostcardingHeader::decode(buf)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(h: PrimitiveHeader) {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.encoded_len());
        let got = PrimitiveHeader::decode(h.opcode(), &mut buf.freeze()).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn keywrite_roundtrip() {
        roundtrip(PrimitiveHeader::KeyWrite(KeyWriteHeader {
            key: TelemetryKey::from_u64(42),
            redundancy: 2,
        }));
    }

    #[test]
    fn append_roundtrip() {
        roundtrip(PrimitiveHeader::Append(AppendHeader { list_id: 131_000 }));
    }

    #[test]
    fn keyincrement_roundtrip() {
        roundtrip(PrimitiveHeader::KeyIncrement(KeyIncrementHeader {
            key: TelemetryKey::src_ip(0x0A000001),
            redundancy: 4,
            delta: 1 << 40,
        }));
    }

    #[test]
    fn postcarding_roundtrip() {
        roundtrip(PrimitiveHeader::Postcarding(PostcardingHeader {
            key: TelemetryKey::from_u64(7),
            hop: 3,
            path_len: 5,
            value: 0xABCD_EF01,
        }));
    }

    #[test]
    fn zero_redundancy_rejected() {
        let mut buf = BytesMut::new();
        PrimitiveHeader::KeyWrite(KeyWriteHeader {
            key: TelemetryKey::from_u64(1),
            redundancy: 1,
        })
        .encode(&mut buf);
        buf[16] = 0;
        assert!(matches!(
            PrimitiveHeader::decode(DtaOpcode::KeyWrite, &mut buf.freeze()),
            Err(ReportError::BadRedundancy(0))
        ));
    }

    #[test]
    fn excess_redundancy_rejected() {
        let mut buf = BytesMut::new();
        PrimitiveHeader::KeyWrite(KeyWriteHeader {
            key: TelemetryKey::from_u64(1),
            redundancy: 1,
        })
        .encode(&mut buf);
        buf[16] = 9;
        assert!(matches!(
            PrimitiveHeader::decode(DtaOpcode::KeyWrite, &mut buf.freeze()),
            Err(ReportError::BadRedundancy(9))
        ));
    }

    #[test]
    fn hop_beyond_path_rejected() {
        let mut buf = BytesMut::new();
        PrimitiveHeader::Postcarding(PostcardingHeader {
            key: TelemetryKey::from_u64(1),
            hop: 0,
            path_len: 5,
            value: 0,
        })
        .encode(&mut buf);
        buf[16] = 5; // hop = path_len
        assert!(matches!(
            PrimitiveHeader::decode(DtaOpcode::Postcarding, &mut buf.freeze()),
            Err(ReportError::BadHop { hop: 5, path_len: 5 })
        ));
    }

    #[test]
    fn unknown_path_len_accepts_any_hop() {
        let mut buf = BytesMut::new();
        PrimitiveHeader::Postcarding(PostcardingHeader {
            key: TelemetryKey::from_u64(1),
            hop: 9,
            path_len: 0,
            value: 0,
        })
        .encode(&mut buf);
        assert!(PrimitiveHeader::decode(DtaOpcode::Postcarding, &mut buf.freeze()).is_ok());
    }
}

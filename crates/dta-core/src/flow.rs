//! Flow 5-tuples — the most common telemetry key in Table 2 of the paper.

use serde::{Deserialize, Serialize};

/// An IPv4 flow 5-tuple `(src, dst, sport, dport, proto)`.
///
/// Most systems in the paper's Table 2 key their telemetry on the flow
/// 5-tuple (INT path tracing, Marple, PINT, ...). The canonical 13-byte wire
/// encoding produced by [`FlowTuple::encode`] is what gets hashed by the
/// translator, so it must be stable across components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowTuple {
    /// Length of the canonical encoding.
    pub const ENCODED_LEN: usize = 13;

    /// TCP flow constructor.
    pub fn tcp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        FlowTuple { src_ip, dst_ip, src_port, dst_port, proto: 6 }
    }

    /// UDP flow constructor.
    pub fn udp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        FlowTuple { src_ip, dst_ip, src_port, dst_port, proto: 17 }
    }

    /// Canonical big-endian wire encoding.
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        out[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.proto;
        out
    }

    /// Decode a canonical encoding.
    pub fn decode(buf: &[u8; Self::ENCODED_LEN]) -> Self {
        FlowTuple {
            src_ip: u32::from_be_bytes(buf[0..4].try_into().unwrap()),
            dst_ip: u32::from_be_bytes(buf[4..8].try_into().unwrap()),
            src_port: u16::from_be_bytes(buf[8..10].try_into().unwrap()),
            dst_port: u16::from_be_bytes(buf[10..12].try_into().unwrap()),
            proto: buf[12],
        }
    }

    /// The reverse direction of this flow.
    pub fn reversed(&self) -> Self {
        FlowTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl core::fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.src_ip.to_be_bytes();
        let d = self.dst_ip.to_be_bytes();
        write!(
            f,
            "{}.{}.{}.{}:{}->{}.{}.{}.{}:{}/{}",
            s[0], s[1], s[2], s[3], self.src_port, d[0], d[1], d[2], d[3], self.dst_port, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let f = FlowTuple::tcp(0x0A00_0001, 443, 0x0A00_0002, 8080);
        assert_eq!(FlowTuple::decode(&f.encode()), f);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let f = FlowTuple::udp(1, 2, 3, 4);
        assert_eq!(f.reversed().reversed(), f);
    }

    #[test]
    fn display_is_human_readable() {
        let f = FlowTuple::tcp(0x0A000001, 443, 0x0A000002, 80);
        assert_eq!(f.to_string(), "10.0.0.1:443->10.0.0.2:80/6");
    }

    #[test]
    fn distinct_flows_have_distinct_encodings() {
        let a = FlowTuple::tcp(1, 1, 2, 2);
        let b = FlowTuple::tcp(1, 1, 2, 3);
        assert_ne!(a.encode(), b.encode());
    }
}

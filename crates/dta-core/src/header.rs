//! The fixed DTA header.
//!
//! Every DTA report starts (after UDP) with this 8-byte header:
//!
//! ```text
//!  0        1        2        3        4..8
//! +--------+--------+--------+--------+----------------+
//! | version| opcode | flags  | rsvd   | sequence (u32) |
//! +--------+--------+--------+--------+----------------+
//! ```
//!
//! The sequence number is per-reporter and lets the translator detect
//! in-transit report loss when a flow-control mechanism is enabled (§7,
//! "Flow Control in DTA"). It is informational: the primitives tolerate loss
//! by design.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::report::ReportError;

/// Protocol version implemented by this crate.
pub const DTA_VERSION: u8 = 1;

/// Well-known UDP destination port for DTA reports.
///
/// Any unassigned port works; the translator's parser keys on it. 40080 is
/// what the open-source artifact uses for its experiments.
pub const DTA_UDP_PORT: u16 = 40080;

/// The collection primitive requested by a report (§4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum DtaOpcode {
    /// Key-Write: probabilistic key-value storage with N-redundancy.
    KeyWrite = 1,
    /// Append: insertion into a named global list.
    Append = 2,
    /// Key-Increment: addition-based aggregation (Count-Min semantics).
    KeyIncrement = 3,
    /// Postcarding: per-flow aggregation of per-hop INT postcards.
    Postcarding = 4,
}

impl DtaOpcode {
    /// Decode an opcode byte.
    pub fn from_u8(v: u8) -> Result<Self, ReportError> {
        match v {
            1 => Ok(DtaOpcode::KeyWrite),
            2 => Ok(DtaOpcode::Append),
            3 => Ok(DtaOpcode::KeyIncrement),
            4 => Ok(DtaOpcode::Postcarding),
            other => Err(ReportError::UnknownOpcode(other)),
        }
    }
}

/// DTA header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DtaFlags {
    /// Report should raise an RDMA-immediate interrupt at the collector
    /// ("Push notifications", §7).
    pub immediate: bool,
    /// Reporter requests a NACK if the translator's rate limiter drops this
    /// report during collector NIC congestion (§5.2).
    pub nack_on_drop: bool,
}

impl DtaFlags {
    const IMMEDIATE: u8 = 0b0000_0001;
    const NACK_ON_DROP: u8 = 0b0000_0010;

    /// Pack into the wire byte.
    pub fn to_byte(self) -> u8 {
        let mut b = 0;
        if self.immediate {
            b |= Self::IMMEDIATE;
        }
        if self.nack_on_drop {
            b |= Self::NACK_ON_DROP;
        }
        b
    }

    /// Unpack from the wire byte; unknown bits are ignored for forward
    /// compatibility.
    pub fn from_byte(b: u8) -> Self {
        DtaFlags {
            immediate: b & Self::IMMEDIATE != 0,
            nack_on_drop: b & Self::NACK_ON_DROP != 0,
        }
    }
}

/// The fixed 8-byte DTA header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DtaHeader {
    /// Protocol version (must equal [`DTA_VERSION`]).
    pub version: u8,
    /// Requested primitive.
    pub opcode: DtaOpcode,
    /// Flag bits.
    pub flags: DtaFlags,
    /// Per-reporter report sequence number.
    pub seq: u32,
}

impl DtaHeader {
    /// Encoded size.
    pub const LEN: usize = 8;

    /// New header with default flags.
    pub fn new(opcode: DtaOpcode, seq: u32) -> Self {
        DtaHeader { version: DTA_VERSION, opcode, flags: DtaFlags::default(), seq }
    }

    /// Serialize into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.version);
        buf.put_u8(self.opcode as u8);
        buf.put_u8(self.flags.to_byte());
        buf.put_u8(0); // reserved
        buf.put_u32(self.seq);
    }

    /// Deserialize from `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let version = buf.get_u8();
        if version != DTA_VERSION {
            return Err(ReportError::BadVersion(version));
        }
        let opcode = DtaOpcode::from_u8(buf.get_u8())?;
        let flags = DtaFlags::from_byte(buf.get_u8());
        let _rsvd = buf.get_u8();
        let seq = buf.get_u32();
        Ok(DtaHeader { version, opcode, flags, seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn header_roundtrip() {
        let mut h = DtaHeader::new(DtaOpcode::Postcarding, 0xDEAD_BEEF);
        h.flags.immediate = true;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), DtaHeader::LEN);
        let got = DtaHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = BytesMut::new();
        DtaHeader::new(DtaOpcode::Append, 1).encode(&mut buf);
        buf[0] = 99;
        assert!(matches!(
            DtaHeader::decode(&mut buf.freeze()),
            Err(ReportError::BadVersion(99))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut buf = BytesMut::new();
        DtaHeader::new(DtaOpcode::Append, 1).encode(&mut buf);
        buf[1] = 0;
        assert!(matches!(
            DtaHeader::decode(&mut buf.freeze()),
            Err(ReportError::UnknownOpcode(0))
        ));
    }

    #[test]
    fn truncated_rejected() {
        let mut buf = BytesMut::new();
        DtaHeader::new(DtaOpcode::KeyWrite, 1).encode(&mut buf);
        let mut short = buf.freeze().slice(0..4);
        assert!(matches!(
            DtaHeader::decode(&mut short),
            Err(ReportError::Truncated { .. })
        ));
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for imm in [false, true] {
            for nack in [false, true] {
                let f = DtaFlags { immediate: imm, nack_on_drop: nack };
                assert_eq!(DtaFlags::from_byte(f.to_byte()), f);
            }
        }
    }

    #[test]
    fn unknown_flag_bits_ignored() {
        let f = DtaFlags::from_byte(0b1111_1100);
        assert!(!f.immediate);
        assert!(!f.nack_on_drop);
    }
}

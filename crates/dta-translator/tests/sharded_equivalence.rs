//! Sharded-vs-single-threaded equivalence.
//!
//! For a randomized report stream, the [`ShardedTranslator`] at N ∈ {1,2,4}
//! shards and the single-threaded [`Translator`] must leave **byte-identical
//! collector memory** after flush. This is the correctness contract of the
//! sharding design: key-partitioned dispatch preserves per-key (and
//! per-list) order, Key-Increment commutes, and nothing else about
//! interleaving may be observable in the stores.
//!
//! Sharding intentionally does NOT preserve order *across* keys, so the
//! generated stream avoids the one case where cross-key order is
//! observable: distinct keys whose redundancy slots collide in the same
//! store (last-writer-wins races that even real deployments consider
//! unresolved hash collisions). Key pools are pre-filtered to be
//! slot-disjoint; everything else — op mix, interleaving, values, repeats —
//! is driven by the property inputs.

use dta_collector::layout::{KwLayout, PostcardLayout};
use dta_collector::service::{
    CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta_core::{DtaReport, TelemetryKey};
use dta_hash::family::slot_of;
use dta_hash::HashFamily;
use dta_rdma::cm::CmRequester;
use dta_translator::{ShardedConfig, ShardedTranslator, Translator, TranslatorConfig};
use proptest::prelude::*;

const KW_REDUNDANCY: usize = 2;
const POSTCARD_VALUES: u32 = 1 << 12;
const APPEND_BATCH: usize = 4;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        kw_bytes: 1 << 16,
        postcard_bytes: 1 << 16,
        append_lists: 8,
        append_entries: 512,
        cms_slots: 1 << 12,
        ..ServiceConfig::default()
    }
}

fn translator_config() -> TranslatorConfig {
    TranslatorConfig {
        append_batch: APPEND_BATCH,
        postcard_values: POSTCARD_VALUES,
        ..TranslatorConfig::default()
    }
}

/// Keys whose Key-Write redundancy slots are pairwise disjoint (and
/// disjoint from each other's), so final slot bytes depend only on per-key
/// order — the thing sharding guarantees.
fn kw_key_pool(n: usize) -> Vec<TelemetryKey> {
    let cfg = service_config();
    let layout = KwLayout::with_capacity(0, cfg.kw_bytes, cfg.kw_value_bytes);
    let family = HashFamily::new(KW_REDUNDANCY);
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut id = 0u64;
    while out.len() < n {
        let k = TelemetryKey::from_u64(id);
        id += 1;
        let slots: Vec<u64> = (0..KW_REDUNDANCY)
            .map(|i| slot_of(family.hash(i, k.as_bytes()), layout.slots))
            .collect();
        if slots.iter().any(|s| used.contains(s)) {
            continue;
        }
        used.extend(slots);
        out.push(k);
    }
    out
}

/// Postcard flow keys with pairwise-disjoint chunk slots (redundancy 1).
fn postcard_key_pool(n: usize) -> Vec<TelemetryKey> {
    let cfg = service_config();
    let layout =
        PostcardLayout::with_capacity(0, cfg.postcard_bytes, cfg.postcard_hops, cfg.postcard_bits);
    let family = HashFamily::new(1);
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut id = 1u64 << 32; // distinct id space from the KW pool
    while out.len() < n {
        let k = TelemetryKey::from_u64(id);
        id += 1;
        let chunk = slot_of(family.hash(0, k.as_bytes()), layout.chunks);
        if used.insert(chunk) {
            out.push(k);
        }
    }
    out
}

/// Decode one raw 64-bit property input into reports. Postcard flows expand
/// to their full 5-hop path, delivered contiguously (a partial or
/// interleaved flow would make translator-cache eviction order observable,
/// which sharding does not and need not preserve).
fn decode_op(raw: u64, kw: &[TelemetryKey], pc: &[TelemetryKey], out: &mut Vec<DtaReport>) {
    let x = ((raw >> 2) & 0xFFFF) as usize;
    let v = (raw >> 18) as u32;
    match raw & 3 {
        0 => out.push(DtaReport::key_write(
            0,
            kw[x % kw.len()],
            KW_REDUNDANCY as u8,
            v.to_be_bytes().to_vec(),
        )),
        1 => out.push(DtaReport::key_increment(
            0,
            TelemetryKey::from_u64(0xC0FF_EE00_0000 + (x as u64 % 32)),
            2,
            (v as u64 % 256) + 1,
        )),
        2 => {
            let key = pc[x % pc.len()];
            for hop in 0..5u8 {
                out.push(DtaReport::postcard(0, key, hop, 5, (v + hop as u32) % POSTCARD_VALUES));
            }
        }
        _ => out.push(DtaReport::append(0, x as u32 % 8, v.to_be_bytes().to_vec())),
    }
}

/// Every region's bytes, rkey-keyed, after the run.
fn snapshot(svc: &CollectorService) -> Vec<(u32, Vec<u8>)> {
    let mut regions: Vec<(u32, Vec<u8>)> = svc
        .nic
        .memory
        .regions()
        .map(|r| (r.rkey, r.peek(r.base_va, r.len()).unwrap()))
        .collect();
    regions.sort_by_key(|(rkey, _)| *rkey);
    regions
}

fn run_single(reports: &[DtaReport]) -> Vec<(u32, Vec<u8>)> {
    let mut svc = CollectorService::new(service_config());
    let mut tr = Translator::new(translator_config());
    for (service, qpn) in [
        (SERVICE_KW, 1u32),
        (SERVICE_POSTCARD, 2),
        (SERVICE_APPEND, 3),
        (SERVICE_CMS, 4),
    ] {
        let req = CmRequester::new(qpn, 0);
        let reply = svc.handle_cm(&req.request(service));
        let (qp, params) = req.complete(&reply).unwrap();
        match service {
            SERVICE_KW => tr.connect_key_write(qp, params),
            SERVICE_POSTCARD => tr.connect_postcarding(qp, params),
            SERVICE_APPEND => tr.connect_append(qp, params),
            SERVICE_CMS => tr.connect_key_increment(qp, params),
            _ => unreachable!(),
        }
    }
    for r in reports {
        for pkt in tr.process(0, r).packets {
            svc.nic_ingress(&pkt);
        }
    }
    for pkt in tr.flush(0).packets {
        svc.nic_ingress(&pkt);
    }
    snapshot(&svc)
}

fn run_sharded(shards: usize, reports: &[DtaReport]) -> Vec<(u32, Vec<u8>)> {
    let mut svc = CollectorService::new(service_config());
    let mut st = ShardedTranslator::connect(
        ShardedConfig {
            shards,
            translator: translator_config(),
            ..ShardedConfig::default()
        },
        &mut svc,
    );
    st.ingest_batch(0, reports.iter().cloned());
    st.wait_idle();
    let report = st.flush_and_join();
    assert_eq!(report.translator.reports_in, reports.len() as u64);
    snapshot(&svc)
}

proptest! {
    #[test]
    fn sharded_memory_equals_single_threaded(
        raw in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let kw = kw_key_pool(48);
        let pc = postcard_key_pool(24);
        let mut reports = Vec::new();
        for r in &raw {
            decode_op(*r, &kw, &pc, &mut reports);
        }
        let reference = run_single(&reports);
        for shards in [1usize, 2, 4] {
            let got = run_sharded(shards, &reports);
            prop_assert_eq!(
                reference.len(),
                got.len(),
                "region count differs at {} shards", shards
            );
            for ((rkey_a, bytes_a), (rkey_b, bytes_b)) in reference.iter().zip(&got) {
                prop_assert_eq!(rkey_a, rkey_b);
                prop_assert!(
                    bytes_a == bytes_b,
                    "collector memory diverged at {} shards (rkey {:#x}): first diff at byte {:?}",
                    shards,
                    rkey_a,
                    bytes_a.iter().zip(bytes_b.iter()).position(|(a, b)| a != b)
                );
            }
        }
    }
}

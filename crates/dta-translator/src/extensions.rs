//! Query-enhancing translator extensions (§7).
//!
//! "In some cases, queries may be known ahead of time, in which case our
//! translator can aid in their processing. For example, while switches can
//! measure the queuing latency of a flow, we are often interested in knowing
//! the end to end delay, which can be expressed as:
//! `SELECT flowID, path WHERE SUM(latency) > T`.
//! Knowing the query ahead of time, our translator can wait for postcards
//! from all switches through which the SYN packet of the flow was routed,
//! sum their latency, and report it if it is over the threshold."

use std::collections::HashMap;

use dta_core::{DtaReport, TelemetryKey};

/// A matched flow: its key, per-hop latencies, and the total that crossed
/// the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyMatch {
    /// The flow that exceeded the threshold.
    pub key: TelemetryKey,
    /// Per-hop latencies (ns), in hop order.
    pub per_hop: Vec<u32>,
    /// The end-to-end sum.
    pub total: u64,
}

/// The `SELECT flowID, path WHERE SUM(latency) > T` standing query,
/// evaluated *at the translator* over intercepted latency postcards.
#[derive(Debug)]
pub struct LatencySumQuery {
    /// Threshold `T` in nanoseconds.
    pub threshold: u64,
    /// Hop bound `B`.
    pub hops: u8,
    /// Append list matched flows are reported to.
    pub report_list: u32,
    pending: HashMap<TelemetryKey, Vec<Option<u32>>>,
    seq: u32,
    /// Flows evaluated (all hops seen).
    pub evaluated: u64,
    /// Flows that crossed the threshold.
    pub matched: u64,
}

impl LatencySumQuery {
    /// Standing query with threshold `threshold` ns.
    pub fn new(threshold: u64, hops: u8, report_list: u32) -> Self {
        assert!(hops >= 1);
        LatencySumQuery {
            threshold,
            hops,
            report_list,
            pending: HashMap::new(),
            seq: 0,
            evaluated: 0,
            matched: 0,
        }
    }

    /// Feed one latency postcard `(flow, hop, latency_ns)`. When all `B`
    /// hops of a flow have reported, the sum is evaluated; a match produces
    /// an Append report for the operator's alert list and the match record.
    pub fn on_postcard(
        &mut self,
        key: &TelemetryKey,
        hop: u8,
        path_len: u8,
        latency_ns: u32,
    ) -> Option<(LatencyMatch, DtaReport)> {
        assert!(hop < self.hops);
        let needed = if path_len == 0 { self.hops } else { path_len.min(self.hops) };
        let entry = self.pending.entry(*key).or_insert_with(|| vec![None; self.hops as usize]);
        entry[hop as usize] = Some(latency_ns);
        let have = entry.iter().take(needed as usize).filter(|v| v.is_some()).count();
        if have < needed as usize {
            return None;
        }
        let per_hop: Vec<u32> = entry
            .iter()
            .take(needed as usize)
            .map(|v| v.expect("counted above"))
            .collect();
        self.pending.remove(key);
        self.evaluated += 1;
        let total: u64 = per_hop.iter().map(|v| *v as u64).sum();
        if total <= self.threshold {
            return None;
        }
        self.matched += 1;
        self.seq = self.seq.wrapping_add(1);
        // Report: flow key (16B) + total latency (8B) into the alert list.
        let mut payload = key.as_bytes().to_vec();
        payload.extend_from_slice(&total.to_be_bytes());
        let report = DtaReport::append(self.seq, self.report_list, payload);
        Some((LatencyMatch { key: *key, per_hop, total }, report))
    }

    /// Flows with partially collected latencies (diagnostics).
    pub fn pending_flows(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> TelemetryKey {
        TelemetryKey::from_u64(i)
    }

    #[test]
    fn sum_over_threshold_matches() {
        let mut q = LatencySumQuery::new(1_000, 5, 9);
        let k = key(1);
        for hop in 0..4u8 {
            assert!(q.on_postcard(&k, hop, 5, 100).is_none());
        }
        // 4x100 + 700 = 1100 > 1000.
        let (m, report) = q.on_postcard(&k, 4, 5, 700).expect("must match");
        assert_eq!(m.total, 1100);
        assert_eq!(m.per_hop, vec![100, 100, 100, 100, 700]);
        assert_eq!(q.matched, 1);
        // The alert report carries key + total.
        assert_eq!(&report.payload[..16], k.as_bytes());
        assert_eq!(&report.payload[16..24], &1100u64.to_be_bytes());
    }

    #[test]
    fn sum_under_threshold_is_silent() {
        let mut q = LatencySumQuery::new(10_000, 5, 9);
        let k = key(2);
        for hop in 0..5u8 {
            assert!(q.on_postcard(&k, hop, 5, 100).is_none());
        }
        assert_eq!(q.evaluated, 1);
        assert_eq!(q.matched, 0);
        assert_eq!(q.pending_flows(), 0, "evaluated flow must clear");
    }

    #[test]
    fn short_paths_evaluate_at_their_length() {
        let mut q = LatencySumQuery::new(150, 5, 9);
        let k = key(3);
        assert!(q.on_postcard(&k, 0, 2, 100).is_none());
        let got = q.on_postcard(&k, 1, 2, 100);
        assert!(got.is_some(), "2-hop path must evaluate at 2 hops");
        assert_eq!(got.unwrap().0.total, 200);
    }

    #[test]
    fn flows_evaluate_independently() {
        let mut q = LatencySumQuery::new(100, 2, 9);
        let a = key(10);
        let b = key(11);
        q.on_postcard(&a, 0, 2, 90);
        q.on_postcard(&b, 0, 2, 10);
        assert_eq!(q.pending_flows(), 2);
        assert!(q.on_postcard(&a, 1, 2, 90).is_some()); // 180 > 100
        assert!(q.on_postcard(&b, 1, 2, 10).is_none()); // 20 <= 100
    }

    #[test]
    fn out_of_order_hops_still_evaluate() {
        let mut q = LatencySumQuery::new(10, 3, 9);
        let k = key(4);
        assert!(q.on_postcard(&k, 2, 3, 5).is_none());
        assert!(q.on_postcard(&k, 0, 3, 5).is_none());
        let got = q.on_postcard(&k, 1, 3, 5).expect("complete");
        assert_eq!(got.0.per_hop, vec![5, 5, 5]);
    }
}

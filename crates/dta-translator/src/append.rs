//! Append batching and per-list head tracking (Algorithm 3).
//!
//! "Append has its logic split between ingress and egress, where ingress is
//! responsible for building batches, and egress tracks per-list memory
//! pointers. Batching of size B is achieved by storing B−1 incoming list
//! entries into SRAM using per-list registers. Every Bth packet in a list
//! will read all stored items, and bring these to the egress pipeline where
//! they are sent as a single RDMA Write packet." (§5.2)

use std::collections::{BTreeSet, HashMap};

use dta_collector::layout::AppendLayout;

/// Maximum simultaneous lists ("our prototype supports tracking up to 131K
/// simultaneous lists").
pub const MAX_LISTS: u32 = 131 * 1024;

/// A batch ready to be written: target address + concatenated entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchWrite {
    /// List the batch belongs to.
    pub list_id: u32,
    /// Target virtual address (start of the batch in the ring).
    pub va: u64,
    /// Concatenated entry bytes (`batch * entry_bytes`).
    pub data: Vec<u8>,
}

/// Ingress batch building + egress head tracking for all lists.
#[derive(Debug)]
pub struct AppendBatcher {
    layout: AppendLayout,
    batch: usize,
    /// Per-list staged entries (the "B−1 entries in SRAM registers").
    staged: HashMap<u32, Vec<u8>>,
    /// Lists with a non-empty partial batch. The timer flush walks only
    /// these instead of scanning all (up to 131K) list ids.
    dirty: BTreeSet<u32>,
    /// Per-list ring head, in entries.
    heads: HashMap<u32, u64>,
    /// Entries accepted.
    pub entries_in: u64,
    /// Batches emitted.
    pub batches_out: u64,
}

impl AppendBatcher {
    /// Batcher over `layout` emitting every `batch` entries.
    ///
    /// # Panics
    /// Panics if `batch` is zero, the ring capacity is not a multiple of the
    /// batch (batches must never straddle the wrap point), or the layout has
    /// more lists than the prototype supports.
    pub fn new(layout: AppendLayout, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        assert_eq!(
            layout.entries_per_list % batch as u64,
            0,
            "ring capacity must be a multiple of the batch size"
        );
        assert!(layout.lists <= MAX_LISTS, "too many lists: {}", layout.lists);
        AppendBatcher {
            layout,
            batch,
            staged: HashMap::new(),
            dirty: BTreeSet::new(),
            heads: HashMap::new(),
            entries_in: 0,
            batches_out: 0,
        }
    }

    /// Configured batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Layout in use.
    pub fn layout(&self) -> &AppendLayout {
        &self.layout
    }

    /// Current head (in entries) of `list`.
    pub fn head(&self, list: u32) -> u64 {
        self.heads.get(&list).copied().unwrap_or(0)
    }

    /// Normalize an entry to the layout's fixed entry width (truncate or
    /// zero-pad — fixed-width entries are what make the ring pollable).
    fn normalize(&self, entry: &[u8]) -> Vec<u8> {
        let w = self.layout.entry_bytes as usize;
        let mut e = entry[..entry.len().min(w)].to_vec();
        e.resize(w, 0);
        e
    }

    /// Stage one entry for `list`; returns the batch write when this entry
    /// was the `B`-th.
    ///
    /// Returns `None` for out-of-range lists (the ASIC would drop).
    pub fn push(&mut self, list: u32, entry: &[u8]) -> Option<BatchWrite> {
        if list >= self.layout.lists {
            return None;
        }
        self.entries_in += 1;
        let entry = self.normalize(entry);
        let staged = self.staged.entry(list).or_default();
        staged.extend_from_slice(&entry);
        if staged.len() < self.batch * self.layout.entry_bytes as usize {
            self.dirty.insert(list);
            return None;
        }
        let data = std::mem::take(staged);
        self.dirty.remove(&list);
        let head = self.heads.entry(list).or_insert(0);
        let va = self.layout.entry_va(list, *head);
        *head = (*head + self.batch as u64) % self.layout.entries_per_list;
        self.batches_out += 1;
        Some(BatchWrite { list_id: list, va, data })
    }

    /// Entries currently staged for `list`.
    pub fn staged_entries(&self, list: u32) -> usize {
        self.staged
            .get(&list)
            .map(|s| s.len() / self.layout.entry_bytes as usize)
            .unwrap_or(0)
    }

    /// Lists currently holding a partial batch, in ascending order — the
    /// timer flush walks exactly these.
    pub fn dirty_lists(&self) -> impl Iterator<Item = u32> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of lists holding a partial batch.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Flush a partial batch for `list` (timer path), zero-padding the tail
    /// of the batch region.
    pub fn flush(&mut self, list: u32) -> Option<BatchWrite> {
        let staged = self.staged.get_mut(&list)?;
        if staged.is_empty() {
            return None;
        }
        self.dirty.remove(&list);
        let mut data = std::mem::take(staged);
        data.resize(self.batch * self.layout.entry_bytes as usize, 0);
        let head = self.heads.entry(list).or_insert(0);
        let va = self.layout.entry_va(list, *head);
        *head = (*head + self.batch as u64) % self.layout.entries_per_list;
        self.batches_out += 1;
        Some(BatchWrite { list_id: list, va, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(lists: u32, entries: u64) -> AppendLayout {
        AppendLayout { base_va: 0x1000, lists, entries_per_list: entries, entry_bytes: 4 }
    }

    #[test]
    fn batch_emits_every_bth_entry() {
        let mut b = AppendBatcher::new(layout(1, 64), 4);
        for i in 0..3u32 {
            assert!(b.push(0, &i.to_be_bytes()).is_none());
        }
        let w = b.push(0, &3u32.to_be_bytes()).expect("4th entry emits");
        assert_eq!(w.va, 0x1000);
        assert_eq!(w.data.len(), 16);
        assert_eq!(&w.data[0..4], &0u32.to_be_bytes());
        assert_eq!(&w.data[12..16], &3u32.to_be_bytes());
    }

    #[test]
    fn consecutive_batches_advance_head() {
        let mut b = AppendBatcher::new(layout(1, 16), 4);
        for i in 0..16u32 {
            if let Some(w) = b.push(0, &i.to_be_bytes()) {
                assert_eq!(w.va, 0x1000 + ((i as u64 - 3) / 4) * 16);
            }
        }
        // Ring wrapped: head back to 0.
        assert_eq!(b.head(0), 0);
    }

    #[test]
    fn ring_wraps_to_base() {
        let mut b = AppendBatcher::new(layout(1, 8), 4);
        for i in 0..8u32 {
            b.push(0, &i.to_be_bytes());
        }
        let w = b.push(0, &99u32.to_be_bytes());
        assert!(w.is_none());
        for i in 0..3u32 {
            if let Some(w) = b.push(0, &i.to_be_bytes()) {
                assert_eq!(w.va, 0x1000, "wrapped batch writes at ring start");
            }
        }
    }

    #[test]
    fn lists_batch_independently() {
        let mut b = AppendBatcher::new(layout(4, 16), 2);
        assert!(b.push(0, &[1, 0, 0, 0]).is_none());
        assert!(b.push(1, &[2, 0, 0, 0]).is_none());
        let w0 = b.push(0, &[3, 0, 0, 0]).unwrap();
        let w1 = b.push(1, &[4, 0, 0, 0]).unwrap();
        assert_eq!(w0.list_id, 0);
        assert_eq!(w1.list_id, 1);
        assert_ne!(w0.va, w1.va);
    }

    #[test]
    fn batch_one_is_unbatched() {
        let mut b = AppendBatcher::new(layout(1, 16), 1);
        let w = b.push(0, &[7, 7, 7, 7]).expect("every entry emits");
        assert_eq!(w.data, vec![7, 7, 7, 7]);
    }

    #[test]
    fn short_entries_zero_padded() {
        let mut b = AppendBatcher::new(layout(1, 16), 1);
        let w = b.push(0, &[9]).unwrap();
        assert_eq!(w.data, vec![9, 0, 0, 0]);
    }

    #[test]
    fn out_of_range_list_dropped() {
        let mut b = AppendBatcher::new(layout(2, 16), 2);
        assert!(b.push(5, &[0; 4]).is_none());
        assert_eq!(b.entries_in, 0);
    }

    #[test]
    fn flush_pads_partial_batch() {
        let mut b = AppendBatcher::new(layout(1, 16), 4);
        b.push(0, &[1, 1, 1, 1]);
        b.push(0, &[2, 2, 2, 2]);
        let w = b.flush(0).expect("partial batch flushed");
        assert_eq!(w.data.len(), 16);
        assert_eq!(&w.data[0..4], &[1, 1, 1, 1]);
        assert_eq!(&w.data[8..16], &[0; 8]);
        assert!(b.flush(0).is_none());
    }

    #[test]
    #[should_panic]
    fn ring_not_multiple_of_batch_rejected() {
        let _ = AppendBatcher::new(layout(1, 10), 4);
    }

    #[test]
    fn staged_counter_tracks() {
        let mut b = AppendBatcher::new(layout(1, 16), 4);
        assert_eq!(b.staged_entries(0), 0);
        b.push(0, &[0; 4]);
        b.push(0, &[0; 4]);
        assert_eq!(b.staged_entries(0), 2);
    }

    #[test]
    fn dirty_tracking_follows_partial_batches() {
        let mut b = AppendBatcher::new(layout(8, 16), 4);
        assert_eq!(b.dirty_count(), 0);
        // Partial batches on lists 2 and 5.
        b.push(2, &[0; 4]);
        b.push(5, &[0; 4]);
        b.push(5, &[0; 4]);
        assert_eq!(b.dirty_lists().collect::<Vec<_>>(), vec![2, 5]);
        // Completing list 5's batch cleans it.
        b.push(5, &[0; 4]);
        assert!(b.push(5, &[0; 4]).is_some());
        assert_eq!(b.dirty_lists().collect::<Vec<_>>(), vec![2]);
        // Flushing list 2 cleans it too.
        assert!(b.flush(2).is_some());
        assert_eq!(b.dirty_count(), 0);
        // Out-of-range pushes never dirty anything.
        b.push(99, &[0; 4]);
        assert_eq!(b.dirty_count(), 0);
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    /// "Tests show that the translator can support hundreds of thousands of
    /// simultaneous lists" (§6.4) — exercise the prototype's 131K bound.
    #[test]
    fn hundred_thirty_one_thousand_simultaneous_lists() {
        let layout = AppendLayout {
            base_va: 0,
            lists: MAX_LISTS,
            entries_per_list: 16,
            entry_bytes: 4,
        };
        let mut b = AppendBatcher::new(layout, 4);
        // One entry in every list (all staged), then fill one batch each in
        // a sample of lists spread across the id space.
        for list in (0..MAX_LISTS).step_by(257) {
            for i in 0..4u32 {
                let w = b.push(list, &i.to_be_bytes());
                if i == 3 {
                    let w = w.expect("4th entry flushes");
                    assert_eq!(w.va, layout.entry_va(list, 0));
                } else {
                    assert!(w.is_none());
                }
            }
        }
        assert_eq!(b.batches_out, (MAX_LISTS as u64).div_ceil(257));
        // The very last list id is valid; one past it is not.
        assert!(b.push(MAX_LISTS - 1, &[0; 4]).is_none());
        assert_eq!(b.staged_entries(MAX_LISTS - 1), 1);
        assert!(b.push(MAX_LISTS, &[0; 4]).is_none());
        assert_eq!(b.staged_entries(MAX_LISTS), 0, "out-of-range list rejected");
    }
}

//! The DTA translator — the paper's core contribution.
//!
//! The translator is the collector's last-hop (ToR) switch. It intercepts
//! DTA reports addressed to the collector, and converts them into standard
//! RoCEv2 operations against the collector's registered memory, "completely
//! substituting the DTA headers with the specific RoCEv2 headers required by
//! the DTA operation" (§5.2). Along the way it:
//!
//! * generates the `N`-redundant copies for Key-Write / Key-Increment /
//!   Postcarding through the multicast engine,
//! * aggregates per-flow postcards in an SRAM cache so a 5-hop path costs a
//!   single RDMA WRITE ([`postcard_cache`]),
//! * batches Append entries so one WRITE carries `B` reports ([`append`]),
//! * rate-limits RDMA generation toward congested collectors, optionally
//!   NACKing reporters ([`ratelimit`]),
//! * keeps per-QP packet sequence numbers and resynchronizes after NAKs,
//! * and accounts its Tofino resource footprint ([`resources`], Table 3).
//!
//! The single-threaded dataplane lives in [`translator`]; [`shard`] runs
//! `N` of them as a key-partitioned multi-threaded pipeline (the software
//! analogue of the Tofino's parallel pipes), with [`spsc`] providing the
//! bounded ingest→shard report queues.

// Lint floor (enforced by `dta-lint` + clippy -D warnings, see DESIGN.md
// "Static analysis"): unsafe operations must be explicitly scoped even
// inside unsafe fns, and every public type must be debuggable.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod append;
pub mod extensions;
pub mod failover;
pub mod fleet_query;
pub mod node;
pub mod partition;
mod pool;
pub mod postcard_cache;
pub mod ratelimit;
pub mod rebalance;
pub mod resources;
pub mod shard;
pub mod spsc;
pub mod translator;

pub use append::AppendBatcher;
pub use extensions::{LatencyMatch, LatencySumQuery};
pub use failover::{
    CollectorRoutingTable, FailoverStats, FleetAdmin, FleetConfig, FleetEvent, FleetRunReport,
    FleetShardedNode, FleetShardedRunReport, FleetTranslatorNode, LedgerEntry, ReplayLedger,
};
pub use fleet_query::FleetQueryEngine;
pub use node::{ShardedTranslatorNode, TranslatorNode};
pub use partition::Partitioner;
pub use postcard_cache::{CacheEmission, PostcardCache};
pub use ratelimit::{RateLimiter, RateLimiterConfig};
pub use rebalance::{
    MigPrimitive, MigrationFaults, MigrationLedger, RebalanceConfig, RebalanceDriver,
    RebalanceStats, WireEmission, WireKind,
};
pub use resources::{translator_footprint, TranslatorFeatures};
pub use shard::{
    NackRecord, ReportOrigin, ShardRunReport, ShardedConfig, ShardedRunReport, ShardedTranslator,
};
pub use translator::{Translator, TranslatorConfig, TranslatorOutput, TranslatorStats};

//! The Postcarding aggregation cache.
//!
//! "Postcarding uses an SRAM-based hash table with 32K slots storing
//! fixed-size 32-bit payloads. ... Emissions are triggered either by a
//! collision or when a row counter reaches the path length." (§5.2)
//!
//! Each row caches the encoded per-hop words of one in-flight flow. When the
//! row completes (all `path_len` postcards seen) — or another flow collides
//! into the row — the row is emitted as a single chunk write. Early
//! (collision-forced) emissions produce partial paths; Figure 14 counts them
//! as failures.

use dta_core::TelemetryKey;
use dta_hash::{Crc32, CrcParams};
use dta_switch::RegisterArray;

/// Maximum hop bound supported by a cache row.
pub const MAX_HOPS: usize = 8;

/// One cached row: the flow id tag, its per-hop encoded words, and progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Row {
    key: TelemetryKey,
    words: [u32; MAX_HOPS],
    /// Bitmask of hops present.
    present: u8,
    /// Path length once known (0 = unknown).
    path_len: u8,
}

impl Default for Row {
    fn default() -> Self {
        Row { key: TelemetryKey([0; 16]), words: [0; MAX_HOPS], present: 0, path_len: 0 }
    }
}

/// An emitted aggregate: the flow key plus the hops collected so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEmission {
    /// Flow the chunk belongs to.
    pub key: TelemetryKey,
    /// Encoded word per hop; `None` for hops never seen (the translator
    /// fills these with blank codewords before the RDMA write).
    pub words: Vec<Option<u32>>,
    /// Whether the aggregate was complete (reached its path length) or was
    /// evicted early by a collision.
    pub complete: bool,
}

/// Statistics for Figure 14.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Postcards inserted.
    pub postcards: u64,
    /// Complete aggregates emitted.
    pub complete_emissions: u64,
    /// Early (collision) emissions.
    pub early_emissions: u64,
}

/// The SRAM postcard cache.
#[derive(Debug)]
pub struct PostcardCache {
    rows: RegisterArray<Row>,
    occupied: Vec<bool>,
    /// Journal of row indexes that ever became occupied, so drop can
    /// return the row storage to the recycling pool after zeroing only the
    /// rows a run actually touched. `u32::MAX` capacity sentinel: when the
    /// journal overflows [`PostcardCache::journal_cap`], it is abandoned
    /// and drop falls back to a full wipe.
    touched: Vec<u32>,
    touched_overflow: bool,
    index: Crc32,
    hops: u8,
    /// Counters.
    pub stats: CacheStats,
}

/// Recycling pool for row/occupancy storage (keyed by row count). A
/// scenario run builds translator caches measured in MBs; repeated
/// zeroed allocations of that size degrade to explicit memsets once
/// glibc's adaptive mmap threshold rises.
#[allow(clippy::type_complexity)] // pooled pair, not worth a named struct
fn row_pool() -> &'static std::sync::Mutex<Vec<(Vec<Row>, Vec<bool>)>> {
    static POOL: std::sync::OnceLock<std::sync::Mutex<Vec<(Vec<Row>, Vec<bool>)>>> =
        std::sync::OnceLock::new();
    POOL.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Pooled cache-storage cap (buffers, not bytes).
const ROW_POOL_MAX: usize = 32;

impl PostcardCache {
    /// Cache with `slots` rows for paths of up to `hops` hops.
    ///
    /// # Panics
    /// Panics when `hops > MAX_HOPS` or `slots == 0`.
    pub fn new(slots: usize, hops: u8) -> Self {
        assert!(slots > 0, "cache must have at least one row");
        assert!((hops as usize) <= MAX_HOPS, "hop bound {hops} exceeds {MAX_HOPS}");
        let pooled = row_pool().lock().ok().and_then(|mut pool| {
            pool.iter()
                .position(|(cells, _)| cells.len() == slots)
                .map(|i| pool.swap_remove(i))
        });
        let (rows, occupied) = match pooled {
            Some((cells, occupied)) => (RegisterArray::from_cells(cells), occupied),
            // SAFETY: `Row`'s default is the all-zero pattern (zero key,
            // zero words, nothing present).
            None => (unsafe { RegisterArray::new_zeroed(slots) }, vec![false; slots]),
        };
        PostcardCache {
            rows,
            occupied,
            touched: Vec::new(),
            touched_overflow: false,
            index: Crc32::new(CrcParams::IEEE),
            hops,
            stats: CacheStats::default(),
        }
    }

    /// Journal bound: past this, zero-on-drop degrades to a full wipe.
    fn journal_cap(&self) -> usize {
        (self.rows.len() / 8).max(64)
    }

    /// Number of rows.
    pub fn slots(&self) -> usize {
        self.rows.len()
    }

    /// Hop bound `B`.
    pub fn hops(&self) -> u8 {
        self.hops
    }

    fn row_index(&self, key: &TelemetryKey) -> usize {
        (self.index.compute(key.as_bytes()) as usize) % self.rows.len()
    }

    /// Insert one postcard's encoded `word`. Returns any emission this
    /// insertion triggered (a completed row, a collision eviction, or both a
    /// collision eviction followed later by the new flow's completion).
    ///
    /// `path_len = 0` means the egress did not provide the length; the row
    /// then completes only when all `B` hops are present.
    pub fn insert(
        &mut self,
        key: &TelemetryKey,
        hop: u8,
        path_len: u8,
        word: u32,
    ) -> Vec<CacheEmission> {
        assert!(hop < self.hops, "hop {hop} out of bound {}", self.hops);
        self.stats.postcards += 1;
        let idx = self.row_index(key);
        let mut out = Vec::new();

        let mut row = self.rows.read(idx);
        if self.occupied[idx] && row.key != *key {
            // Collision: evict the current occupant early.
            self.stats.early_emissions += 1;
            out.push(self.emission_from(&row, false));
            self.occupied[idx] = false;
            row = Row::default();
        }
        if !self.occupied[idx] {
            row = Row { key: *key, ..Row::default() };
            self.occupied[idx] = true;
            if self.touched_overflow || self.touched.len() >= self.journal_cap() {
                self.touched_overflow = true;
            } else {
                self.touched.push(idx as u32);
            }
        }

        row.words[hop as usize] = word;
        row.present |= 1 << hop;
        if path_len > 0 {
            row.path_len = path_len;
        }

        let needed = if row.path_len > 0 { row.path_len } else { self.hops };
        let have = row.present.count_ones() as u8;
        // Complete when every hop below `needed` has arrived.
        let full_mask = (1u16 << needed) - 1;
        if have >= needed && (row.present as u16 & full_mask) == full_mask {
            self.stats.complete_emissions += 1;
            out.push(self.emission_from(&row, true));
            self.occupied[idx] = false;
            self.rows.write(idx, Row::default());
        } else {
            self.rows.write(idx, row);
        }
        out
    }

    fn emission_from(&self, row: &Row, complete: bool) -> CacheEmission {
        let words = (0..self.hops)
            .map(|h| (row.present & (1 << h) != 0).then(|| row.words[h as usize]))
            .collect();
        CacheEmission { key: row.key, words, complete }
    }

    /// Flush every occupied row (shutdown / timer path). All flushed rows
    /// count as early emissions.
    pub fn flush(&mut self) -> Vec<CacheEmission> {
        let mut out = Vec::new();
        for idx in 0..self.rows.len() {
            if self.occupied[idx] {
                let row = self.rows.read(idx);
                self.stats.early_emissions += 1;
                out.push(self.emission_from(&row, false));
                self.occupied[idx] = false;
                self.rows.write(idx, Row::default());
            }
        }
        out
    }

    /// SRAM bytes the cache occupies.
    pub fn sram_bytes(&self) -> usize {
        self.rows.sram_bytes()
    }
}

impl Drop for PostcardCache {
    fn drop(&mut self) {
        // Re-zero only the rows this cache ever occupied (rows written
        // back to `Row::default()` are zero already; re-zeroing them is an
        // idempotent handful of bytes), then recycle the storage.
        let mut cells = self.rows.take_cells();
        if cells.is_empty() {
            return;
        }
        if self.touched_overflow {
            cells.fill(Row::default());
        } else {
            for &idx in &self.touched {
                cells[idx as usize] = Row::default();
            }
        }
        self.occupied.fill(false);
        if let Ok(mut pool) = row_pool().lock() {
            if pool.len() < ROW_POOL_MAX {
                pool.push((cells, std::mem::take(&mut self.occupied)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> TelemetryKey {
        TelemetryKey::from_u64(i)
    }

    #[test]
    fn five_postcards_complete_a_row() {
        let mut c = PostcardCache::new(1024, 5);
        let k = key(1);
        for hop in 0..4 {
            assert!(c.insert(&k, hop, 5, 100 + hop as u32).is_empty());
        }
        let em = c.insert(&k, 4, 5, 104);
        assert_eq!(em.len(), 1);
        assert!(em[0].complete);
        assert_eq!(
            em[0].words,
            vec![Some(100), Some(101), Some(102), Some(103), Some(104)]
        );
        assert_eq!(c.stats.complete_emissions, 1);
    }

    #[test]
    fn short_path_completes_at_declared_length() {
        let mut c = PostcardCache::new(64, 5);
        let k = key(2);
        assert!(c.insert(&k, 0, 3, 7).is_empty());
        assert!(c.insert(&k, 1, 3, 8).is_empty());
        let em = c.insert(&k, 2, 3, 9);
        assert_eq!(em.len(), 1);
        assert!(em[0].complete);
        assert_eq!(em[0].words, vec![Some(7), Some(8), Some(9), None, None]);
    }

    #[test]
    fn out_of_order_postcards_still_complete() {
        let mut c = PostcardCache::new(64, 5);
        let k = key(3);
        for hop in [4u8, 0, 3, 1] {
            assert!(c.insert(&k, hop, 5, hop as u32).is_empty());
        }
        let em = c.insert(&k, 2, 5, 2);
        assert_eq!(em.len(), 1);
        assert!(em[0].complete);
    }

    #[test]
    fn collision_forces_early_emission() {
        // Single-row cache: every distinct flow collides.
        let mut c = PostcardCache::new(1, 5);
        let a = key(10);
        let b = key(20);
        assert!(c.insert(&a, 0, 5, 1).is_empty());
        assert!(c.insert(&a, 1, 5, 2).is_empty());
        let em = c.insert(&b, 0, 5, 9);
        assert_eq!(em.len(), 1);
        assert!(!em[0].complete);
        assert_eq!(em[0].key, a);
        assert_eq!(em[0].words, vec![Some(1), Some(2), None, None, None]);
        assert_eq!(c.stats.early_emissions, 1);
    }

    #[test]
    fn flush_evicts_partial_rows() {
        let mut c = PostcardCache::new(1024, 5);
        c.insert(&key(1), 0, 5, 1);
        c.insert(&key(2), 0, 5, 2);
        let flushed = c.flush();
        assert_eq!(flushed.len(), 2);
        assert!(flushed.iter().all(|e| !e.complete));
        // A second flush is a no-op.
        assert!(c.flush().is_empty());
    }

    #[test]
    fn duplicate_hop_overwrites_word() {
        let mut c = PostcardCache::new(64, 5);
        let k = key(4);
        c.insert(&k, 0, 5, 1);
        c.insert(&k, 0, 5, 2); // retransmitted postcard with new value
        for hop in 1..4 {
            c.insert(&k, hop, 5, 0);
        }
        let em = c.insert(&k, 4, 5, 0);
        assert_eq!(em[0].words[0], Some(2));
    }

    #[test]
    fn unknown_path_len_waits_for_all_b_hops() {
        let mut c = PostcardCache::new(64, 5);
        let k = key(5);
        for hop in 0..4 {
            assert!(c.insert(&k, hop, 0, hop as u32).is_empty());
        }
        let em = c.insert(&k, 4, 0, 4);
        assert_eq!(em.len(), 1);
        assert!(em[0].complete);
    }

    #[test]
    fn sram_accounting_32k_slots() {
        let c = PostcardCache::new(32 * 1024, 5);
        // Row is key(16) + words(32) + flags: the prototype's "32K slots
        // storing fixed-size 32-bit payloads" maps to 32K rows here.
        assert!(c.sram_bytes() >= 32 * 1024 * 36);
    }
}

//! The translator as a simulated network node.
//!
//! Deployed as an *interceptor* on the collector's ToR: every packet
//! transiting the switch is inspected; DTA reports (UDP port 40080) are
//! translated into RoCEv2 packets toward the collector, RoCE responses
//! (UDP port 4791) feed queue-pair resynchronization, and everything else is
//! forwarded untouched ("basic user-traffic forwarding", §5.2).

use dta_collector::service::CollectorService;
use dta_core::framing::UdpPacket;
use dta_core::{DtaReport, DTA_UDP_PORT};
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};
use dta_rdma::packet::{RocePacket, ROCE_UDP_PORT};

use crate::shard::{NackRecord, ReportOrigin, ShardedConfig, ShardedRunReport, ShardedTranslator};
use crate::translator::Translator;

// The NACK wire format lives in `dta-core` (both the translator and the
// reporter speak it); re-exported here for source compatibility.
pub use dta_core::nack::{decode_nack, encode_nack, DTA_NACK_PORT, NACK_MAGIC};

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslatorNodeStats {
    /// DTA reports decoded.
    pub dta_in: u64,
    /// Malformed packets dropped.
    pub malformed: u64,
    /// Non-DTA packets forwarded.
    pub forwarded: u64,
    /// RoCE responses consumed.
    pub roce_responses: u64,
}

/// The translator wrapped as a [`NetNode`].
#[derive(Debug)]
pub struct TranslatorNode {
    /// The translation dataplane.
    pub translator: Translator,
    my_id: NodeId,
    my_ip: u32,
    collector_id: NodeId,
    collector_ip: u32,
    /// Recycled translation output (one RoCE packet vector per node, not
    /// per report).
    scratch: crate::translator::TranslatorOutput,
    /// Counters.
    pub stats: TranslatorNodeStats,
}

impl TranslatorNode {
    /// Wrap `translator` at node `my_id`/`my_ip`, fronting the collector at
    /// `collector_id`/`collector_ip`.
    pub fn new(
        translator: Translator,
        my_id: NodeId,
        my_ip: u32,
        collector_id: NodeId,
        collector_ip: u32,
    ) -> Self {
        TranslatorNode {
            translator,
            my_id,
            my_ip,
            collector_id,
            collector_ip,
            scratch: crate::translator::TranslatorOutput::default(),
            stats: TranslatorNodeStats::default(),
        }
    }

    fn roce_to_emission(&self, roce: &RocePacket) -> Emission {
        let udp = UdpPacket::frame(
            self.my_ip,
            ROCE_UDP_PORT,
            self.collector_ip,
            ROCE_UDP_PORT,
            roce.encode(),
        );
        Emission::now(Packet::rdma(self.my_id, self.collector_id, udp.encode()))
    }
}

impl NetNode for TranslatorNode {
    fn receive(&mut self, now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        let Ok(udp) = UdpPacket::decode(packet.payload.clone()) else {
            self.stats.malformed += 1;
            return;
        };
        match udp.udp.dst_port {
            DTA_UDP_PORT => {
                let Ok(report) = DtaReport::decode(udp.payload.clone()) else {
                    self.stats.malformed += 1;
                    return;
                };
                self.stats.dta_in += 1;
                let reporter_ip = udp.ip.src;
                let reporter_node = packet.src;
                let mut translated = std::mem::take(&mut self.scratch);
                self.translator
                    .process_batch(now.as_nanos(), std::slice::from_ref(&report), &mut translated);
                out.extend(translated.packets.iter().map(|p| self.roce_to_emission(p)));
                for &seq in &translated.nacked {
                    let nack = UdpPacket::frame(
                        self.my_ip,
                        DTA_NACK_PORT,
                        reporter_ip,
                        udp.udp.src_port,
                        encode_nack(seq),
                    );
                    out.push(Emission::now(Packet::new(self.my_id, reporter_node, nack.encode())));
                }
                self.scratch = translated;
            }
            ROCE_UDP_PORT => {
                // A response from the collector (ACK/NAK).
                if let Ok(roce) = RocePacket::decode(udp.payload.clone()) {
                    self.stats.roce_responses += 1;
                    self.translator.on_roce_response(&roce);
                } else {
                    self.stats.malformed += 1;
                }
            }
            _ => {
                // User traffic: forward toward its destination untouched.
                self.stats.forwarded += 1;
                out.push(Emission::now(packet));
            }
        }
    }

    fn tick(&mut self, now: SimTime, out: &mut Vec<Emission>) -> bool {
        let flushed = self.translator.flush(now.as_nanos());
        out.extend(flushed.packets.iter().map(|p| self.roce_to_emission(p)));
        true // flushes recur for as long as the harness schedules them
    }
}

/// The sharded translator pipeline wrapped as an intercepting [`NetNode`].
///
/// The single-threaded [`TranslatorNode`] converts each report into RoCE
/// packets that traverse the simulated ToR→collector link. The sharded node
/// models the same deployment one level deeper: the translator and the
/// collector NIC share the rack, and the PR 2 pipeline
/// ([`crate::ShardedTranslator`]) carries reports from ingest through
/// per-shard translators and dedicated NIC endpoints *directly into the
/// collector's striped memory* — the RDMA hop is intra-rack and modeled at
/// the memory level, so network faults apply to the report path (where the
/// paper's best-effort claim lives), not to the lossless RoCE hop.
///
/// Differences from the single-threaded node, by design:
///
/// * no RoCE packets are emitted onto the network (shard endpoints execute
///   and consume responses in-process, feeding NAKs straight back to their
///   translator);
/// * reporter NACKs are emitted *asynchronously*: the rate-limit decision
///   happens on a worker thread after the ingest thread has already
///   returned to the engine, so each shard records the dropped seqs (with
///   their return addresses) onto a bounded return ring, and this node's
///   [`NetNode::tick`] — enabled via
///   [`ShardedTranslatorNode::enable_nacks`] — barriers on the queues and
///   emits the NACKs from the engine thread. The barrier makes the set
///   drained at each tick a pure function of the delivered stream, which
///   keeps congested sharded scenarios bit-reproducible;
/// * the pipeline must be shut down explicitly:
///   [`ShardedTranslatorNode::finish`] barriers on the queues, flushes
///   translator-held state, joins the workers, and returns the aggregated
///   [`ShardedRunReport`].
#[derive(Debug)]
pub struct ShardedTranslatorNode {
    sharded: Option<ShardedTranslator>,
    /// NACK source addressing `(node id, IP)`; `None` leaves NACK records
    /// undrained (they surface as `nacks_pending` at `finish`).
    nack_from: Option<(NodeId, u32)>,
    /// Recycled drain buffer for tick-time NACK emission.
    nack_buf: Vec<NackRecord>,
    /// Counters (`roce_responses` stays 0: responses never cross the
    /// simulated network in this deployment).
    pub stats: TranslatorNodeStats,
}

impl ShardedTranslatorNode {
    /// Build the sharded pipeline against `collector` and wrap it as a node.
    ///
    /// Call *before* moving the `CollectorService` into its own node: the
    /// shard NIC endpoints clone the collector's region registry, so writes
    /// issued by shard workers land in exactly the memory the collector's
    /// stores query.
    pub fn connect(config: ShardedConfig, collector: &mut CollectorService) -> Self {
        ShardedTranslatorNode {
            sharded: Some(ShardedTranslator::connect(config, collector)),
            nack_from: None,
            nack_buf: Vec::new(),
            stats: TranslatorNodeStats::default(),
        }
    }

    /// Enable reporter NACK emission from this node's ticks, sourced from
    /// `my_id`/`my_ip`. The deployment must also schedule a periodic tick
    /// on this node (the scenario harness reuses the reporter pacing
    /// period), or records pile up until `finish`.
    pub fn enable_nacks(&mut self, my_id: NodeId, my_ip: u32) {
        self.nack_from = Some((my_id, my_ip));
    }

    /// Number of worker shards (0 after [`ShardedTranslatorNode::finish`]).
    pub fn shards(&self) -> usize {
        self.sharded.as_ref().map_or(0, |s| s.shards())
    }

    /// Barrier the shard queues without shutting the pipeline down: after
    /// this returns, every report delivered so far has been fully executed
    /// into collector memory. The scenario harness calls this before
    /// taking a mid-run snapshot so that what the snapshot holds is a pure
    /// function of the delivered stream, not of worker scheduling.
    pub fn quiesce(&mut self) {
        if let Some(sharded) = self.sharded.as_mut() {
            sharded.wait_idle();
        }
    }

    /// Drain the queues, flush translator-held state (postcard cache rows,
    /// partial append batches) through the shard NIC endpoints, join the
    /// workers, and return the aggregated counters. Returns `None` if
    /// already finished.
    pub fn finish(&mut self) -> Option<ShardedRunReport> {
        let mut sharded = self.sharded.take()?;
        sharded.wait_idle();
        Some(sharded.flush_and_join())
    }
}

impl NetNode for ShardedTranslatorNode {
    fn receive(&mut self, now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        let Some(sharded) = self.sharded.as_mut() else {
            return; // finished: sink
        };
        let Ok(udp) = UdpPacket::decode(packet.payload.clone()) else {
            self.stats.malformed += 1;
            return;
        };
        match udp.udp.dst_port {
            DTA_UDP_PORT => {
                let Ok(report) = DtaReport::decode(udp.payload.clone()) else {
                    self.stats.malformed += 1;
                    return;
                };
                self.stats.dta_in += 1;
                // Routes on the ingest thread, enqueues to the owning
                // shard's SPSC ring (yielding on a full ring), and returns;
                // translation + RDMA execution happen on the worker
                // threads. The return address rides along so a worker-side
                // rate-limit drop can still be NACKed to the reporter.
                let origin = ReportOrigin {
                    node: packet.src.0,
                    ip: udp.ip.src,
                    port: udp.udp.src_port,
                };
                sharded.ingest_from(now.as_nanos(), report, origin);
            }
            ROCE_UDP_PORT => {
                // Shard endpoints handle their responses in-process; a RoCE
                // packet arriving over the network is a wiring error.
                self.stats.malformed += 1;
            }
            _ => {
                self.stats.forwarded += 1;
                out.push(Emission::now(packet));
            }
        }
    }

    /// Drain worker-recorded NACKs and emit them, when enabled.
    ///
    /// Determinism rule: `wait_idle` barriers first, so the records
    /// drained at this tick are exactly the rate-limited `nack_on_drop`
    /// reports delivered before it — shard order, FIFO within a shard —
    /// independent of worker thread scheduling.
    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        let Some(sharded) = self.sharded.as_mut() else {
            return false; // finished: stop the tick series
        };
        let Some((my_id, my_ip)) = self.nack_from else {
            // Ticks scheduled without `enable_nacks`: there is no return
            // address to emit from, but the rings must still drain or a
            // worker eventually blocks pushing records. The parked records
            // surface as `nacks_pending` at `finish`, as documented.
            sharded.drain_nack_rings();
            return true;
        };
        sharded.wait_idle();
        sharded.take_nacks(&mut self.nack_buf);
        for rec in self.nack_buf.drain(..) {
            let nack = UdpPacket::frame(
                my_ip,
                DTA_NACK_PORT,
                rec.origin.ip,
                rec.origin.port,
                encode_nack(rec.seq),
            );
            out.push(Emission::now(Packet::new(my_id, NodeId(rec.origin.node), nack.encode())));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dta_collector::service::ServiceConfig;
    use dta_collector::{CollectorNode, QueryOutcome, QueryPolicy};
    use dta_core::TelemetryKey;
    use dta_net::{LinkConfig, Network, Topology};

    #[test]
    fn nack_roundtrip() {
        assert_eq!(decode_nack(&encode_nack(0xDEAD_BEEF)), Some(0xDEAD_BEEF));
        assert_eq!(decode_nack(b"bogus!!!"), None);
        assert_eq!(decode_nack(b"DNAK"), None); // too short
    }

    /// Reports over the simulated network → sharded ingest → worker shards →
    /// shard NICs → collector memory: the PR 2 pipeline driven from the node
    /// layer.
    #[test]
    fn sharded_node_translates_network_reports_into_collector_memory() {
        let mut topo = Topology::new(3);
        topo.connect(NodeId(0), NodeId(1));
        topo.connect(NodeId(1), NodeId(2));
        let mut net = Network::new(topo.shortest_path_routing());
        net.add_duplex_link(NodeId(0), NodeId(1), LinkConfig::dc_100g());
        net.add_duplex_link(NodeId(1), NodeId(2), LinkConfig::dc_100g());

        let mut svc = CollectorService::new(ServiceConfig::default());
        let node = ShardedTranslatorNode::connect(ShardedConfig::with_shards(2), &mut svc);
        assert_eq!(node.shards(), 2);
        net.add_interceptor(NodeId(1), Box::new(node));
        net.add_node(NodeId(2), Box::new(CollectorNode::new(svc, NodeId(2), 0x0A00_0900)));

        for i in 0..100u64 {
            let report =
                DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![i as u8; 4]);
            let udp = UdpPacket::frame(
                0x0A00_0002,
                4000,
                0x0A00_0900,
                DTA_UDP_PORT,
                report.encode().unwrap(),
            );
            net.send_from(NodeId(0), Packet::new(NodeId(0), NodeId(2), udp.encode()));
        }
        net.run_to_idle();

        let tor: Box<dyn std::any::Any> = net.remove_node(NodeId(1)).unwrap();
        let mut tor = tor.downcast::<ShardedTranslatorNode>().unwrap();
        assert_eq!(tor.stats.dta_in, 100);
        let run = tor.finish().expect("first finish");
        assert!(tor.finish().is_none(), "second finish must be a no-op");
        assert_eq!(run.translator.reports_in, 100);
        assert_eq!(run.executed, 200, "N=2 -> 2 RDMA writes per report");
        assert!(run.shards.iter().all(|s| s.translator.reports_in > 0), "both shards loaded");

        let col: Box<dyn std::any::Any> = net.remove_node(NodeId(2)).unwrap();
        let col = col.downcast::<CollectorNode>().unwrap();
        // No RoCE traffic crossed the network: shard endpoints wrote memory
        // directly.
        assert_eq!(col.stats.executed, 0);
        let kw = col.service.keywrite.as_ref().unwrap();
        for i in 0..100u64 {
            assert_eq!(
                kw.query(&TelemetryKey::from_u64(i), 2, QueryPolicy::Plurality),
                QueryOutcome::Found(vec![i as u8; 4]),
                "key {i}"
            );
        }
    }

    #[test]
    fn sharded_node_forwards_user_traffic_and_rejects_garbage() {
        let mut svc = CollectorService::new(ServiceConfig::default());
        let mut node = ShardedTranslatorNode::connect(ShardedConfig::with_shards(1), &mut svc);
        // User traffic (non-DTA UDP port) forwards untouched.
        let user = UdpPacket::frame(1, 1234, 9, 80, Bytes::from_static(b"http"));
        let mut out = Vec::new();
        node.receive(SimTime::ZERO, Packet::new(NodeId(0), NodeId(9), user.encode()), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(node.stats.forwarded, 1);
        // Garbage is malformed, not a crash.
        out.clear();
        node.receive(
            SimTime::ZERO,
            Packet::new(NodeId(0), NodeId(9), Bytes::from_static(b"???")),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(node.stats.malformed, 1);
        node.finish();
    }
}

//! The translator as a simulated network node.
//!
//! Deployed as an *interceptor* on the collector's ToR: every packet
//! transiting the switch is inspected; DTA reports (UDP port 40080) are
//! translated into RoCEv2 packets toward the collector, RoCE responses
//! (UDP port 4791) feed queue-pair resynchronization, and everything else is
//! forwarded untouched ("basic user-traffic forwarding", §5.2).

use bytes::{BufMut, Bytes, BytesMut};
use dta_core::framing::UdpPacket;
use dta_core::{DtaReport, DTA_UDP_PORT};
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};
use dta_rdma::packet::{RocePacket, ROCE_UDP_PORT};

use crate::translator::Translator;

/// UDP source port for NACKs returned to reporters.
pub const DTA_NACK_PORT: u16 = 40081;
/// Magic prefix of a NACK payload.
pub const NACK_MAGIC: &[u8; 4] = b"DNAK";

/// Encode a NACK payload for report sequence `seq`.
pub fn encode_nack(seq: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_slice(NACK_MAGIC);
    b.put_u32(seq);
    b.freeze()
}

/// Decode a NACK payload, returning the dropped report's sequence number.
pub fn decode_nack(payload: &[u8]) -> Option<u32> {
    if payload.len() == 8 && &payload[..4] == NACK_MAGIC {
        Some(u32::from_be_bytes(payload[4..8].try_into().unwrap()))
    } else {
        None
    }
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatorNodeStats {
    /// DTA reports decoded.
    pub dta_in: u64,
    /// Malformed packets dropped.
    pub malformed: u64,
    /// Non-DTA packets forwarded.
    pub forwarded: u64,
    /// RoCE responses consumed.
    pub roce_responses: u64,
}

/// The translator wrapped as a [`NetNode`].
pub struct TranslatorNode {
    /// The translation dataplane.
    pub translator: Translator,
    my_id: NodeId,
    my_ip: u32,
    collector_id: NodeId,
    collector_ip: u32,
    /// Counters.
    pub stats: TranslatorNodeStats,
}

impl TranslatorNode {
    /// Wrap `translator` at node `my_id`/`my_ip`, fronting the collector at
    /// `collector_id`/`collector_ip`.
    pub fn new(
        translator: Translator,
        my_id: NodeId,
        my_ip: u32,
        collector_id: NodeId,
        collector_ip: u32,
    ) -> Self {
        TranslatorNode {
            translator,
            my_id,
            my_ip,
            collector_id,
            collector_ip,
            stats: TranslatorNodeStats::default(),
        }
    }

    fn roce_to_emission(&self, roce: &RocePacket) -> Emission {
        let udp = UdpPacket::frame(
            self.my_ip,
            ROCE_UDP_PORT,
            self.collector_ip,
            ROCE_UDP_PORT,
            roce.encode(),
        );
        Emission::now(Packet::rdma(self.my_id, self.collector_id, udp.encode()))
    }
}

impl NetNode for TranslatorNode {
    fn receive(&mut self, now: SimTime, packet: Packet) -> Vec<Emission> {
        let Ok(udp) = UdpPacket::decode(packet.payload.clone()) else {
            self.stats.malformed += 1;
            return Vec::new();
        };
        match udp.udp.dst_port {
            DTA_UDP_PORT => {
                let Ok(report) = DtaReport::decode(udp.payload.clone()) else {
                    self.stats.malformed += 1;
                    return Vec::new();
                };
                self.stats.dta_in += 1;
                let reporter_ip = udp.ip.src;
                let reporter_node = packet.src;
                let out = self.translator.process(now.as_nanos(), &report);
                let mut emissions: Vec<Emission> =
                    out.packets.iter().map(|p| self.roce_to_emission(p)).collect();
                if out.nack {
                    let nack = UdpPacket::frame(
                        self.my_ip,
                        DTA_NACK_PORT,
                        reporter_ip,
                        udp.udp.src_port,
                        encode_nack(report.header.seq),
                    );
                    emissions.push(Emission::now(Packet::new(
                        self.my_id,
                        reporter_node,
                        nack.encode(),
                    )));
                }
                emissions
            }
            ROCE_UDP_PORT => {
                // A response from the collector (ACK/NAK).
                if let Ok(roce) = RocePacket::decode(udp.payload.clone()) {
                    self.stats.roce_responses += 1;
                    self.translator.on_roce_response(&roce);
                } else {
                    self.stats.malformed += 1;
                }
                Vec::new()
            }
            _ => {
                // User traffic: forward toward its destination untouched.
                self.stats.forwarded += 1;
                vec![Emission::now(packet)]
            }
        }
    }

    fn tick(&mut self, now: SimTime) -> Vec<Emission> {
        let out = self.translator.flush(now.as_nanos());
        out.packets.iter().map(|p| self.roce_to_emission(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nack_roundtrip() {
        assert_eq!(decode_nack(&encode_nack(0xDEAD_BEEF)), Some(0xDEAD_BEEF));
        assert_eq!(decode_nack(b"bogus!!!"), None);
        assert_eq!(decode_nack(b"DNAK"), None); // too short
    }
}

//! DTA-to-RDMA translation (the pipeline of Figure 6).
//!
//! Hot-path design rules (see `DESIGN.md`):
//!
//! * each slot/chunk image is built **once** into an exact-capacity buffer
//!   and all `N` redundancy replicas receive zero-copy [`Bytes`] handles to
//!   it — never one heap copy per replica;
//! * key digests (checksum + `N` slot hashes) come from the
//!   [`KeyScratch`] cache, so a key that reported recently costs one
//!   16-byte compare instead of `1 + N` CRC passes;
//! * [`Translator::process_batch`] reuses the caller's
//!   [`TranslatorOutput`] so steady-state batch translation does not grow
//!   or reallocate the packet vector.

use bytes::{BufMut, Bytes, BytesMut};
use dta_collector::layout::{AppendLayout, CmsLayout, KwLayout, PostcardLayout};
use dta_collector::postcarding::{hop_checksum, ValueCodec};
use dta_core::{DtaReport, PrimitiveHeader};
#[cfg(test)]
use dta_core::TelemetryKey;
use dta_hash::scratch::KeyScratch;
use dta_rdma::cm::ConnectionParams;
use dta_rdma::packet::RocePacket;
use dta_rdma::qp::QueuePair;
use dta_rdma::verbs::RdmaOp;
use dta_switch::MulticastEngine;

use crate::append::AppendBatcher;
use crate::pool::{ImagePool, IMG_POOL_BUF, IMG_POOL_DEPTH};
use crate::postcard_cache::{CacheEmission, PostcardCache};
use crate::ratelimit::{RateLimiter, RateLimiterConfig};

/// Translator sizing and behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatorConfig {
    /// Postcarding aggregation cache rows (32K on the Tofino prototype).
    pub postcard_cache_slots: usize,
    /// Postcarding hop bound `B`.
    pub postcard_hops: u8,
    /// Postcarding slot width in bits.
    pub postcard_bits: u32,
    /// Postcarding value-universe size |V| (must match the collector codec).
    pub postcard_values: u32,
    /// Postcarding redundancy `N`.
    pub postcard_redundancy: usize,
    /// Append batch size `B` (16 in the paper's headline results).
    pub append_batch: usize,
    /// Path MTU toward the collector; batches larger than this segment into
    /// WRITE FIRST/MIDDLE/LAST sequences.
    pub mtu: usize,
    /// Optional RDMA rate limiter.
    pub rate_limit: Option<RateLimiterConfig>,
    /// Key digest scratch entries (rounded to a power of two). Models the
    /// ASIC's per-key SRAM scratch; a hit skips all CRC work for a report.
    pub key_scratch_entries: usize,
}

impl Default for TranslatorConfig {
    fn default() -> Self {
        TranslatorConfig {
            postcard_cache_slots: 32 * 1024,
            postcard_hops: 5,
            postcard_bits: 32,
            postcard_values: 1 << 12,
            postcard_redundancy: 1,
            append_batch: 16,
            mtu: dta_rdma::segment::MTU_1024,
            rate_limit: None,
            key_scratch_entries: 16 * 1024,
        }
    }
}

/// Counters for the translation paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslatorStats {
    /// DTA reports processed.
    pub reports_in: u64,
    /// RoCE packets emitted.
    pub rdma_out: u64,
    /// Reports dropped by the rate limiter.
    pub rate_limited: u64,
    /// NACKs sent back to reporters.
    pub nacks_sent: u64,
    /// Reports dropped because the target service is not connected.
    pub no_service: u64,
    /// QP resynchronizations performed after collector NAKs.
    pub resyncs: u64,
}

impl TranslatorStats {
    /// Accumulate `other` into `self` — used to aggregate per-shard
    /// translator counters into one pipeline-wide view.
    pub fn merge(&mut self, other: &TranslatorStats) {
        self.reports_in += other.reports_in;
        self.rdma_out += other.rdma_out;
        self.rate_limited += other.rate_limited;
        self.nacks_sent += other.nacks_sent;
        self.no_service += other.no_service;
        self.resyncs += other.resyncs;
    }
}

/// The result of translating one DTA report (or a batch of them).
#[derive(Debug, Default)]
pub struct TranslatorOutput {
    /// RoCE packets to forward to the collector NIC.
    pub packets: Vec<RocePacket>,
    /// Sequence numbers of reports the rate limiter dropped whose
    /// `nack_on_drop` flag requests a NACK back to the reporter — one entry
    /// per dropped report, in drop order, so a batch caller can answer each
    /// reporter individually (the single-report path sees 0 or 1 entries).
    pub nacked: Vec<u32>,
}

impl TranslatorOutput {
    /// Reset for reuse, keeping the vectors' capacity.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.nacked.clear();
    }
}

/// A connected per-primitive RDMA path.
#[derive(Debug)]
struct ServiceConn {
    qp: QueuePair,
    params: ConnectionParams,
}

/// The DTA translator dataplane.
///
/// Every piece of hot-path state — the key-digest scratch, the image pool,
/// the postcard cache, the append batcher, the per-service QPs — is *owned*
/// by the instance, never shared: a [`crate::ShardedTranslator`] runs one
/// `Translator` per worker shard with zero cross-shard traffic (asserted
/// `Send` below so a shard can own its translator on its own thread).
#[derive(Debug)]
pub struct Translator {
    config: TranslatorConfig,
    scratch: KeyScratch,
    codec: ValueCodec,
    multicast: MulticastEngine,
    images: ImagePool,

    kw: Option<(ServiceConn, KwLayout)>,
    postcard: Option<(ServiceConn, PostcardLayout)>,
    append: Option<(ServiceConn, AppendLayout, AppendBatcher)>,
    cms: Option<(ServiceConn, CmsLayout)>,

    cache: PostcardCache,
    limiter: Option<RateLimiter>,
    /// Counters.
    pub stats: TranslatorStats,
}

// A shard owns its translator on a worker thread; nothing inside may be
// thread-bound. (`Sync` is deliberately NOT asserted: all hot state is
// `&mut`-owned, which is the whole sharding model.)
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<Translator>();

impl Translator {
    /// Translator with no connected services.
    pub fn new(config: TranslatorConfig) -> Self {
        let mut multicast = MulticastEngine::new();
        for n in 1..=dta_hash::polynomials::MAX_REDUNDANCY as u16 {
            multicast.install_group(n, n);
        }
        let cache = PostcardCache::new(config.postcard_cache_slots, config.postcard_hops);
        let codec = ValueCodec::switch_ids(config.postcard_values, config.postcard_bits);
        let limiter = config.rate_limit.map(RateLimiter::new);
        let scratch = KeyScratch::new(
            config.key_scratch_entries,
            dta_hash::polynomials::MAX_REDUNDANCY,
        );
        Translator {
            config,
            scratch,
            codec,
            multicast,
            images: ImagePool::new(IMG_POOL_DEPTH),
            kw: None,
            postcard: None,
            append: None,
            cms: None,
            cache,
            limiter,
            stats: TranslatorStats::default(),
        }
    }

    /// Translator configuration.
    pub fn config(&self) -> &TranslatorConfig {
        &self.config
    }

    /// The postcard aggregation cache (for Figure 14 statistics).
    pub fn postcard_cache(&self) -> &PostcardCache {
        &self.cache
    }

    /// The append batcher, when connected.
    pub fn append_batcher(&self) -> Option<&AppendBatcher> {
        self.append.as_ref().map(|(_, _, b)| b)
    }

    /// Hit/miss counters of the key digest scratch.
    pub fn key_scratch_stats(&self) -> dta_hash::ScratchStats {
        self.scratch.stats
    }

    /// Image-pool counters: `(recycled, allocated)`. In the steady state
    /// (packets consumed downstream) `recycled` grows and `allocated`
    /// stays flat — the report hot path is allocation-free.
    pub fn image_pool_stats(&self) -> (u64, u64) {
        (self.images.recycled, self.images.allocated)
    }

    /// Attach the Key-Write service (CM handshake result).
    pub fn connect_key_write(&mut self, qp: QueuePair, params: ConnectionParams) {
        let layout = KwLayout {
            base_va: params.base_va,
            slots: params.slots,
            value_bytes: params.slot_bytes - KwLayout::CSUM_BYTES,
        };
        self.kw = Some((ServiceConn { qp, params }, layout));
    }

    /// Attach the Postcarding service.
    pub fn connect_postcarding(&mut self, qp: QueuePair, params: ConnectionParams) {
        let layout = PostcardLayout {
            base_va: params.base_va,
            chunks: params.slots,
            hops: self.config.postcard_hops,
            slot_bits: self.config.postcard_bits,
        };
        assert_eq!(
            layout.chunk_stride(),
            params.slot_bytes as u64,
            "collector chunk stride disagrees with translator hop bound"
        );
        self.postcard = Some((ServiceConn { qp, params }, layout));
    }

    /// Attach the Append service.
    pub fn connect_append(&mut self, qp: QueuePair, params: ConnectionParams) {
        let entries_per_list = params.slots;
        let entry_bytes = params.slot_bytes;
        let list_bytes = entries_per_list * entry_bytes as u64;
        let lists = (params.region_len / list_bytes) as u32;
        let layout = AppendLayout {
            base_va: params.base_va,
            lists,
            entries_per_list,
            entry_bytes,
        };
        let batcher = AppendBatcher::new(layout, self.config.append_batch);
        self.append = Some((ServiceConn { qp, params }, layout, batcher));
    }

    /// Attach the Key-Increment service.
    pub fn connect_key_increment(&mut self, qp: QueuePair, params: ConnectionParams) {
        let layout = CmsLayout { base_va: params.base_va, slots: params.slots };
        self.cms = Some((ServiceConn { qp, params }, layout));
    }

    /// Handle a RoCE response from the collector (ACK or NAK). On NAK, the
    /// matching QP's send PSN resynchronizes to the collector's expected
    /// PSN (§5.2's queue-pair resynchronization).
    pub fn on_roce_response(&mut self, pkt: &RocePacket) {
        if !pkt.is_nak() {
            return;
        }
        let qpn = pkt.bth.dest_qp;
        for conn in [
            self.kw.as_mut().map(|(c, _)| c),
            self.postcard.as_mut().map(|(c, _)| c),
            self.append.as_mut().map(|(c, _, _)| c),
            self.cms.as_mut().map(|(c, _)| c),
        ]
        .into_iter()
        .flatten()
        {
            if conn.qp.qpn == qpn {
                conn.qp.resync_send(pkt.bth.psn);
                self.stats.resyncs += 1;
                return;
            }
        }
    }

    /// Translate one DTA report into RoCE packets (the ingress→egress
    /// traversal of Figure 6).
    ///
    /// Allocates a fresh [`TranslatorOutput`] per call; steady-state hot
    /// loops should prefer [`Translator::process_batch`], which reuses one.
    pub fn process(&mut self, now_ns: u64, report: &DtaReport) -> TranslatorOutput {
        let mut out = TranslatorOutput::default();
        self.process_into(now_ns, report, &mut out);
        out
    }

    /// Translate a batch of reports, appending all packets into `out`
    /// (cleared first, capacity retained). This is the allocation-free
    /// steady-state entry point: after warm-up, translating a batch of
    /// Key-Write reports performs one image build per report and no other
    /// heap traffic in this layer.
    pub fn process_batch(
        &mut self,
        now_ns: u64,
        reports: &[DtaReport],
        out: &mut TranslatorOutput,
    ) {
        out.clear();
        for report in reports {
            self.process_into(now_ns, report, out);
        }
    }

    /// Translate one report, appending packets to `out` without clearing it
    /// first — the per-item entry point shard workers use to stamp each
    /// report with its own ingest time (rate limiting must see arrival
    /// timestamps, not the batch-drain time, to stay a pure function of the
    /// delivered stream).
    pub(crate) fn process_into(
        &mut self,
        now_ns: u64,
        report: &DtaReport,
        out: &mut TranslatorOutput,
    ) {
        self.stats.reports_in += 1;
        let packets_before = out.packets.len();
        let immediate = report.header.flags.immediate.then_some(report.header.seq);

        match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => {
                let Some((_, layout)) = &self.kw else {
                    self.stats.no_service += 1;
                    return;
                };
                let layout = *layout;
                let n = h.redundancy as usize;
                if !self.admit(now_ns, n as u64, report, out) {
                    return;
                }
                // Key digests from the scratch: one lookup covers the
                // checksum and all N slot addresses.
                let digests = self.scratch.digests(h.key.as_bytes(), n);
                // Slot image: checksum || value, padded to the slot width —
                // built once, shared zero-copy by every replica. Slot-sized
                // images come from the recycling pool (no allocation in the
                // steady state).
                let w = layout.value_bytes as usize;
                let take = report.payload.len().min(w);
                let img = if 4 + w <= IMG_POOL_BUF {
                    self.images.build(4 + w, |buf| {
                        buf[..4].copy_from_slice(&digests.checksum.to_be_bytes());
                        buf[4..4 + take].copy_from_slice(&report.payload[..take]);
                    })
                } else {
                    let mut img = BytesMut::with_capacity(4 + w);
                    img.put_u32(digests.checksum);
                    img.extend_from_slice(&report.payload[..take]);
                    img.resize(4 + w, 0);
                    img.freeze()
                };

                // The PRE replicates the packet once per redundancy copy;
                // each replica's rid selects the hash function.
                let copies = self
                    .multicast
                    .replicate_count(n as u16)
                    .expect("redundancy groups pre-installed");
                let (conn, _) = self.kw.as_mut().expect("checked above");
                let rkey = conn.params.rkey;
                for rid in 0..copies as usize {
                    let va = layout.slot_va_from_digest(digests.slots[rid]);
                    let data = img.clone(); // refcount bump, same backing store
                    let op = match immediate {
                        Some(imm) => RdmaOp::WriteImm { rkey, va, data, imm },
                        None => RdmaOp::Write { rkey, va, data },
                    };
                    out.packets.push(op.into_packet(&mut conn.qp));
                }
            }

            PrimitiveHeader::KeyIncrement(h) => {
                let Some((_, layout)) = &self.cms else {
                    self.stats.no_service += 1;
                    return;
                };
                let layout = *layout;
                let n = h.redundancy as usize;
                if !self.admit(now_ns, n as u64, report, out) {
                    return;
                }
                let digests = self.scratch.digests(h.key.as_bytes(), n);
                let copies = self
                    .multicast
                    .replicate_count(n as u16)
                    .expect("redundancy groups pre-installed");
                let (conn, _) = self.cms.as_mut().expect("checked above");
                let rkey = conn.params.rkey;
                for rid in 0..copies as usize {
                    let va = layout.slot_va_from_digest(digests.slots[rid]);
                    let op = RdmaOp::FetchAdd { rkey, va, add: h.delta };
                    out.packets.push(op.into_packet(&mut conn.qp));
                }
            }

            PrimitiveHeader::Append(h) => {
                let Some((_, _, batcher)) = &mut self.append else {
                    self.stats.no_service += 1;
                    return;
                };
                let Some(batch) = batcher.push(h.list_id, &report.payload) else {
                    return; // staged or invalid list
                };
                if !self.admit(now_ns, 1, report, out) {
                    return;
                }
                let mtu = self.config.mtu;
                let (conn, _, _) = self.append.as_mut().expect("checked above");
                if batch.data.len() > mtu {
                    // Over-MTU batches take the segmented-write path (the
                    // immediate flag is not combinable with segmentation in
                    // this prototype; the WRITE LAST completes silently).
                    out.packets.extend(dta_rdma::segment::segment_write(
                        &mut conn.qp,
                        conn.params.rkey,
                        batch.va,
                        Bytes::from(batch.data),
                        mtu,
                    ));
                } else {
                    let op = match immediate {
                        Some(imm) => RdmaOp::WriteImm {
                            rkey: conn.params.rkey,
                            va: batch.va,
                            data: Bytes::from(batch.data),
                            imm,
                        },
                        None => RdmaOp::Write {
                            rkey: conn.params.rkey,
                            va: batch.va,
                            data: Bytes::from(batch.data),
                        },
                    };
                    out.packets.push(op.into_packet(&mut conn.qp));
                }
            }

            PrimitiveHeader::Postcarding(h) => {
                if self.postcard.is_none() {
                    self.stats.no_service += 1;
                    return;
                }
                let word = hop_checksum(&h.key, h.hop, self.config.postcard_bits)
                    ^ self.codec.encode(Some(h.value));
                let emissions = self.cache.insert(&h.key, h.hop, h.path_len, word);
                for emission in emissions {
                    self.emit_postcard_chunk(now_ns, &emission, report, out);
                }
            }
        }
        self.stats.rdma_out += (out.packets.len() - packets_before) as u64;
    }

    /// Flush translator-held state (cache rows, partial batches) — the
    /// periodic timer path. Only lists with a partial batch are visited
    /// (via the batcher's dirty set), not the full list id space.
    pub fn flush(&mut self, now_ns: u64) -> TranslatorOutput {
        let mut out = TranslatorOutput::default();
        for emission in self.cache.flush() {
            let fake = DtaReport::postcard(0, emission.key, 0, 0, 0);
            self.emit_postcard_chunk(now_ns, &emission, &fake, &mut out);
        }
        if let Some((conn, _, batcher)) = self.append.as_mut() {
            let dirty: Vec<u32> = batcher.dirty_lists().collect();
            for list in dirty {
                let Some(batch) = batcher.flush(list) else { continue };
                let op = RdmaOp::Write {
                    rkey: conn.params.rkey,
                    va: batch.va,
                    data: Bytes::from(batch.data),
                };
                out.packets.push(op.into_packet(&mut conn.qp));
            }
        }
        self.stats.rdma_out += out.packets.len() as u64;
        out
    }

    /// Emit one aggregated postcard chunk (complete or early) as `N` chunk
    /// writes sharing a single image build.
    fn emit_postcard_chunk(
        &mut self,
        now_ns: u64,
        emission: &CacheEmission,
        report: &DtaReport,
        out: &mut TranslatorOutput,
    ) {
        let n = self.config.postcard_redundancy;
        if !self.admit(now_ns, n as u64, report, out) {
            return;
        }
        let (_, layout) = self.postcard.as_ref().expect("caller checked service");
        let layout = *layout;
        // Fill unseen hops with blank codewords so every chunk write covers
        // all B slots (§4: "each flow always writes all B hops' values").
        let blank = self.codec.encode(None);
        let stride = layout.chunk_stride() as usize;
        let img = if stride <= IMG_POOL_BUF {
            self.images.build(stride, |buf| {
                for hop in 0..layout.hops {
                    let word = emission.words[hop as usize].unwrap_or_else(|| {
                        hop_checksum(&emission.key, hop, layout.slot_bits) ^ blank
                    });
                    buf[hop as usize * 4..hop as usize * 4 + 4]
                        .copy_from_slice(&word.to_be_bytes());
                }
            })
        } else {
            let mut img = BytesMut::with_capacity(stride);
            for hop in 0..layout.hops {
                let word = emission.words[hop as usize].unwrap_or_else(|| {
                    hop_checksum(&emission.key, hop, layout.slot_bits) ^ blank
                });
                img.put_u32(word);
            }
            img.resize(stride, 0);
            img.freeze()
        };

        let digests = self.scratch.digests(emission.key.as_bytes(), n);
        let copies = self
            .multicast
            .replicate_count(n as u16)
            .expect("redundancy groups pre-installed");
        let (conn, _) = self.postcard.as_mut().expect("caller checked service");
        let rkey = conn.params.rkey;
        for rid in 0..copies as usize {
            let va = layout.chunk_va_from_digest(digests.slots[rid]);
            let op = RdmaOp::Write { rkey, va, data: img.clone() };
            out.packets.push(op.into_packet(&mut conn.qp));
        }
    }

    /// Rate-limiter admission for `msgs` RDMA messages.
    fn admit(
        &mut self,
        now_ns: u64,
        msgs: u64,
        report: &DtaReport,
        out: &mut TranslatorOutput,
    ) -> bool {
        let Some(limiter) = &mut self.limiter else {
            return true;
        };
        if limiter.admit(now_ns, msgs) {
            return true;
        }
        self.stats.rate_limited += 1;
        if report.header.flags.nack_on_drop {
            out.nacked.push(report.header.seq);
            self.stats.nacks_sent += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_collector::service::{
        CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW,
        SERVICE_POSTCARD,
    };
    use dta_core::DtaFlags;
    use dta_rdma::cm::CmRequester;
    use dta_rdma::nic::RxOutcome;

    /// Build a collector + fully connected translator pair.
    fn connected() -> (CollectorService, Translator) {
        let mut svc = CollectorService::new(ServiceConfig::default());
        let mut tr = Translator::new(TranslatorConfig {
            postcard_values: 1 << 12,
            append_batch: 4,
            ..TranslatorConfig::default()
        });
        for (service, qpn) in [
            (SERVICE_KW, 0x31),
            (SERVICE_POSTCARD, 0x32),
            (SERVICE_APPEND, 0x33),
            (SERVICE_CMS, 0x34),
        ] {
            let req = CmRequester::new(qpn, 0);
            let reply = svc.handle_cm(&req.request(service));
            let (qp, params) = req.complete(&reply).unwrap();
            match service {
                SERVICE_KW => tr.connect_key_write(qp, params),
                SERVICE_POSTCARD => tr.connect_postcarding(qp, params),
                SERVICE_APPEND => tr.connect_append(qp, params),
                SERVICE_CMS => tr.connect_key_increment(qp, params),
                _ => unreachable!(),
            }
        }
        (svc, tr)
    }

    fn run(svc: &mut CollectorService, out: TranslatorOutput) {
        for pkt in &out.packets {
            match svc.nic_ingress(pkt) {
                RxOutcome::Executed(_) => {}
                other => panic!("collector rejected packet: {other:?}"),
            }
        }
    }

    #[test]
    fn keywrite_report_lands_and_queries() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::from_u64(7);
        let report = DtaReport::key_write(0, key, 2, vec![0xDE, 0xAD, 0xBE, 0xEF]);
        let out = tr.process(0, &report);
        assert_eq!(out.packets.len(), 2, "N=2 redundancy -> 2 writes");
        run(&mut svc, out);
        let kw = svc.keywrite.as_ref().unwrap();
        let got = kw.query(&key, 2, dta_collector::QueryPolicy::Plurality);
        assert_eq!(
            got,
            dta_collector::QueryOutcome::Found(vec![0xDE, 0xAD, 0xBE, 0xEF])
        );
    }

    #[test]
    fn postcards_aggregate_into_one_write() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::from_u64(11);
        let path = [5u32, 6, 7, 8, 9];
        let mut packets = 0;
        for (hop, v) in path.iter().enumerate() {
            let out = tr.process(0, &DtaReport::postcard(0, key, hop as u8, 5, *v));
            packets += out.packets.len();
            run(&mut svc, out);
        }
        assert_eq!(packets, 1, "5 postcards -> 1 chunk write (N=1)");
        let store = svc.postcarding.as_ref().unwrap();
        assert_eq!(
            store.query(&key, 1),
            dta_collector::PostcardQueryOutcome::Found(path.to_vec())
        );
    }

    #[test]
    fn append_batches_by_four() {
        let (mut svc, mut tr) = connected();
        let mut packets = 0;
        for i in 0..8u32 {
            let out = tr.process(0, &DtaReport::append(i, 3, i.to_be_bytes().to_vec()));
            packets += out.packets.len();
            run(&mut svc, out);
        }
        assert_eq!(packets, 2, "8 entries at batch 4 -> 2 writes");
        let reader = svc.append.as_mut().unwrap();
        for i in 0..8u32 {
            assert_eq!(reader.poll(3), i.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn key_increment_accumulates_via_fetch_add() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::src_ip(0x0A00_0001);
        for _ in 0..5 {
            let out = tr.process(0, &DtaReport::key_increment(0, key, 2, 10));
            run(&mut svc, out);
        }
        let s = svc.key_increment.as_ref().unwrap();
        assert_eq!(s.query(&key, 2), 50);
    }

    #[test]
    fn immediate_flag_raises_collector_completion() {
        let (mut svc, mut tr) = connected();
        let report = DtaReport::key_write(77, TelemetryKey::from_u64(1), 1, vec![1; 4])
            .with_flags(DtaFlags { immediate: true, nack_on_drop: false });
        let out = tr.process(0, &report);
        run(&mut svc, out);
        let wc = svc.nic.poll_completion().expect("immediate completion");
        assert_eq!(wc.imm, Some(77));
    }

    #[test]
    fn rate_limiter_drops_and_nacks() {
        let (_svc, _) = connected();
        let mut tr = Translator::new(TranslatorConfig {
            rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst: 2 }),
            ..TranslatorConfig::default()
        });
        // Connect only KW via a fresh collector.
        let mut svc = CollectorService::new(ServiceConfig::default());
        let req = CmRequester::new(1, 0);
        let reply = svc.handle_cm(&req.request(SERVICE_KW));
        let (qp, params) = req.complete(&reply).unwrap();
        tr.connect_key_write(qp, params);

        let flags = DtaFlags { immediate: false, nack_on_drop: true };
        let r1 = DtaReport::key_write(7, TelemetryKey::from_u64(1), 2, vec![0; 4])
            .with_flags(flags);
        let out1 = tr.process(0, &r1);
        assert_eq!(out1.packets.len(), 2);
        assert!(out1.nacked.is_empty());
        let out2 = tr.process(0, &r1);
        assert!(out2.packets.is_empty(), "bucket exhausted");
        assert_eq!(out2.nacked, [7], "NACK must name the dropped report's seq");
        assert_eq!(tr.stats.rate_limited, 1);
        assert_eq!(tr.stats.nacks_sent, 1);
    }

    #[test]
    fn disconnected_service_drops_report() {
        let mut tr = Translator::new(TranslatorConfig::default());
        let out = tr.process(0, &DtaReport::append(0, 1, vec![0; 4]));
        assert!(out.packets.is_empty());
        assert_eq!(tr.stats.no_service, 1);
    }

    #[test]
    fn nak_resyncs_send_psn() {
        let (mut svc, mut tr) = connected();
        // Send one KW report normally.
        let out = tr.process(0, &DtaReport::key_write(0, TelemetryKey::from_u64(1), 1, vec![0; 4]));
        run(&mut svc, out);
        // Simulate loss: process a report but drop its packet, then send
        // another — the collector NAKs the gap.
        let _lost = tr.process(0, &DtaReport::key_write(1, TelemetryKey::from_u64(2), 1, vec![0; 4]));
        let out3 = tr.process(0, &DtaReport::key_write(2, TelemetryKey::from_u64(3), 1, vec![0; 4]));
        let nak = match svc.nic_ingress(&out3.packets[0]) {
            RxOutcome::Nak(nak) => nak,
            other => panic!("expected NAK, got {other:?}"),
        };
        tr.on_roce_response(&nak);
        assert_eq!(tr.stats.resyncs, 1);
        // After resync the stream flows again.
        let out4 = tr.process(0, &DtaReport::key_write(3, TelemetryKey::from_u64(4), 1, vec![0; 4]));
        run(&mut svc, out4);
    }

    #[test]
    fn replicas_share_one_slot_image_zero_copy() {
        // Acceptance: redundancy-N fan-out performs exactly one slot-image
        // build; every replica's payload is a zero-copy handle to the same
        // backing store (pointer identity), not a per-replica heap copy.
        let (_svc, mut tr) = connected();
        for n in [2u8, 4, 8] {
            let report =
                DtaReport::key_write(0, TelemetryKey::from_u64(900 + n as u64), n, vec![9; 4]);
            let out = tr.process(0, &report);
            assert_eq!(out.packets.len(), n as usize);
            let first = out.packets[0].payload.as_ptr();
            for pkt in &out.packets {
                assert_eq!(
                    pkt.payload.as_ptr(),
                    first,
                    "replica payload was copied instead of shared (N={n})"
                );
                assert_eq!(pkt.payload.len(), out.packets[0].payload.len());
            }
        }
    }

    #[test]
    fn postcard_replicas_share_one_chunk_image() {
        let (mut svc, _) = connected();
        let mut tr = Translator::new(TranslatorConfig {
            postcard_redundancy: 3,
            ..TranslatorConfig::default()
        });
        let req = CmRequester::new(0x99, 0);
        let reply = svc.handle_cm(&req.request(SERVICE_POSTCARD));
        let (qp, params) = req.complete(&reply).unwrap();
        tr.connect_postcarding(qp, params);
        let key = TelemetryKey::from_u64(31337);
        let mut last = Vec::new();
        for hop in 0..5u8 {
            let out = tr.process(0, &DtaReport::postcard(0, key, hop, 5, 7));
            if !out.packets.is_empty() {
                last = out.packets;
            }
        }
        assert_eq!(last.len(), 3, "N=3 chunk writes");
        let first = last[0].payload.as_ptr();
        for pkt in &last {
            assert_eq!(pkt.payload.as_ptr(), first, "chunk image copied per replica");
        }
    }

    #[test]
    fn process_batch_reuses_output_and_matches_process() {
        let (mut svc, mut tr) = connected();
        let reports: Vec<DtaReport> = (0..64u64)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), 2, vec![i as u8; 4]))
            .collect();
        let mut out = TranslatorOutput::default();
        tr.process_batch(0, &reports, &mut out);
        assert_eq!(out.packets.len(), 128, "64 reports x N=2");
        let cap = out.packets.capacity();
        for pkt in &out.packets {
            assert!(matches!(svc.nic_ingress(pkt), RxOutcome::Executed(_)));
        }
        // Re-running a same-size batch must not grow the packet vector.
        let reports2: Vec<DtaReport> = (0..64u64)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(1000 + i), 2, vec![3; 4]))
            .collect();
        tr.process_batch(0, &reports2, &mut out);
        assert_eq!(out.packets.len(), 128);
        assert_eq!(out.packets.capacity(), cap, "packet vector reallocated");
        for pkt in &out.packets {
            assert!(matches!(svc.nic_ingress(pkt), RxOutcome::Executed(_)));
        }
        // And the data landed: spot-check a key from each batch.
        let kw = svc.keywrite.as_ref().unwrap();
        for k in [5u64, 1005] {
            assert!(kw
                .query(&TelemetryKey::from_u64(k), 2, dta_collector::QueryPolicy::Plurality)
                .is_found());
        }
    }

    #[test]
    fn key_scratch_accelerates_repeated_keys() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::from_u64(77);
        for _ in 0..50 {
            let out = tr.process(0, &DtaReport::key_write(0, key, 2, vec![1; 4]));
            run(&mut svc, out);
        }
        let stats = tr.key_scratch_stats();
        assert_eq!(stats.misses, 1, "one CRC pass for 50 same-key reports");
        assert_eq!(stats.hits, 49);
        // Correctness unaffected: the key queries back.
        let kw = svc.keywrite.as_ref().unwrap();
        assert!(kw.query(&key, 2, dta_collector::QueryPolicy::Plurality).is_found());
    }

    #[test]
    fn steady_state_hot_path_recycles_images() {
        // Acceptance: once packets are consumed downstream, the translator
        // stops allocating — every image comes from the recycling pool.
        let (mut svc, mut tr) = connected();
        for round in 0u64..3 {
            for i in 0..8192u64 {
                let r = DtaReport::key_write(0, TelemetryKey::from_u64(i), 2, vec![1; 4]);
                let out = tr.process(0, &r);
                run(&mut svc, out); // packets dropped here -> buffers free
            }
            let (recycled, allocated) = tr.image_pool_stats();
            assert_eq!(recycled + allocated, (round + 1) * 8192);
            assert_eq!(allocated, 0, "steady-state hot path allocated images");
        }
    }

    #[test]
    fn image_pool_degrades_gracefully_when_packets_are_retained() {
        // A consumer that holds onto every packet forces fallback
        // allocations (never corruption): retained payloads must keep
        // their contents even after the pool index wraps.
        let (_svc, mut tr) = connected();
        let mut retained = Vec::new();
        let total = super::IMG_POOL_DEPTH + 100;
        for i in 0..total as u32 {
            let r = DtaReport::key_write(0, TelemetryKey::from_u64(i as u64), 1, i.to_be_bytes().to_vec());
            retained.push(tr.process(0, &r).packets.remove(0));
        }
        let (_, allocated) = tr.image_pool_stats();
        assert!(allocated >= 100, "pool wrap must fall back to fresh buffers");
        // Every retained payload still carries its own report's value
        // (4B checksum || 4B value at the default slot width).
        for (i, pkt) in retained.iter().enumerate() {
            assert_eq!(
                &pkt.payload[4..8],
                &(i as u32).to_be_bytes(),
                "payload {i} was clobbered by pool reuse"
            );
        }
    }

    #[test]
    fn flush_visits_only_dirty_lists() {
        let (mut svc, mut tr) = connected();
        // Stage partial batches on 3 of the 16 lists.
        for list in [1u32, 7, 11] {
            run(&mut svc, tr.process(0, &DtaReport::append(0, list, vec![5; 4])));
        }
        assert_eq!(tr.append_batcher().unwrap().dirty_count(), 3);
        let out = tr.flush(0);
        assert_eq!(out.packets.len(), 3, "exactly one write per dirty list");
        run(&mut svc, out);
        assert_eq!(tr.append_batcher().unwrap().dirty_count(), 0);
        assert!(tr.flush(0).packets.is_empty(), "second flush has nothing to do");
    }

    #[test]
    fn flush_emits_partial_state() {
        let (mut svc, mut tr) = connected();
        // 3 postcards of a 5-hop path + 2 staged append entries.
        let key = TelemetryKey::from_u64(5);
        for hop in 0..3u8 {
            run(&mut svc, tr.process(0, &DtaReport::postcard(0, key, hop, 5, 42)));
        }
        run(&mut svc, tr.process(0, &DtaReport::append(0, 1, vec![1; 4])));
        let out = tr.flush(0);
        assert_eq!(out.packets.len(), 2, "one early chunk + one padded batch");
        run(&mut svc, out);
    }
}

//! DTA-to-RDMA translation (the pipeline of Figure 6).

use bytes::Bytes;
use dta_collector::layout::{AppendLayout, CmsLayout, KwLayout, PostcardLayout};
use dta_collector::postcarding::{hop_checksum, ValueCodec};
use dta_core::{DtaReport, PrimitiveHeader};
#[cfg(test)]
use dta_core::TelemetryKey;
use dta_hash::{Checksummer, HashFamily};
use dta_rdma::cm::ConnectionParams;
use dta_rdma::packet::RocePacket;
use dta_rdma::qp::QueuePair;
use dta_rdma::verbs::RdmaOp;
use dta_switch::MulticastEngine;

use crate::append::AppendBatcher;
use crate::postcard_cache::{CacheEmission, PostcardCache};
use crate::ratelimit::{RateLimiter, RateLimiterConfig};

/// Translator sizing and behaviour knobs.
#[derive(Debug, Clone)]
pub struct TranslatorConfig {
    /// Postcarding aggregation cache rows (32K on the Tofino prototype).
    pub postcard_cache_slots: usize,
    /// Postcarding hop bound `B`.
    pub postcard_hops: u8,
    /// Postcarding slot width in bits.
    pub postcard_bits: u32,
    /// Postcarding value-universe size |V| (must match the collector codec).
    pub postcard_values: u32,
    /// Postcarding redundancy `N`.
    pub postcard_redundancy: usize,
    /// Append batch size `B` (16 in the paper's headline results).
    pub append_batch: usize,
    /// Path MTU toward the collector; batches larger than this segment into
    /// WRITE FIRST/MIDDLE/LAST sequences.
    pub mtu: usize,
    /// Optional RDMA rate limiter.
    pub rate_limit: Option<RateLimiterConfig>,
}

impl Default for TranslatorConfig {
    fn default() -> Self {
        TranslatorConfig {
            postcard_cache_slots: 32 * 1024,
            postcard_hops: 5,
            postcard_bits: 32,
            postcard_values: 1 << 12,
            postcard_redundancy: 1,
            append_batch: 16,
            mtu: dta_rdma::segment::MTU_1024,
            rate_limit: None,
        }
    }
}

/// Counters for the translation paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatorStats {
    /// DTA reports processed.
    pub reports_in: u64,
    /// RoCE packets emitted.
    pub rdma_out: u64,
    /// Reports dropped by the rate limiter.
    pub rate_limited: u64,
    /// NACKs sent back to reporters.
    pub nacks_sent: u64,
    /// Reports dropped because the target service is not connected.
    pub no_service: u64,
    /// QP resynchronizations performed after collector NAKs.
    pub resyncs: u64,
}

/// The result of translating one DTA report.
#[derive(Debug, Default)]
pub struct TranslatorOutput {
    /// RoCE packets to forward to the collector NIC.
    pub packets: Vec<RocePacket>,
    /// Whether a NACK should be returned to the reporter.
    pub nack: bool,
}

/// A connected per-primitive RDMA path.
struct ServiceConn {
    qp: QueuePair,
    params: ConnectionParams,
}

/// The DTA translator dataplane.
pub struct Translator {
    config: TranslatorConfig,
    family: HashFamily,
    csum: Checksummer,
    codec: ValueCodec,
    multicast: MulticastEngine,

    kw: Option<(ServiceConn, KwLayout)>,
    postcard: Option<(ServiceConn, PostcardLayout)>,
    append: Option<(ServiceConn, AppendLayout, AppendBatcher)>,
    cms: Option<(ServiceConn, CmsLayout)>,

    cache: PostcardCache,
    limiter: Option<RateLimiter>,
    /// Counters.
    pub stats: TranslatorStats,
}

impl Translator {
    /// Translator with no connected services.
    pub fn new(config: TranslatorConfig) -> Self {
        let mut multicast = MulticastEngine::new();
        for n in 1..=dta_hash::polynomials::MAX_REDUNDANCY as u16 {
            multicast.install_group(n, n);
        }
        let cache = PostcardCache::new(config.postcard_cache_slots, config.postcard_hops);
        let codec = ValueCodec::switch_ids(config.postcard_values, config.postcard_bits);
        let limiter = config.rate_limit.map(RateLimiter::new);
        Translator {
            config,
            family: HashFamily::new(dta_hash::polynomials::MAX_REDUNDANCY),
            csum: Checksummer::new(),
            codec,
            multicast,
            kw: None,
            postcard: None,
            append: None,
            cms: None,
            cache,
            limiter,
            stats: TranslatorStats::default(),
        }
    }

    /// Translator configuration.
    pub fn config(&self) -> &TranslatorConfig {
        &self.config
    }

    /// The postcard aggregation cache (for Figure 14 statistics).
    pub fn postcard_cache(&self) -> &PostcardCache {
        &self.cache
    }

    /// The append batcher, when connected.
    pub fn append_batcher(&self) -> Option<&AppendBatcher> {
        self.append.as_ref().map(|(_, _, b)| b)
    }

    /// Attach the Key-Write service (CM handshake result).
    pub fn connect_key_write(&mut self, qp: QueuePair, params: ConnectionParams) {
        let layout = KwLayout {
            base_va: params.base_va,
            slots: params.slots,
            value_bytes: params.slot_bytes - KwLayout::CSUM_BYTES,
        };
        self.kw = Some((ServiceConn { qp, params }, layout));
    }

    /// Attach the Postcarding service.
    pub fn connect_postcarding(&mut self, qp: QueuePair, params: ConnectionParams) {
        let layout = PostcardLayout {
            base_va: params.base_va,
            chunks: params.slots,
            hops: self.config.postcard_hops,
            slot_bits: self.config.postcard_bits,
        };
        assert_eq!(
            layout.chunk_stride(),
            params.slot_bytes as u64,
            "collector chunk stride disagrees with translator hop bound"
        );
        self.postcard = Some((ServiceConn { qp, params }, layout));
    }

    /// Attach the Append service.
    pub fn connect_append(&mut self, qp: QueuePair, params: ConnectionParams) {
        let entries_per_list = params.slots;
        let entry_bytes = params.slot_bytes;
        let list_bytes = entries_per_list * entry_bytes as u64;
        let lists = (params.region_len / list_bytes) as u32;
        let layout = AppendLayout {
            base_va: params.base_va,
            lists,
            entries_per_list,
            entry_bytes,
        };
        let batcher = AppendBatcher::new(layout, self.config.append_batch);
        self.append = Some((ServiceConn { qp, params }, layout, batcher));
    }

    /// Attach the Key-Increment service.
    pub fn connect_key_increment(&mut self, qp: QueuePair, params: ConnectionParams) {
        let layout = CmsLayout { base_va: params.base_va, slots: params.slots };
        self.cms = Some((ServiceConn { qp, params }, layout));
    }

    /// Handle a RoCE response from the collector (ACK or NAK). On NAK, the
    /// matching QP's send PSN resynchronizes to the collector's expected
    /// PSN (§5.2's queue-pair resynchronization).
    pub fn on_roce_response(&mut self, pkt: &RocePacket) {
        if !pkt.is_nak() {
            return;
        }
        let qpn = pkt.bth.dest_qp;
        for conn in [
            self.kw.as_mut().map(|(c, _)| c),
            self.postcard.as_mut().map(|(c, _)| c),
            self.append.as_mut().map(|(c, _, _)| c),
            self.cms.as_mut().map(|(c, _)| c),
        ]
        .into_iter()
        .flatten()
        {
            if conn.qp.qpn == qpn {
                conn.qp.resync_send(pkt.bth.psn);
                self.stats.resyncs += 1;
                return;
            }
        }
    }

    /// Translate one DTA report into RoCE packets (the ingress→egress
    /// traversal of Figure 6).
    pub fn process(&mut self, now_ns: u64, report: &DtaReport) -> TranslatorOutput {
        self.stats.reports_in += 1;
        let mut out = TranslatorOutput::default();
        let immediate = report.header.flags.immediate.then_some(report.header.seq);

        match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => {
                let Some((_, layout)) = &self.kw else {
                    self.stats.no_service += 1;
                    return out;
                };
                let layout = *layout;
                let n = h.redundancy as usize;
                if !self.admit(now_ns, n as u64, report, &mut out) {
                    return out;
                }
                // Slot image: checksum || value, padded to the slot width.
                let w = layout.value_bytes as usize;
                let mut img = Vec::with_capacity(4 + w);
                img.extend_from_slice(&self.csum.checksum32(h.key.as_bytes()).to_be_bytes());
                let take = report.payload.len().min(w);
                img.extend_from_slice(&report.payload[..take]);
                img.resize(4 + w, 0);

                // The PRE replicates the packet once per redundancy copy;
                // each replica's rid selects the hash function.
                let replicas = self
                    .multicast
                    .replicate(n as u16, ())
                    .expect("redundancy groups pre-installed");
                for r in replicas {
                    let va = layout.slot_va(&self.family, r.rid as usize, &h.key);
                    let rkey = self.kw.as_ref().expect("checked above").0.params.rkey;
                    let op = match immediate {
                        Some(imm) => RdmaOp::WriteImm {
                            rkey,
                            va,
                            data: Bytes::from(img.clone()),
                            imm,
                        },
                        None => RdmaOp::Write { rkey, va, data: Bytes::from(img.clone()) },
                    };
                    let conn = &mut self.kw.as_mut().expect("checked above").0;
                    out.packets.push(op.into_packet(&mut conn.qp));
                }
            }

            PrimitiveHeader::KeyIncrement(h) => {
                let Some((_, layout)) = &self.cms else {
                    self.stats.no_service += 1;
                    return out;
                };
                let layout = *layout;
                let n = h.redundancy as usize;
                if !self.admit(now_ns, n as u64, report, &mut out) {
                    return out;
                }
                let replicas = self
                    .multicast
                    .replicate(n as u16, ())
                    .expect("redundancy groups pre-installed");
                for r in replicas {
                    let va = layout.slot_va(&self.family, r.rid as usize, &h.key);
                    let (conn, _) = self.cms.as_mut().expect("checked above");
                    let op = RdmaOp::FetchAdd { rkey: conn.params.rkey, va, add: h.delta };
                    out.packets.push(op.into_packet(&mut conn.qp));
                }
            }

            PrimitiveHeader::Append(h) => {
                let Some((_, _, batcher)) = &mut self.append else {
                    self.stats.no_service += 1;
                    return out;
                };
                let Some(batch) = batcher.push(h.list_id, &report.payload) else {
                    return out; // staged or invalid list
                };
                if !self.admit(now_ns, 1, report, &mut out) {
                    return out;
                }
                let mtu = self.config.mtu;
                let (conn, _, _) = self.append.as_mut().expect("checked above");
                if batch.data.len() > mtu {
                    // Over-MTU batches take the segmented-write path (the
                    // immediate flag is not combinable with segmentation in
                    // this prototype; the WRITE LAST completes silently).
                    out.packets.extend(dta_rdma::segment::segment_write(
                        &mut conn.qp,
                        conn.params.rkey,
                        batch.va,
                        Bytes::from(batch.data),
                        mtu,
                    ));
                } else {
                    let op = match immediate {
                        Some(imm) => RdmaOp::WriteImm {
                            rkey: conn.params.rkey,
                            va: batch.va,
                            data: Bytes::from(batch.data),
                            imm,
                        },
                        None => RdmaOp::Write {
                            rkey: conn.params.rkey,
                            va: batch.va,
                            data: Bytes::from(batch.data),
                        },
                    };
                    out.packets.push(op.into_packet(&mut conn.qp));
                }
            }

            PrimitiveHeader::Postcarding(h) => {
                if self.postcard.is_none() {
                    self.stats.no_service += 1;
                    return out;
                }
                let word = hop_checksum(&h.key, h.hop, self.config.postcard_bits)
                    ^ self.codec.encode(Some(h.value));
                let emissions = self.cache.insert(&h.key, h.hop, h.path_len, word);
                for emission in emissions {
                    self.emit_postcard_chunk(now_ns, &emission, report, &mut out);
                }
            }
        }
        self.stats.rdma_out += out.packets.len() as u64;
        out
    }

    /// Flush translator-held state (cache rows, partial batches) — the
    /// periodic timer path.
    pub fn flush(&mut self, now_ns: u64) -> TranslatorOutput {
        let mut out = TranslatorOutput::default();
        for emission in self.cache.flush() {
            let fake = DtaReport::postcard(0, emission.key, 0, 0, 0);
            self.emit_postcard_chunk(now_ns, &emission, &fake, &mut out);
        }
        if let Some((_, layout, _)) = &self.append {
            let lists = layout.lists;
            for list in 0..lists {
                let (_, _, batcher) = self.append.as_mut().expect("just matched");
                let Some(batch) = batcher.flush(list) else { continue };
                let (conn, _, _) = self.append.as_mut().expect("just matched");
                let op = RdmaOp::Write {
                    rkey: conn.params.rkey,
                    va: batch.va,
                    data: Bytes::from(batch.data),
                };
                out.packets.push(op.into_packet(&mut conn.qp));
            }
        }
        self.stats.rdma_out += out.packets.len() as u64;
        out
    }

    /// Emit one aggregated postcard chunk (complete or early) as `N` chunk
    /// writes.
    fn emit_postcard_chunk(
        &mut self,
        now_ns: u64,
        emission: &CacheEmission,
        report: &DtaReport,
        out: &mut TranslatorOutput,
    ) {
        let n = self.config.postcard_redundancy;
        if !self.admit(now_ns, n as u64, report, out) {
            return;
        }
        let (_, layout) = self.postcard.as_ref().expect("caller checked service");
        let layout = *layout;
        // Fill unseen hops with blank codewords so every chunk write covers
        // all B slots (§4: "each flow always writes all B hops' values").
        let blank = self.codec.encode(None);
        let mut img = Vec::with_capacity(layout.chunk_stride() as usize);
        for hop in 0..layout.hops {
            let word = emission.words[hop as usize].unwrap_or_else(|| {
                hop_checksum(&emission.key, hop, layout.slot_bits) ^ blank
            });
            img.extend_from_slice(&word.to_be_bytes());
        }
        img.resize(layout.chunk_stride() as usize, 0);

        let replicas = self
            .multicast
            .replicate(n as u16, ())
            .expect("redundancy groups pre-installed");
        for r in replicas {
            let va = layout.chunk_va(&self.family, r.rid as usize, &emission.key);
            let (conn, _) = self.postcard.as_mut().expect("caller checked service");
            let op = RdmaOp::Write { rkey: conn.params.rkey, va, data: Bytes::from(img.clone()) };
            out.packets.push(op.into_packet(&mut conn.qp));
        }
    }

    /// Rate-limiter admission for `msgs` RDMA messages.
    fn admit(
        &mut self,
        now_ns: u64,
        msgs: u64,
        report: &DtaReport,
        out: &mut TranslatorOutput,
    ) -> bool {
        let Some(limiter) = &mut self.limiter else {
            return true;
        };
        if limiter.admit(now_ns, msgs) {
            return true;
        }
        self.stats.rate_limited += 1;
        if report.header.flags.nack_on_drop {
            out.nack = true;
            self.stats.nacks_sent += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_collector::service::{
        CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW,
        SERVICE_POSTCARD,
    };
    use dta_core::DtaFlags;
    use dta_rdma::cm::CmRequester;
    use dta_rdma::nic::RxOutcome;

    /// Build a collector + fully connected translator pair.
    fn connected() -> (CollectorService, Translator) {
        let mut svc = CollectorService::new(ServiceConfig::default());
        let mut tr = Translator::new(TranslatorConfig {
            postcard_values: 1 << 12,
            append_batch: 4,
            ..TranslatorConfig::default()
        });
        for (service, qpn) in [
            (SERVICE_KW, 0x31),
            (SERVICE_POSTCARD, 0x32),
            (SERVICE_APPEND, 0x33),
            (SERVICE_CMS, 0x34),
        ] {
            let req = CmRequester::new(qpn, 0);
            let reply = svc.handle_cm(&req.request(service));
            let (qp, params) = req.complete(&reply).unwrap();
            match service {
                SERVICE_KW => tr.connect_key_write(qp, params),
                SERVICE_POSTCARD => tr.connect_postcarding(qp, params),
                SERVICE_APPEND => tr.connect_append(qp, params),
                SERVICE_CMS => tr.connect_key_increment(qp, params),
                _ => unreachable!(),
            }
        }
        (svc, tr)
    }

    fn run(svc: &mut CollectorService, out: TranslatorOutput) {
        for pkt in &out.packets {
            match svc.nic_ingress(pkt) {
                RxOutcome::Executed(_) => {}
                other => panic!("collector rejected packet: {other:?}"),
            }
        }
    }

    #[test]
    fn keywrite_report_lands_and_queries() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::from_u64(7);
        let report = DtaReport::key_write(0, key, 2, vec![0xDE, 0xAD, 0xBE, 0xEF]);
        let out = tr.process(0, &report);
        assert_eq!(out.packets.len(), 2, "N=2 redundancy -> 2 writes");
        run(&mut svc, out);
        let kw = svc.keywrite.as_ref().unwrap();
        let got = kw.query(&key, 2, dta_collector::QueryPolicy::Plurality);
        assert_eq!(
            got,
            dta_collector::QueryOutcome::Found(vec![0xDE, 0xAD, 0xBE, 0xEF])
        );
    }

    #[test]
    fn postcards_aggregate_into_one_write() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::from_u64(11);
        let path = [5u32, 6, 7, 8, 9];
        let mut packets = 0;
        for (hop, v) in path.iter().enumerate() {
            let out = tr.process(0, &DtaReport::postcard(0, key, hop as u8, 5, *v));
            packets += out.packets.len();
            run(&mut svc, out);
        }
        assert_eq!(packets, 1, "5 postcards -> 1 chunk write (N=1)");
        let store = svc.postcarding.as_ref().unwrap();
        assert_eq!(
            store.query(&key, 1),
            dta_collector::PostcardQueryOutcome::Found(path.to_vec())
        );
    }

    #[test]
    fn append_batches_by_four() {
        let (mut svc, mut tr) = connected();
        let mut packets = 0;
        for i in 0..8u32 {
            let out = tr.process(0, &DtaReport::append(i, 3, i.to_be_bytes().to_vec()));
            packets += out.packets.len();
            run(&mut svc, out);
        }
        assert_eq!(packets, 2, "8 entries at batch 4 -> 2 writes");
        let reader = svc.append.as_mut().unwrap();
        for i in 0..8u32 {
            assert_eq!(reader.poll(3), i.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn key_increment_accumulates_via_fetch_add() {
        let (mut svc, mut tr) = connected();
        let key = TelemetryKey::src_ip(0x0A00_0001);
        for _ in 0..5 {
            let out = tr.process(0, &DtaReport::key_increment(0, key, 2, 10));
            run(&mut svc, out);
        }
        let s = svc.key_increment.as_ref().unwrap();
        assert_eq!(s.query(&key, 2), 50);
    }

    #[test]
    fn immediate_flag_raises_collector_completion() {
        let (mut svc, mut tr) = connected();
        let report = DtaReport::key_write(77, TelemetryKey::from_u64(1), 1, vec![1; 4])
            .with_flags(DtaFlags { immediate: true, nack_on_drop: false });
        let out = tr.process(0, &report);
        run(&mut svc, out);
        let wc = svc.nic.poll_completion().expect("immediate completion");
        assert_eq!(wc.imm, Some(77));
    }

    #[test]
    fn rate_limiter_drops_and_nacks() {
        let (_svc, _) = connected();
        let mut tr = Translator::new(TranslatorConfig {
            rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst: 2 }),
            ..TranslatorConfig::default()
        });
        // Connect only KW via a fresh collector.
        let mut svc = CollectorService::new(ServiceConfig::default());
        let req = CmRequester::new(1, 0);
        let reply = svc.handle_cm(&req.request(SERVICE_KW));
        let (qp, params) = req.complete(&reply).unwrap();
        tr.connect_key_write(qp, params);

        let flags = DtaFlags { immediate: false, nack_on_drop: true };
        let r1 = DtaReport::key_write(0, TelemetryKey::from_u64(1), 2, vec![0; 4])
            .with_flags(flags);
        let out1 = tr.process(0, &r1);
        assert_eq!(out1.packets.len(), 2);
        assert!(!out1.nack);
        let out2 = tr.process(0, &r1);
        assert!(out2.packets.is_empty(), "bucket exhausted");
        assert!(out2.nack);
        assert_eq!(tr.stats.rate_limited, 1);
        assert_eq!(tr.stats.nacks_sent, 1);
    }

    #[test]
    fn disconnected_service_drops_report() {
        let mut tr = Translator::new(TranslatorConfig::default());
        let out = tr.process(0, &DtaReport::append(0, 1, vec![0; 4]));
        assert!(out.packets.is_empty());
        assert_eq!(tr.stats.no_service, 1);
    }

    #[test]
    fn nak_resyncs_send_psn() {
        let (mut svc, mut tr) = connected();
        // Send one KW report normally.
        let out = tr.process(0, &DtaReport::key_write(0, TelemetryKey::from_u64(1), 1, vec![0; 4]));
        run(&mut svc, out);
        // Simulate loss: process a report but drop its packet, then send
        // another — the collector NAKs the gap.
        let _lost = tr.process(0, &DtaReport::key_write(1, TelemetryKey::from_u64(2), 1, vec![0; 4]));
        let out3 = tr.process(0, &DtaReport::key_write(2, TelemetryKey::from_u64(3), 1, vec![0; 4]));
        let nak = match svc.nic_ingress(&out3.packets[0]) {
            RxOutcome::Nak(nak) => nak,
            other => panic!("expected NAK, got {other:?}"),
        };
        tr.on_roce_response(&nak);
        assert_eq!(tr.stats.resyncs, 1);
        // After resync the stream flows again.
        let out4 = tr.process(0, &DtaReport::key_write(3, TelemetryKey::from_u64(4), 1, vec![0; 4]));
        run(&mut svc, out4);
    }

    #[test]
    fn flush_emits_partial_state() {
        let (mut svc, mut tr) = connected();
        // 3 postcards of a 5-hop path + 2 staged append entries.
        let key = TelemetryKey::from_u64(5);
        for hop in 0..3u8 {
            run(&mut svc, tr.process(0, &DtaReport::postcard(0, key, hop, 5, 42)));
        }
        run(&mut svc, tr.process(0, &DtaReport::append(0, 1, vec![1; 4])));
        let out = tr.flush(0);
        assert_eq!(out.packets.len(), 2, "one early chunk + one padded batch");
        run(&mut svc, out);
    }
}

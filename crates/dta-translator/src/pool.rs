//! The recycling slot/chunk image pool (DPDK-mempool style).
//!
//! Every translator instance — and therefore every shard of a
//! [`crate::ShardedTranslator`] — owns its pool outright: buffers recycle
//! within one shard's translate→NIC-execute→drop loop and are never shared
//! across threads, so the report hot path stays allocation-free without a
//! single synchronized free-list.

use bytes::Bytes;

/// Maximum slot/chunk image size served by the recycling pool; larger
/// images fall back to a `BytesMut` build (none of the paper's primitives
/// exceed it: Key-Write slots are `4 + value` bytes, Postcarding chunks
/// `next_pow2(B * 4)`).
pub(crate) const IMG_POOL_BUF: usize = 64;

/// Image pool depth. Buffers recycle once the NIC (or whatever consumed
/// the packets) drops them; the depth covers the packets in flight across
/// a couple of batches before the pool falls back to fresh allocations,
/// while staying small enough that the rotation is cache-resident (a
/// deeper pool guarantees a cold line per build and loses to the
/// allocator's LIFO fast path).
pub(crate) const IMG_POOL_DEPTH: usize = 1024;

/// A recycling pool of shared image buffers.
///
/// `build` hands out a zero-copy [`Bytes`] view of a pooled buffer when
/// the next buffer in rotation is no longer referenced by any packet;
/// otherwise it allocates a fresh buffer (graceful degradation when a
/// consumer retains payloads indefinitely). In the steady state —
/// translate, execute at the NIC, drop — the report hot path performs no
/// heap allocation at all.
#[derive(Debug)]
pub(crate) struct ImagePool {
    bufs: Vec<std::sync::Arc<[u8]>>,
    next: usize,
    /// Pool recycles (allocation-free images).
    pub(crate) recycled: u64,
    /// Fallback fresh allocations (pool buffer still referenced).
    pub(crate) allocated: u64,
}

impl ImagePool {
    pub(crate) fn new(depth: usize) -> Self {
        ImagePool {
            bufs: (0..depth)
                .map(|_| std::sync::Arc::from([0u8; IMG_POOL_BUF].as_slice()))
                .collect(),
            next: 0,
            recycled: 0,
            allocated: 0,
        }
    }

    /// Produce a `len`-byte image, letting `fill` write it. `len` must be
    /// at most [`IMG_POOL_BUF`].
    #[inline]
    pub(crate) fn build(&mut self, len: usize, fill: impl FnOnce(&mut [u8])) -> Bytes {
        debug_assert!(len <= IMG_POOL_BUF);
        let at = self.next;
        self.next = (self.next + 1) % self.bufs.len();
        let buf = &mut self.bufs[at];
        if let Some(bytes) = std::sync::Arc::get_mut(buf) {
            // Sole owner: every packet that referenced this buffer is gone;
            // reuse the allocation.
            bytes[..len].fill(0);
            fill(&mut bytes[..len]);
            self.recycled += 1;
            Bytes::from_owner(buf.clone()).slice(..len)
        } else {
            // Still referenced downstream: hand out a fresh full-width
            // buffer and park it in the rotation so it can recycle later.
            let mut staged = [0u8; IMG_POOL_BUF];
            fill(&mut staged[..len]);
            let arc: std::sync::Arc<[u8]> = std::sync::Arc::from(staged.as_slice());
            self.allocated += 1;
            self.bufs[at] = arc.clone();
            Bytes::from_owner(arc).slice(..len)
        }
    }
}

//! Report partitioning: multi-collector spread and shard dispatch.
//!
//! "It is beneficial to enable collection at multiple servers for
//! scalability or resiliency. DTA can be deployed alongside multiple
//! collectors and permit easy partitioning of reports based on the IP and
//! DTA headers." (§7)
//!
//! The partitioner inspects exactly the fields a Tofino parser would have in
//! headers — the primitive opcode and its key / list id — and picks a
//! target deterministically, so every report for the same key always lands
//! on the same collector *and*, inside the sharded translator, on the same
//! worker shard (the requirement for both queryability and per-key write
//! ordering).
//!
//! Routing is derived from the key's `checksum32` — the *same* digest the
//! translator's [`KeyScratch`] computes for slot validation — mixed to full
//! avalanche before reduction. Deriving both from one digest means the hot
//! dispatch path never hashes key bytes twice: [`Partitioner::route_cached`]
//! pulls the checksum out of a scratch (one 16-byte compare for a resident
//! key) and [`Partitioner::route_checksum`] reduces it, so a repeat-key
//! report costs zero CRC passes to route.

use dta_core::{DtaReport, PrimitiveHeader};
use dta_hash::scratch::KeyScratch;
use dta_hash::Checksummer;

/// Deterministic report-to-target partitioner over `targets` collectors or
/// shards.
///
/// The two routing levels — across collectors (§7) and across a
/// collector's translator shards — consume the *same* key digest, so they
/// must be domain-separated or the composition degenerates: the reports
/// reaching collector `c` are exactly those in one contiguous band of the
/// mixed digest, and an identical reduction over `S` shards would map that
/// whole band onto ~`S/C` shards, idling the rest. [`Partitioner::new`]
/// (collector level) and [`Partitioner::for_shards`] (shard level)
/// therefore mix under different salts.
#[derive(Debug)]
pub struct Partitioner {
    targets: u32,
    salt: u32,
    csum: Checksummer,
}

/// Domain-separation salt for shard-level dispatch (any constant distinct
/// from the collector level's 0 works; the mix's avalanche does the rest).
const SHARD_SALT: u32 = 0x5AB5_EED1;

/// Full-avalanche 32-bit mix (murmur3 fmix32). The checksum's low bits are
/// also stored verbatim in Key-Write slots; mixing decorrelates the shard
/// index from anything slot contents or slot addressing derive from it.
#[inline]
fn mix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    h
}

/// Collector-level reduction of an already-computed key `checksum32` over
/// `targets`, identical to `Partitioner::new(targets).route_checksum(c)`
/// but without constructing a partitioner — the failover routing table
/// re-reduces checksums over survivor subsets of varying size, and must
/// stay bit-compatible with the primary collector-level routing.
#[inline]
pub fn collector_route(checksum: u32, targets: u32) -> u32 {
    debug_assert!(targets > 0, "need at least one routing target");
    ((mix32(checksum) as u64 * targets as u64) >> 32) as u32
}

/// Collector-level Append-list reduction, the list analogue of
/// [`collector_route`] (bit-compatible with
/// `Partitioner::new(targets).route_list(id)`).
#[inline]
pub fn collector_route_list(list_id: u32, targets: u32) -> u32 {
    debug_assert!(targets > 0, "need at least one routing target");
    ((mix32(list_id ^ 0xA99D_0C95) as u64 * targets as u64) >> 32) as u32
}

impl Partitioner {
    /// Collector-level partitioner over `targets` collectors.
    ///
    /// # Panics
    /// Panics if `targets` is zero.
    pub fn new(targets: u32) -> Self {
        assert!(targets > 0, "need at least one partition target");
        Partitioner { targets, salt: 0, csum: Checksummer::new() }
    }

    /// Shard-level partitioner over `targets` worker shards —
    /// domain-separated from [`Partitioner::new`] so stacking the two
    /// levels (collector spread, then shard dispatch) still loads every
    /// shard.
    ///
    /// # Panics
    /// Panics if `targets` is zero.
    pub fn for_shards(targets: u32) -> Self {
        assert!(targets > 0, "need at least one partition target");
        Partitioner { targets, salt: SHARD_SALT, csum: Checksummer::new() }
    }

    /// Number of targets (collectors or shards).
    pub fn targets(&self) -> u32 {
        self.targets
    }

    /// Target index for an already-computed key `checksum32` — the re-hash-
    /// free entry point shard dispatch uses with a scratch-cached checksum.
    #[inline]
    pub fn route_checksum(&self, checksum: u32) -> u32 {
        // Multiply-shift reduction (no division) over the mixed digest.
        ((mix32(checksum ^ self.salt) as u64 * self.targets as u64) >> 32) as u32
    }

    /// Target index for an Append list.
    #[inline]
    pub fn route_list(&self, list_id: u32) -> u32 {
        ((mix32(list_id ^ 0xA99D_0C95 ^ self.salt) as u64 * self.targets as u64) >> 32) as u32
    }

    /// Target index for a report, computing the key checksum from scratch
    /// (one CRC pass). Dispatch loops should prefer
    /// [`Partitioner::route_cached`].
    pub fn route(&self, report: &DtaReport) -> u32 {
        match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => {
                self.route_checksum(self.csum.checksum32(h.key.as_bytes()))
            }
            PrimitiveHeader::KeyIncrement(h) => {
                self.route_checksum(self.csum.checksum32(h.key.as_bytes()))
            }
            PrimitiveHeader::Postcarding(h) => {
                self.route_checksum(self.csum.checksum32(h.key.as_bytes()))
            }
            PrimitiveHeader::Append(h) => self.route_list(h.list_id),
        }
    }

    /// Target index for a report, reusing `scratch`'s cached checksum for
    /// keyed primitives: a key that routed recently costs one 16-byte
    /// compare instead of a CRC pass over the key bytes. The scratch is the
    /// caller's (the ingest thread owns one, independent of the per-shard
    /// scratches), so dispatch never contends with translation.
    pub fn route_cached(&self, scratch: &mut KeyScratch, report: &DtaReport) -> u32 {
        let key = match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => &h.key,
            PrimitiveHeader::KeyIncrement(h) => &h.key,
            PrimitiveHeader::Postcarding(h) => &h.key,
            PrimitiveHeader::Append(h) => return self.route_list(h.list_id),
        };
        self.route_checksum(scratch.digests(key.as_bytes(), 0).checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::TelemetryKey;

    #[test]
    fn same_key_same_collector() {
        let p = Partitioner::new(4);
        let k = TelemetryKey::from_u64(1);
        let a = DtaReport::key_write(0, k, 2, vec![1; 4]);
        let b = DtaReport::key_write(99, k, 1, vec![2; 4]);
        assert_eq!(p.route(&a), p.route(&b), "same key must co-locate");
    }

    #[test]
    fn postcards_colocate_with_their_flow() {
        let p = Partitioner::new(8);
        let k = TelemetryKey::from_u64(42);
        let first = p.route(&DtaReport::postcard(0, k, 0, 5, 1));
        for hop in 1..5 {
            assert_eq!(p.route(&DtaReport::postcard(0, k, hop, 5, 1)), first);
        }
    }

    #[test]
    fn appends_partition_by_list() {
        let p = Partitioner::new(4);
        let a = p.route(&DtaReport::append(0, 7, vec![0; 4]));
        let b = p.route(&DtaReport::append(1, 7, vec![1; 4]));
        assert_eq!(a, b);
    }

    #[test]
    fn load_spreads_across_collectors() {
        let p = Partitioner::new(4);
        let mut counts = [0u32; 4];
        for i in 0..4000u64 {
            let r = DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![0; 4]);
            counts[p.route(&r) as usize] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn append_lists_spread_across_collectors() {
        let p = Partitioner::new(4);
        let mut counts = [0u32; 4];
        for list in 0..4000u32 {
            counts[p.route_list(list) as usize] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "imbalanced lists: {counts:?}");
        }
    }

    #[test]
    fn shard_routing_spreads_within_one_collector_band() {
        // Stacked deployment: collector-level spread, then shard dispatch
        // inside one collector. Without domain separation every key that
        // reaches collector 0 would land on shard 0; with it, all shards
        // stay loaded.
        let collectors = Partitioner::new(4);
        let shards = Partitioner::for_shards(4);
        let mut shard_counts = [0u32; 4];
        let mut list_counts = [0u32; 4];
        let mut kept = 0;
        for i in 0..16_000u64 {
            let r = DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![0; 4]);
            if collectors.route(&r) == 0 {
                shard_counts[shards.route(&r) as usize] += 1;
                kept += 1;
            }
        }
        for list in 0..4000u32 {
            if collectors.route_list(list) == 0 {
                list_counts[shards.route_list(list) as usize] += 1;
            }
        }
        assert!(kept > 3000, "collector band unexpectedly small: {kept}");
        for (s, c) in shard_counts.iter().enumerate() {
            assert!(
                *c * 4 > kept / 2,
                "shard {s} starved inside collector 0's band: {shard_counts:?}"
            );
        }
        for (s, c) in list_counts.iter().enumerate() {
            assert!(*c > 100, "list shard {s} starved: {list_counts:?}");
        }
    }

    #[test]
    fn collector_route_helpers_match_partitioner_reductions() {
        // The failover routing table reduces checksums through the free
        // functions (no `Partitioner` in hand); they must stay
        // bit-compatible with the collector-level partitioner at every
        // fleet size, or a failed-over translator would disagree with a
        // fresh one about key ownership.
        for targets in [1u32, 2, 3, 5, 8] {
            let p = Partitioner::new(targets);
            for csum in (0..100_000u32).step_by(97) {
                assert_eq!(collector_route(csum, targets), p.route_checksum(csum));
            }
            for list in 0..512u32 {
                assert_eq!(collector_route_list(list, targets), p.route_list(list));
            }
        }
    }

    #[test]
    fn collector_repartition_leaves_shard_routing_untouched() {
        // Failover re-partitions the collector level: `targets` shrinks
        // from N to the survivor count while the shard level stays at its
        // configured width. The two levels are domain-separated (salt 0 vs
        // `SHARD_SALT`), so changing targets at one level must not move a
        // single key at the other — and within any one shard, collector
        // routing must keep spreading over every collector (no cross-level
        // correlation) at every fleet size.
        const SHARDS: usize = 4;
        let shards = Partitioner::for_shards(SHARDS as u32);
        let mut scratch = KeyScratch::new(1024, 1);
        let reports: Vec<DtaReport> = (0..4096u64)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![0; 4]))
            .collect();
        let baseline: Vec<u32> =
            reports.iter().map(|r| shards.route_cached(&mut scratch, r)).collect();

        for targets in [4u32, 3, 2] {
            let collectors = Partitioner::new(targets);
            let rerouted: Vec<u32> =
                reports.iter().map(|r| shards.route_cached(&mut scratch, r)).collect();
            assert_eq!(baseline, rerouted, "shard routes moved at fleet size {targets}");

            let mut cells = vec![[0u32; SHARDS]; targets as usize];
            for (r, &shard) in reports.iter().zip(&baseline) {
                cells[collectors.route(r) as usize][shard as usize] += 1;
            }
            let expect = 4096 / (targets * SHARDS as u32);
            for (c, row) in cells.iter().enumerate() {
                for (s, &n) in row.iter().enumerate() {
                    assert!(
                        n * 2 > expect,
                        "collector {c} x shard {s} starved at fleet size \
                         {targets}: {n} of ~{expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_level_routing_never_collapses_for_adversarial_key_sets() {
        // Regression for the shard/collector domain-separation gap. Two
        // adversarial constructions, each of which defeats a *naive*
        // two-level scheme (same reduction at both levels, or modulo over
        // the raw checksum):
        //
        // 1. For every collector c, the exact key set routed to c — under a
        //    shared reduction these all land on ~1 shard.
        // 2. Keys filtered so `checksum32 % shards` is one constant — under
        //    an unmixed/unsalted modulo reduction these collapse by
        //    construction.
        //
        // In both cases the salted + mixed shard level must keep every
        // shard loaded.
        const COLLECTORS: u32 = 4;
        const SHARDS: u32 = 4;
        let collectors = Partitioner::new(COLLECTORS);
        let shards = Partitioner::for_shards(SHARDS);
        let csum = dta_hash::Checksummer::new();

        for collector in 0..COLLECTORS {
            let mut counts = [0u32; SHARDS as usize];
            let mut kept = 0u32;
            for i in 0..32_000u64 {
                let r = DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![0; 4]);
                if collectors.route(&r) == collector {
                    counts[shards.route(&r) as usize] += 1;
                    kept += 1;
                }
            }
            for (s, c) in counts.iter().enumerate() {
                assert!(
                    *c * SHARDS * 2 > kept,
                    "collector {collector}'s band starves shard {s}: {counts:?} of {kept}"
                );
            }
        }

        for residue in 0..SHARDS {
            let mut counts = [0u32; SHARDS as usize];
            let mut kept = 0u32;
            let mut i = 0u64;
            while kept < 4_000 {
                let k = TelemetryKey::from_u64(i);
                i += 1;
                if csum.checksum32(k.as_bytes()) % SHARDS != residue {
                    continue;
                }
                kept += 1;
                counts[shards.route_checksum(csum.checksum32(k.as_bytes())) as usize] += 1;
            }
            for (s, c) in counts.iter().enumerate() {
                assert!(
                    *c * SHARDS * 2 > kept,
                    "checksum-residue-{residue} keys starve shard {s}: {counts:?}"
                );
            }
        }
    }

    #[test]
    fn single_collector_always_zero() {
        let p = Partitioner::new(1);
        let r = DtaReport::append(0, 123, vec![0; 4]);
        assert_eq!(p.route(&r), 0);
    }

    #[test]
    fn cached_route_matches_uncached_without_rehashing() {
        // The scratch-cached route must agree with the direct one for every
        // primitive, and repeated keys must not re-run the CRC engine — the
        // property that makes shard dispatch hash key bytes at most once
        // per *new* key, not once per report.
        let p = Partitioner::new(8);
        let mut scratch = KeyScratch::new(4096, 1);
        let reports: Vec<DtaReport> = (0..64u64)
            .flat_map(|i| {
                let k = TelemetryKey::from_u64(i);
                [
                    DtaReport::key_write(0, k, 2, vec![1; 4]),
                    DtaReport::key_increment(0, k, 2, 1),
                    DtaReport::postcard(0, k, 0, 5, 9),
                    DtaReport::append(0, i as u32 % 16, vec![0; 4]),
                ]
            })
            .collect();
        for r in &reports {
            assert_eq!(p.route_cached(&mut scratch, r), p.route(r));
        }
        let after_first_pass = scratch.stats;
        assert_eq!(after_first_pass.misses, 64, "one CRC pass per distinct key");
        // Second pass over the same stream: all keyed routes hit the cache.
        for r in &reports {
            p.route_cached(&mut scratch, r);
        }
        assert_eq!(scratch.stats.misses, after_first_pass.misses);
        assert_eq!(scratch.stats.hits, after_first_pass.hits + 3 * 64);
    }

    #[test]
    fn route_checksum_agrees_with_translator_checksum() {
        // The routing digest IS the translator/collector checksum32 — the
        // contract that lets dispatch reuse the KeyScratch value.
        let p = Partitioner::new(16);
        let k = TelemetryKey::from_u64(77);
        let direct = p.route(&DtaReport::key_write(0, k, 1, vec![0; 4]));
        let from_csum = p.route_checksum(dta_hash::checksum32(k.as_bytes()));
        assert_eq!(direct, from_csum);
    }
}

//! Multi-collector partitioning.
//!
//! "It is beneficial to enable collection at multiple servers for
//! scalability or resiliency. DTA can be deployed alongside multiple
//! collectors and permit easy partitioning of reports based on the IP and
//! DTA headers." (§7)
//!
//! The partitioner inspects exactly the fields a Tofino parser would have in
//! headers — the primitive opcode and its key / list id — and picks a
//! collector deterministically, so every report for the same key always
//! lands on the same collector (a requirement for queryability).

use dta_core::{DtaReport, PrimitiveHeader};
use dta_hash::{Crc32, CrcParams};

/// Deterministic report-to-collector partitioner.
#[derive(Debug)]
pub struct Partitioner {
    collectors: u32,
    hash: Crc32,
}

impl Partitioner {
    /// Partitioner over `collectors` collectors.
    ///
    /// # Panics
    /// Panics if `collectors` is zero.
    pub fn new(collectors: u32) -> Self {
        assert!(collectors > 0, "need at least one collector");
        Partitioner { collectors, hash: Crc32::new(CrcParams::KOOPMAN) }
    }

    /// Number of collectors.
    pub fn collectors(&self) -> u32 {
        self.collectors
    }

    /// Collector index for a report.
    pub fn route(&self, report: &DtaReport) -> u32 {
        let digest = match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => self.hash.compute(h.key.as_bytes()),
            PrimitiveHeader::KeyIncrement(h) => self.hash.compute(h.key.as_bytes()),
            PrimitiveHeader::Postcarding(h) => self.hash.compute(h.key.as_bytes()),
            PrimitiveHeader::Append(h) => self.hash.compute(&h.list_id.to_be_bytes()),
        };
        digest % self.collectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::TelemetryKey;

    #[test]
    fn same_key_same_collector() {
        let p = Partitioner::new(4);
        let k = TelemetryKey::from_u64(1);
        let a = DtaReport::key_write(0, k, 2, vec![1; 4]);
        let b = DtaReport::key_write(99, k, 1, vec![2; 4]);
        assert_eq!(p.route(&a), p.route(&b), "same key must co-locate");
    }

    #[test]
    fn postcards_colocate_with_their_flow() {
        let p = Partitioner::new(8);
        let k = TelemetryKey::from_u64(42);
        let first = p.route(&DtaReport::postcard(0, k, 0, 5, 1));
        for hop in 1..5 {
            assert_eq!(p.route(&DtaReport::postcard(0, k, hop, 5, 1)), first);
        }
    }

    #[test]
    fn appends_partition_by_list() {
        let p = Partitioner::new(4);
        let a = p.route(&DtaReport::append(0, 7, vec![0; 4]));
        let b = p.route(&DtaReport::append(1, 7, vec![1; 4]));
        assert_eq!(a, b);
    }

    #[test]
    fn load_spreads_across_collectors() {
        let p = Partitioner::new(4);
        let mut counts = [0u32; 4];
        for i in 0..4000u64 {
            let r = DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![0; 4]);
            counts[p.route(&r) as usize] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn single_collector_always_zero() {
        let p = Partitioner::new(1);
        let r = DtaReport::append(0, 123, vec![0; 4]);
        assert_eq!(p.route(&r), 0);
    }
}

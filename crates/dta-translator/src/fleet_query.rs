//! Fleet-wide query routing over per-collector [`QueryEngine`]s.
//!
//! The collector fleet scatters point-lookup state when it lives through a
//! fault window: keys written while their primary owner was dead landed at
//! the failover fallback, and a rejoin without a rebalance leaves them
//! there. [`FleetQueryEngine`] therefore routes exactly like the wire side
//! — the same checksum digest and [`CollectorRoutingTable`] reduction the
//! translators used — and, on an owner miss for the key-addressed read
//! primitives, fans out to the rest of the alive fleet. Write-once slots
//! make the first hit authoritative.
//!
//! Routing per primitive:
//!
//! * **Key-Write** — owner first, then every other alive collector until a
//!   non-`NotFound` outcome. Each *probed* non-owner collector counts in
//!   [`QueryResponse::fanout`] — a collector with no Key-Write store is
//!   skipped uncounted, exactly like the historical fleet audit.
//! * **Postcarding** — same owner-first chain, stopping at the first
//!   decoded value.
//! * **Append** — the list's owner only ([`CollectorRoutingTable::owner_list`]);
//!   a list's ring lives wholly on one collector.
//! * **Key-Increment** — the key's owner only: a CMS min over a collector
//!   that never saw the key would always answer 0 and drag the estimate
//!   down, so fan-out would be wrong, not just wasteful.
//!
//! The wrapped engines can be live [`StoreQueryEngine`]s (post-run audits)
//! or [`SnapshotQueryEngine`]s (the scenario harness's paced query service
//! reading per-epoch images) — routing is independent of where the bytes
//! come from.
//!
//! [`StoreQueryEngine`]: dta_collector::StoreQueryEngine
//! [`SnapshotQueryEngine`]: dta_collector::SnapshotQueryEngine

use dta_collector::{QueryEngine, QueryRequest, QueryResponse, QueryResult};
use dta_core::TelemetryKey;
use dta_hash::scratch::KeyScratch;

use crate::failover::CollectorRoutingTable;

/// Owner-first, salted-fan-out query routing across a collector fleet.
#[derive(Debug)]
pub struct FleetQueryEngine<'t, E> {
    /// One engine per fleet slot (dead collectors keep their slot; the
    /// table's aliveness filter decides who gets probed).
    engines: Vec<E>,
    table: &'t CollectorRoutingTable,
    /// The digest pipeline the translators route with (salt 0).
    scratch: KeyScratch,
}

impl<'t, E: QueryEngine> FleetQueryEngine<'t, E> {
    /// Engine over `engines[c]` for fleet slot `c`, routed by `table`.
    ///
    /// # Panics
    /// Panics if the engine count does not match the table's fleet size.
    pub fn new(engines: Vec<E>, table: &'t CollectorRoutingTable) -> Self {
        assert_eq!(
            engines.len(),
            table.len() as usize,
            "one engine per fleet slot"
        );
        FleetQueryEngine { engines, table, scratch: KeyScratch::new(16 * 1024, 1) }
    }

    /// The key's current owner per the routing table.
    fn owner_of(&mut self, key: &TelemetryKey) -> u32 {
        self.table.owner_checksum(self.scratch.digests(key.as_bytes(), 0).checksum)
    }
}

impl<E: QueryEngine> QueryEngine for FleetQueryEngine<'_, E> {
    fn execute(&mut self, req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::AppendPoll { list } => {
                let owner = self.table.owner_list(*list) as usize;
                self.engines[owner].execute(req)
            }
            QueryRequest::Increment { key, .. } => {
                let owner = self.owner_of(key) as usize;
                self.engines[owner].execute(req)
            }
            QueryRequest::KeyWrite { key, .. } | QueryRequest::Postcard { key, .. } => {
                let owner = self.owner_of(key);
                let chain = std::iter::once(owner).chain(
                    (0..self.table.len()).filter(|&c| c != owner && self.table.is_alive(c)),
                );
                let mut probes = 0u32;
                let mut fanout = 0u32;
                let mut last = QueryResult::Unavailable;
                for c in chain {
                    let resp = self.engines[c as usize].execute(req);
                    if matches!(resp.result, QueryResult::Unavailable) {
                        // Absent store: skipped without counting, like the
                        // historical audit's `else { continue }`.
                        continue;
                    }
                    if c != owner {
                        fanout += 1;
                    }
                    probes += resp.probes;
                    let decided = match &resp.result {
                        QueryResult::KeyWrite(o) => {
                            !matches!(o, dta_collector::QueryOutcome::NotFound)
                        }
                        QueryResult::Postcard(o) => o.is_found(),
                        // Unreachable for these requests, but a decided
                        // answer either way.
                        _ => true,
                    };
                    last = resp.result;
                    if decided {
                        break;
                    }
                }
                QueryResponse { result: last, probes, fanout }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_collector::layout::KwLayout;
    use dta_collector::{KeyWriteStore, QueryOutcome, QueryPolicy, StoreQueryEngine};
    use dta_rdma::mr::{MemoryRegion, MrAccess};

    fn kw_store(base_va: u64) -> KeyWriteStore {
        let layout = KwLayout { base_va, slots: 1024, value_bytes: 4 };
        let region =
            MemoryRegion::new(base_va, layout.region_len() as usize, 1, MrAccess::WRITE);
        KeyWriteStore::new(layout, region, 4)
    }

    fn kw_req(key: &TelemetryKey) -> QueryRequest {
        QueryRequest::KeyWrite {
            key: *key,
            redundancy: 2,
            policy: QueryPolicy::Plurality,
        }
    }

    #[test]
    fn owner_hit_needs_no_fanout() {
        let stores: Vec<_> = (0..3).map(|c| kw_store(0x1000 * (c + 1))).collect();
        let table = CollectorRoutingTable::new(3);
        let key = TelemetryKey::from_u64(7);
        // Find the owner via the same scratch the engine uses and write
        // the key there.
        let mut scratch = KeyScratch::new(16 * 1024, 1);
        let owner = table.owner_checksum(scratch.digests(key.as_bytes(), 0).checksum);
        stores[owner as usize].insert_direct(&key, &[5; 4], 2);

        let engines = stores.iter().map(StoreQueryEngine::for_keywrite).collect();
        let mut fleet = FleetQueryEngine::new(engines, &table);
        let resp = fleet.execute(&kw_req(&key));
        assert_eq!(resp.result, QueryResult::KeyWrite(QueryOutcome::Found(vec![5; 4])));
        assert_eq!(resp.fanout, 0, "owner answered; no fan-out");
    }

    #[test]
    fn owner_miss_fans_out_to_the_alive_fleet() {
        let stores: Vec<_> = (0..3).map(|c| kw_store(0x1000 * (c + 1))).collect();
        let table = CollectorRoutingTable::new(3);
        let key = TelemetryKey::from_u64(7);
        let mut scratch = KeyScratch::new(16 * 1024, 1);
        let owner = table.owner_checksum(scratch.digests(key.as_bytes(), 0).checksum);
        // Scatter the key to a non-owner (as a fault window would).
        let holder = (0..3).find(|c| *c != owner).unwrap();
        stores[holder as usize].insert_direct(&key, &[9; 4], 2);

        let engines = stores.iter().map(StoreQueryEngine::for_keywrite).collect();
        let mut fleet = FleetQueryEngine::new(engines, &table);
        let resp = fleet.execute(&kw_req(&key));
        assert_eq!(resp.result, QueryResult::KeyWrite(QueryOutcome::Found(vec![9; 4])));
        assert!(resp.fanout >= 1, "the hit came from a non-owner probe");
    }

    #[test]
    fn absent_stores_are_skipped_without_counting_fanout() {
        // Three slots, but only the owner-miss chain's *last* collector
        // has any store at all.
        let table = CollectorRoutingTable::new(3);
        let key = TelemetryKey::from_u64(3);
        let store = kw_store(0x1000);
        let mut engines: Vec<StoreQueryEngine> =
            (0..3).map(|_| StoreQueryEngine::default()).collect();
        engines[2] = StoreQueryEngine::for_keywrite(&store);
        let mut fleet = FleetQueryEngine::new(engines, &table);
        let resp = fleet.execute(&kw_req(&key));
        // At most one collector was actually probed (slot 2, if non-owner).
        assert!(resp.fanout <= 1);
        assert_eq!(resp.result, QueryResult::KeyWrite(QueryOutcome::NotFound));
    }

    #[test]
    fn append_and_increment_stay_owner_only() {
        let table = CollectorRoutingTable::new(2);
        let engines: Vec<StoreQueryEngine> =
            (0..2).map(|_| StoreQueryEngine::default()).collect();
        let mut fleet = FleetQueryEngine::new(engines, &table);
        let resp = fleet.execute(&QueryRequest::AppendPoll { list: 0 });
        assert_eq!(resp.fanout, 0);
        let resp = fleet.execute(&QueryRequest::Increment {
            key: TelemetryKey::from_u64(1),
            redundancy: 2,
        });
        assert_eq!(resp.fanout, 0);
    }

    #[test]
    #[should_panic]
    fn engine_count_must_match_fleet_size() {
        let table = CollectorRoutingTable::new(3);
        let engines: Vec<StoreQueryEngine> = vec![StoreQueryEngine::default()];
        let _ = FleetQueryEngine::new(engines, &table);
    }
}

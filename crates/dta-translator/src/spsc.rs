//! Bounded single-producer / single-consumer report queues.
//!
//! The sharded translator places one of these between its ingest thread and
//! each worker shard. The design is the classic lock-free ring: a
//! power-of-two slot array indexed by free-running `head` (consumer) and
//! `tail` (producer) counters. Each side keeps a *cached* copy of the
//! other's counter, so the steady state *reads* the opposing counter's
//! cache line once per fill/drain cycle, not per item (the publishing
//! store of one's own counter is still per push/pop-batch, as in any SPSC
//! ring).
//!
//! Backpressure is explicit: [`Producer::push`] fails (returning the item)
//! when the ring is full, and the caller decides whether to spin, yield, or
//! drop — the sharded ingest loop yields, which bounds translator memory at
//! `shards × capacity` reports no matter how far a shard falls behind.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pad-to-cache-line wrapper: keeps the producer and consumer counters on
/// separate lines so the two threads don't false-share.
#[repr(align(64))]
struct CacheLine<T>(T);

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read (free-running).
    head: CacheLine<AtomicUsize>,
    /// Next slot the producer will write (free-running).
    tail: CacheLine<AtomicUsize>,
}

// SAFETY: slots are handed off by the head/tail protocol — a slot is
// written only by the producer while `tail - capacity <= slot < head`
// readers can't see it, and read only by the consumer after the producer's
// Release store of `tail` makes the write visible.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone; drop whatever items were still queued.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for at in head..tail {
            // SAFETY: `&mut self` in Drop means no producer/consumer is
            // live, and every slot in `head..tail` was initialized by a
            // producer `write` whose tail publication happened-before the
            // last handle dropped.
            unsafe { (*self.buf[at & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The producing half (ingest thread side).
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of `tail` (only this side advances it).
    tail: usize,
    /// Cached view of the consumer's `head`; refreshed only when the ring
    /// looks full.
    cached_head: usize,
}

/// The consuming half (shard worker side).
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of `head` (only this side advances it).
    head: usize,
    /// Cached view of the producer's `tail`; refreshed only when the ring
    /// looks empty.
    cached_tail: usize,
}

// Manual impls: queued items may be mid-handoff, so only the counters are
// printable — and going through `derive` would demand `T: Debug` anyway.
impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &(self.ring.mask + 1))
            .field("tail", &self.tail)
            .field("cached_head", &self.cached_head)
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &(self.ring.mask + 1))
            .field("head", &self.head)
            .field("cached_tail", &self.cached_tail)
            .finish()
    }
}

/// A bounded SPSC channel of at least `capacity` slots (rounded up to a
/// power of two, minimum 2).
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.next_power_of_two().max(2);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        head: CacheLine(AtomicUsize::new(0)),
        tail: CacheLine(AtomicUsize::new(0)),
    });
    (
        Producer { ring: ring.clone(), tail: 0, cached_head: 0 },
        Consumer { ring, head: 0, cached_tail: 0 },
    )
}

impl<T> Producer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Enqueue `item`, or hand it back if the ring is full.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let cap = self.ring.mask + 1;
        if self.tail - self.cached_head == cap {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            if self.tail - self.cached_head == cap {
                return Err(item);
            }
        }
        // SAFETY: `self.tail - head < cap` was just established, so this
        // slot is outside the consumer's visible `head..tail` window — the
        // single producer has exclusive access until the Release store of
        // `tail` below publishes it.
        unsafe {
            (*self.ring.buf[self.tail & self.ring.mask].get()).write(item);
        }
        self.tail += 1;
        self.ring.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Dequeue one item, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: `head < cached_tail` and `cached_tail` came from an
        // Acquire load of the producer's Release-published `tail`, so the
        // slot's `write` happened-before this read; the single consumer
        // owns the slot until it advances `head`.
        let item =
            unsafe { (*self.ring.buf[self.head & self.ring.mask].get()).assume_init_read() };
        self.head += 1;
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Drain up to `max` items into `out`, publishing the consumed range
    /// once — the shard worker's batch entry point. Returns the number
    /// drained.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if self.head == self.cached_tail {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
        }
        let avail = (self.cached_tail - self.head).min(max);
        for _ in 0..avail {
            // SAFETY: as in `pop` — every slot below the Acquire-loaded
            // `cached_tail` was initialized by the producer before its
            // Release store of `tail`, and only this consumer reads it.
            let item = unsafe {
                (*self.ring.buf[self.head & self.ring.mask].get()).assume_init_read()
            };
            out.push(item);
            self.head += 1;
        }
        if avail > 0 {
            self.ring.head.0.store(self.head, Ordering::Release);
        }
        avail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = channel::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "fifth push must report full");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Space reclaimed after pops.
        tx.push(7).unwrap();
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    fn pop_batch_drains_in_order() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 4);
        assert_eq!(out, [0, 1, 2, 3]);
        assert_eq!(rx.pop_batch(&mut out, 100), 6);
        assert_eq!(out[4..], [4, 5, 6, 7, 8, 9]);
        assert_eq!(rx.pop_batch(&mut out, 100), 0);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = channel::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = channel::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(256);
        let consumer = std::thread::spawn(move || {
            let mut expected = 0u64;
            let mut batch = Vec::with_capacity(64);
            while expected < N {
                batch.clear();
                if rx.pop_batch(&mut batch, 64) == 0 {
                    std::thread::yield_now();
                    continue;
                }
                for v in &batch {
                    assert_eq!(*v, expected, "reordered or lost item");
                    expected += 1;
                }
            }
            expected
        });
        let mut v = 0u64;
        while v < N {
            match tx.push(v) {
                Ok(()) => v += 1,
                Err(_) => std::thread::yield_now(),
            }
        }
        assert_eq!(consumer.join().unwrap(), N);
    }

    #[test]
    fn slow_consumer_backpressures_without_loss_and_bounded_memory() {
        // A deliberately slow consumer against a tiny ring: the producer
        // must hit explicit backpressure (failed pushes), the ring must
        // never hold more than its capacity (bounded memory — the invariant
        // the sharded ingest loop's `shards × queue_depth` bound rests on),
        // and once the consumer drains, every item must have arrived intact
        // and in order.
        const N: u64 = 50_000;
        const CAP: usize = 8;
        let (mut tx, mut rx) = channel::<u64>(CAP);
        assert_eq!(tx.capacity(), CAP);
        let consumer = std::thread::spawn(move || {
            let mut expected = 0u64;
            let mut batch = Vec::with_capacity(4);
            let mut max_seen = 0usize;
            while expected < N {
                // Slow drain: tiny batches with a yield between them.
                batch.clear();
                let n = rx.pop_batch(&mut batch, 3);
                max_seen = max_seen.max(n);
                for v in &batch {
                    assert_eq!(*v, expected, "lost or reordered under backpressure");
                    expected += 1;
                }
                std::thread::yield_now();
            }
            (expected, max_seen)
        });
        let mut backpressure = 0u64;
        let mut v = 0u64;
        while v < N {
            match tx.push(v) {
                Ok(()) => v += 1,
                Err(returned) => {
                    // The ring hands the item back instead of dropping it.
                    assert_eq!(returned, v);
                    backpressure += 1;
                    std::thread::yield_now();
                }
            }
        }
        let (drained, max_batch) = consumer.join().unwrap();
        assert_eq!(drained, N, "items lost once drained");
        assert!(backpressure > 0, "a slow consumer must exert backpressure");
        assert!(max_batch <= CAP, "ring exceeded its capacity bound");
    }

    #[test]
    fn queued_items_drop_exactly_once() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = channel::<D>(8);
        for _ in 0..5 {
            tx.push(D).unwrap();
        }
        drop(rx.pop()); // one dropped by the consumer
        drop(tx);
        drop(rx); // four dropped with the ring
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }
}

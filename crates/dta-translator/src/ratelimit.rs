//! RDMA rate limiting toward congested collectors.
//!
//! "...as well as RDMA queue-pair resynchronization and rate limiting to
//! ensure stable RDMA connections in case of congestion events at the
//! collectors' NICs. Rate limiting can be configured to generate a NACK sent
//! back to the reporter in case of a dropped report during these congestion
//! events." (§5.2)

/// Token-bucket configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiterConfig {
    /// Sustained rate in RDMA messages per second.
    pub msgs_per_sec: f64,
    /// Bucket depth in messages (burst tolerance).
    pub burst: u64,
}

impl RateLimiterConfig {
    /// A limiter matched to a BlueField-2-class NIC's message rate.
    pub fn bluefield2() -> Self {
        RateLimiterConfig { msgs_per_sec: 110e6, burst: 4096 }
    }
}

/// A deterministic token bucket driven by simulated nanoseconds.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimiterConfig,
    tokens: f64,
    last_ns: u64,
    /// Messages admitted.
    pub admitted: u64,
    /// Messages rejected (dropped at the translator).
    pub rejected: u64,
}

impl RateLimiter {
    /// Limiter starting with a full bucket at time 0.
    pub fn new(config: RateLimiterConfig) -> Self {
        assert!(config.msgs_per_sec > 0.0);
        RateLimiter {
            config,
            tokens: config.burst as f64,
            last_ns: 0,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Try to admit `n` messages at simulated time `now_ns`.
    pub fn admit(&mut self, now_ns: u64, n: u64) -> bool {
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 / 1e9;
            self.tokens =
                (self.tokens + dt * self.config.msgs_per_sec).min(self.config.burst as f64);
            self.last_ns = now_ns;
        }
        if self.tokens >= n as f64 {
            self.tokens -= n as f64;
            self.admitted += n;
            true
        } else {
            self.rejected += n;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_then_rejects() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 10 });
        for _ in 0..10 {
            assert!(rl.admit(0, 1));
        }
        assert!(!rl.admit(0, 1));
        assert_eq!(rl.admitted, 10);
        assert_eq!(rl.rejected, 1);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 10 });
        for _ in 0..10 {
            rl.admit(0, 1);
        }
        assert!(!rl.admit(0, 1));
        // 1e6 msgs/s = 1 msg per microsecond: after 5us, 5 tokens.
        assert!(rl.admit(5_000, 5));
        assert!(!rl.admit(5_000, 1));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e9, burst: 4 });
        // A long idle period must not accumulate more than `burst`.
        assert!(rl.admit(1_000_000_000, 4));
        assert!(!rl.admit(1_000_000_000, 1));
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 1 });
        let mut admitted = 0;
        // Offer 2 msgs/us for 1ms: only ~1000 should pass.
        for us in 0..1000u64 {
            for _ in 0..2 {
                if rl.admit(us * 1000, 1) {
                    admitted += 1;
                }
            }
        }
        assert!((990..=1010).contains(&admitted), "admitted {admitted}");
    }
}

//! RDMA rate limiting toward congested collectors.
//!
//! "...as well as RDMA queue-pair resynchronization and rate limiting to
//! ensure stable RDMA connections in case of congestion events at the
//! collectors' NICs. Rate limiting can be configured to generate a NACK sent
//! back to the reporter in case of a dropped report during these congestion
//! events." (§5.2)

/// Token-bucket configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiterConfig {
    /// Sustained rate in RDMA messages per second.
    pub msgs_per_sec: f64,
    /// Bucket depth in messages (burst tolerance).
    pub burst: u64,
}

impl RateLimiterConfig {
    /// A limiter matched to a BlueField-2-class NIC's message rate.
    pub fn bluefield2() -> Self {
        RateLimiterConfig { msgs_per_sec: 110e6, burst: 4096 }
    }
}

/// A deterministic token bucket driven by simulated nanoseconds.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimiterConfig,
    tokens: f64,
    last_ns: u64,
    /// Messages admitted.
    pub admitted: u64,
    /// Messages rejected (dropped at the translator).
    pub rejected: u64,
}

impl RateLimiter {
    /// Limiter starting with a full bucket at time 0.
    pub fn new(config: RateLimiterConfig) -> Self {
        assert!(config.msgs_per_sec > 0.0);
        RateLimiter {
            config,
            tokens: config.burst as f64,
            last_ns: 0,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Try to admit `n` messages at simulated time `now_ns`.
    ///
    /// Timestamps are expected to be monotone (the simulated engine clock
    /// only moves forward, and the sharded pipeline stamps each report at
    /// ingest, in engine order). A regressed timestamp is **clamped** to
    /// the refill clock: it neither refills (no free tokens from time
    /// travel) nor rewinds `last_ns` (which would starve the bucket by
    /// re-charging an interval that already refilled once a monotone
    /// timestamp arrives). The clamp is load-bearing for reordered shard
    /// batches; the `debug_assert` documents that inside the simulator the
    /// case should never arise.
    pub fn admit(&mut self, now_ns: u64, n: u64) -> bool {
        debug_assert!(
            now_ns >= self.last_ns,
            "rate limiter clock regressed: {} < {}",
            now_ns,
            self.last_ns
        );
        let now_ns = now_ns.max(self.last_ns); // monotonic clamp
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 / 1e9;
            self.tokens =
                (self.tokens + dt * self.config.msgs_per_sec).min(self.config.burst as f64);
            self.last_ns = now_ns;
        }
        if self.tokens >= n as f64 {
            self.tokens -= n as f64;
            self.admitted += n;
            true
        } else {
            self.rejected += n;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_then_rejects() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 10 });
        for _ in 0..10 {
            assert!(rl.admit(0, 1));
        }
        assert!(!rl.admit(0, 1));
        assert_eq!(rl.admitted, 10);
        assert_eq!(rl.rejected, 1);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 10 });
        for _ in 0..10 {
            rl.admit(0, 1);
        }
        assert!(!rl.admit(0, 1));
        // 1e6 msgs/s = 1 msg per microsecond: after 5us, 5 tokens.
        assert!(rl.admit(5_000, 5));
        assert!(!rl.admit(5_000, 1));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e9, burst: 4 });
        // A long idle period must not accumulate more than `burst`.
        assert!(rl.admit(1_000_000_000, 4));
        assert!(!rl.admit(1_000_000_000, 1));
    }

    /// Out-of-order timestamps clamp to the refill clock instead of
    /// silently starving the bucket: the regressed call refills nothing,
    /// but the next monotone call refills the full span since `last_ns`.
    /// (The `debug_assert` in `admit` flags regression in debug builds;
    /// this pins the defined release behavior.)
    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_order_timestamps_clamp_without_starving() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 10 });
        for _ in 0..10 {
            assert!(rl.admit(10_000, 1));
        }
        assert!(!rl.admit(10_000, 1), "bucket empty at t=10us");
        // A reordered batch stamps an older time: no refill, no rewind.
        assert!(!rl.admit(4_000, 1), "time travel must not mint tokens");
        // 1 msg/us: by 15us five full tokens must be back — the regressed
        // call must not have re-anchored `last_ns` below 10us (which would
        // fake a larger refill) nor above it (which would starve).
        assert!(rl.admit(15_000, 5));
        assert!(!rl.admit(15_000, 1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rate limiter clock regressed")]
    fn out_of_order_timestamps_assert_in_debug() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 10 });
        rl.admit(10_000, 1);
        rl.admit(4_000, 1);
    }

    #[test]
    fn equal_timestamps_are_not_a_regression() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 2 });
        assert!(rl.admit(1_000, 1));
        assert!(rl.admit(1_000, 1)); // same instant: fine, burst covers it
    }

    use proptest::prelude::*;

    proptest! {
        /// The token bucket's defining bound, checked over adversarial
        /// admit sequences: however requests are sized and spaced, total
        /// admitted messages never exceed `burst + rate * elapsed` (plus
        /// one message of slack for the f64 boundary). At BlueField-2-class
        /// rates (110e6 msgs/sec) over long simulated runs, f64 drift in
        /// the incremental refill is the thing this guards against.
        #[test]
        fn admitted_never_exceeds_burst_plus_rate_times_elapsed(
            rate_idx in 0usize..3,
            burst in 1u64..5000,
            steps in proptest::collection::vec((0u64..2_000_000u64, 1u64..64u64), 1..200),
        ) {
            // 110e6 is the BlueField-2 message rate the default config
            // models; the others bracket it.
            let rates = [1e6, 110e6, 3.5e9];
            let rate = rates[rate_idx];
            let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: rate, burst });
            let mut now = 0u64;
            for (dt, n) in &steps {
                now += dt;
                rl.admit(now, *n);
            }
            let bound = burst as f64 + now as f64 * rate / 1e9;
            prop_assert!(
                (rl.admitted as f64) <= bound + 1.0,
                "admitted {} > burst {} + rate*elapsed {:.1} (elapsed {}ns at {} msgs/s)",
                rl.admitted, burst, bound, now, rate
            );
        }
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut rl = RateLimiter::new(RateLimiterConfig { msgs_per_sec: 1e6, burst: 1 });
        let mut admitted = 0;
        // Offer 2 msgs/us for 1ms: only ~1000 should pass.
        for us in 0..1000u64 {
            for _ in 0..2 {
                if rl.admit(us * 1000, 1) {
                    admitted += 1;
                }
            }
        }
        assert!((990..=1010).contains(&admitted), "admitted {admitted}");
    }
}

//! Live fleet rebalance: epoch-fenced key-range migration after churn.
//!
//! PR 6's failover leaves a rejoined collector with its *routing* restored
//! but its state stranded: everything written during the fault window sits
//! on the survivor that covered for it. This module drives the three-phase
//! handoff that moves it home, concurrently with live report traffic:
//!
//! 1. **fence** — every reroute during the fault window records the key in
//!    a bounded fence (the reroute log doubles as the migration work list,
//!    because the CMS is not invertible: we cannot enumerate rerouted keys
//!    from collector memory after the fact). Live reports for fenced keys
//!    are handled per primitive: write-once Key-Write may be double-written
//!    to the old fallback owner, commutative Key-Increment is *deferred*
//!    between rejoin and baseline capture (see below).
//! 2. **drain** — for each fenced key, read the fallback owner's slot over
//!    the migration QP and replay the content to the restored primary as an
//!    ordinary DTA report through the post-fence routing table; then zero
//!    the fallback owner's slots so its region matches a run that never saw
//!    the failure. A bounded [`MigrationLedger`] (counted eviction, closure
//!    identity `scanned == transferred + skipped + resident`) caps drain
//!    flight the way PR 6's `ReplayLedger` caps replay state.
//! 3. **release** — once every fence entry is terminal and every wire op
//!    acked, routing collapses back to single-owner at a second epoch bump
//!    and the fence retires.
//!
//! # Key-Increment algebra (per slot)
//!
//! Fix one CMS slot `j` of a fenced key. Let `S_pre[j]` be the increments
//! sent to the victim V before the kill, `A[j] ⊆ S_pre[j]` the subset V
//! applied, `B[j]` the fault-window increments rerouted to the fallback
//! owner F, and `C[j]` the post-rejoin increments. The no-failure twin
//! holds `T[j] = S_pre[j] + B[j] + C[j]` at V and `0` at F. On kill, the
//! replay ledger re-applies the *whole* window for V at F (acked entries
//! included), so with a full ledger window F holds `x[j] = S_pre[j] +
//! B[j]`. The driver reads a baseline `v_stale[j] = A[j]` from V at rejoin
//! (the *arm* reads, one per slot), defers live increments for the key
//! until every baseline lands, then transfers `delta[j] = x[j] -
//! v_stale[j]` as a FETCH_ADD to V over the migration QP:
//!
//! ```text
//! V_final[j] = A[j] + C[j] + (x[j] - A[j]) = S_pre[j] + B[j] + C[j] = T[j]
//! ```
//!
//! and zeroing F's slots restores `F = 0 = twin` (all arithmetic u64
//! wrapping). The correction absorbs both the deliberate double-apply of
//! acked window entries and any in-flight packets V never applied — the
//! same full-window assumption PR 6's merged byte-identity already needs.
//!
//! The transfer must be **per slot**, not one delta fanned across the
//! key's redundancy copies through the report path: a report translates to
//! one FETCH_ADD packet per slot, and a kill can land *between* them,
//! applying a report at some of the key's slots and dropping it at the
//! rest. The baselines `A[j]` then differ across `j`, and no single delta
//! corrects them all. FETCH_ADD on the migration QP is exactly-once: PSNs
//! are stable and the responder executes each PSN exactly once, so
//! retransmitted adds never double-apply. Key-Write needs no baseline
//! (write-once, whole value in every slot): drain replays the fallback
//! copy through the report path and zeroes it.
//!
//! # Migration transport
//!
//! Non-idempotent transfers (the replayed reports) ride the normal report
//! path, which PR 6 already made exactly-once. The migration QPs carry
//! *only* idempotent verbs — RDMA READs and zero-WRITEs — under a
//! go-back-N scheme with **stable PSNs**: a PSN is bound to an op at
//! creation and never reused, so a late response can never complete the
//! wrong op. Loss/duplication/reordering are injected at emission (per
//! [`MigrationFaults`], deterministic splitmix64 dice); recovery is
//! NAK-triggered resend plus a retry timer, both re-sending undone ops in
//! original PSN order. READs complete only on a matching-PSN response
//! (the data is needed); zero-WRITEs complete on cumulative ACK.

use std::collections::{HashMap, HashSet, VecDeque};

use dta_collector::layout::{CmsLayout, KwLayout};
use dta_core::{DtaReport, TelemetryKey};
use dta_hash::polynomials::MAX_REDUNDANCY;
use dta_hash::scratch::KeyScratch;

use crate::shard::ReportOrigin;

/// Fault injection on the migration path (requests only; responses and
/// ACKs ride un-faulted, as in the PR 6 fleet transport). Probabilities
/// are evaluated per emission with a seeded splitmix64 stream, so a run is
/// a pure function of the scenario spec.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationFaults {
    /// Probability of silently dropping an emitted request.
    pub drop_chance: f64,
    /// Probability of emitting a request twice (same PSN; the responder
    /// PSN-drops the copy).
    pub duplicate_chance: f64,
    /// Probability of swapping a request with its predecessor in the same
    /// emission batch (pairwise reorder; same-link swaps exercise the
    /// responder's NAK path).
    pub reorder_chance: f64,
}

impl MigrationFaults {
    /// True when any injection is configured.
    pub fn any(&self) -> bool {
        self.drop_chance > 0.0 || self.duplicate_chance > 0.0 || self.reorder_chance > 0.0
    }
}

/// Sizing and pacing of one rebalance run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Maximum *active* (non-terminal) fence entries; overflow skips the
    /// oldest active entry (counted).
    pub fence_capacity: usize,
    /// Maximum fence entries in drain flight at once; overflow abandons
    /// the oldest in-flight entry (counted), though its already-sent wire
    /// ops still retransmit to completion so the PSN stream never stalls.
    pub ledger_capacity: usize,
    /// New drain reads started per pump (and arm reads, same pacing).
    pub drain_batch: usize,
    /// Retransmit timeout for unacknowledged migration ops.
    pub retry_ns: u64,
    /// Fault injection on migration requests.
    pub faults: MigrationFaults,
    /// Seed for the injection dice.
    pub seed: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            fence_capacity: 1024,
            ledger_capacity: 256,
            drain_batch: 16,
            retry_ns: 8_000,
            faults: MigrationFaults::default(),
            seed: 0,
        }
    }
}

/// Which collector-side store a fence entry migrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigPrimitive {
    /// Write-once Key-Write slots.
    KeyWrite,
    /// Commutative Key-Increment / CMS counters.
    KeyIncrement,
}

impl MigPrimitive {
    fn idx(self) -> u32 {
        match self {
            MigPrimitive::KeyWrite => 0,
            MigPrimitive::KeyIncrement => 1,
        }
    }
}

/// Flat migration-link id: one per `(collector, primitive)` pair, so PSN
/// spaces of the two per-collector QPs never mix.
pub fn link_of(collector: u32, primitive: MigPrimitive) -> u32 {
    collector * 2 + primitive.idx()
}

/// Collector half of a link id.
pub fn link_collector(link: u32) -> u32 {
    link / 2
}

/// Primitive half of a link id.
pub fn link_primitive(link: u32) -> MigPrimitive {
    if link.is_multiple_of(2) { MigPrimitive::KeyWrite } else { MigPrimitive::KeyIncrement }
}

/// Wire verb of a migration op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// RDMA READ of `len` bytes at `va`.
    Read,
    /// RDMA WRITE of `len` zero bytes at `va`.
    WriteZero,
    /// RDMA FETCH_ADD of `arg` at `va` (8-byte, the per-slot INC delta).
    FetchAdd,
}

/// One migration request the deployment must put on the wire. The driver
/// is transport-agnostic: the single-node fleet frames these as RoCE
/// packets, the sharded fleet executes them against region clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEmission {
    /// Migration link (see [`link_of`]).
    pub link: u32,
    /// Stable PSN bound to the op at creation.
    pub psn: u32,
    /// Verb.
    pub kind: WireKind,
    /// Target virtual address in the collector region.
    pub va: u64,
    /// Byte length.
    pub len: u32,
    /// Verb argument: the add operand for [`WireKind::FetchAdd`], 0
    /// otherwise.
    pub arg: u64,
}

impl WireEmission {
    /// Destination collector.
    pub fn collector(&self) -> u32 {
        link_collector(self.link)
    }

    /// Destination store.
    pub fn primitive(&self) -> MigPrimitive {
        link_primitive(self.link)
    }
}

/// Per-primitive fence entry lifecycle. Entries are tombstoned, never
/// removed, so indices stay stable; `Done`/`Skipped` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Recorded; waiting for the victim to rejoin (INC) or for drain (KW
    /// enters `Armed` directly — write-once needs no baseline).
    Fenced,
    /// INC baseline read in flight to the rejoined victim.
    AwaitArm,
    /// Baseline captured (INC) or not needed (KW); eligible for drain.
    Armed,
    /// Drain read in flight to the fallback owner.
    Reading,
    /// Replay issued; zero-writes to the fallback owner in flight.
    Zeroing,
    /// Migrated: replay and zeroing complete.
    Done,
    /// Skipped: fence/ledger eviction, empty or foreign slot.
    Skipped,
}

impl EntryState {
    fn terminal(self) -> bool {
        matches!(self, EntryState::Done | EntryState::Skipped)
    }
}

/// Why an entry was skipped (feeds the per-reason counters).
#[derive(Debug, Clone, Copy)]
enum SkipReason {
    /// Fence capacity evicted it before drain.
    FenceEvicted,
    /// The fallback slot was all-zero (nothing ever landed, or a
    /// same-slot key's drain already moved it).
    Empty,
    /// The fallback KW slot holds a different key's checksum.
    Mismatch,
    /// Ledger capacity abandoned it mid-flight.
    Abandoned,
}

#[derive(Debug)]
struct FenceEntry {
    primitive: MigPrimitive,
    key: TelemetryKey,
    checksum: u32,
    /// Raw per-copy slot digests (one per redundancy copy).
    slots: Vec<u32>,
    redundancy: u8,
    /// Fallback owner holding the fault-window state. Per-entry: the dead
    /// range spreads over *all* survivors, not one.
    source: u32,
    state: EntryState,
    /// Deduplicated CMS slot addresses (INC only; two redundancy digests
    /// can land in one slot, which must be corrected once, not twice).
    vas: Vec<u64>,
    /// Per-slot INC baselines read from the victim at arm time
    /// (`v_stale[j]`, parallel to `vas`).
    baseline: Vec<u64>,
    /// Per-slot fallback values from the drain reads (`x[j]`).
    drained: Vec<u64>,
    /// Outstanding arm reads (INC enters `Armed` when this hits 0).
    arm_pending: u32,
    /// Outstanding drain reads (INC transfers when this hits 0).
    read_pending: u32,
    /// Outstanding per-slot delta FETCH_ADDs.
    adds_pending: u32,
    /// Outstanding zero-writes.
    zeroes_pending: u32,
    /// Live INC reports held between rejoin and baseline capture.
    deferred: Vec<(DtaReport, ReportOrigin)>,
}

/// Bounded FIFO window of fence-entry ids in drain flight — the migration
/// mirror of PR 6's `ReplayLedger`, with the same counted-eviction
/// contract: overflow abandons the oldest in-flight entry rather than
/// blocking, and the closure identity stays checkable.
#[derive(Debug)]
pub struct MigrationLedger {
    window: VecDeque<u32>,
    capacity: usize,
    /// Entries ever recorded.
    pub recorded: u64,
    /// Entries evicted by capacity.
    pub evicted: u64,
}

impl MigrationLedger {
    /// New ledger bounding `capacity` in-flight entries.
    pub fn new(capacity: usize) -> Self {
        MigrationLedger { window: VecDeque::new(), capacity: capacity.max(1), recorded: 0, evicted: 0 }
    }

    /// Record `id` as in flight; returns the evicted oldest id when the
    /// window was full.
    pub fn record(&mut self, id: u32) -> Option<u32> {
        self.recorded += 1;
        let evicted = if self.window.len() >= self.capacity {
            self.evicted += 1;
            self.window.pop_front()
        } else {
            None
        };
        self.window.push_back(id);
        evicted
    }

    /// Retire `id` (entry went terminal).
    pub fn remove(&mut self, id: u32) {
        self.window.retain(|&w| w != id);
    }

    /// Entries currently in flight.
    pub fn resident(&self) -> usize {
        self.window.len()
    }
}

/// What one migration op is for (drives completion dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpPurpose {
    /// INC baseline read from the victim.
    Arm,
    /// Slot read from the fallback owner.
    Drain,
    /// Per-slot INC delta FETCH_ADD to the victim.
    Transfer,
    /// Zero-write to the fallback owner.
    Zero,
}

#[derive(Debug)]
struct MigOp {
    link: u32,
    psn: u32,
    kind: WireKind,
    va: u64,
    len: u32,
    /// Verb argument (FETCH_ADD operand).
    arg: u64,
    entry: u32,
    /// Index into the entry's `vas` (per-slot arm/drain bookkeeping).
    slot: u16,
    purpose: OpPurpose,
    done: bool,
    /// Next (re)send time; 0 = due now.
    due_at_ns: u64,
    ever_sent: bool,
}

/// Counters of one rebalance run. The closure identity
/// `scanned == transferred + skipped + resident` is a genuine cross-check:
/// the three buckets are counted at independent sites (fence recording,
/// entry completion, skip events / finish-time residency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Distinct keys fence-recorded (the migration work list).
    pub scanned: u64,
    /// Entries fully migrated (replayed and zeroed).
    pub transferred: u64,
    /// Entries skipped for any reason (sum of the per-reason counters).
    pub skipped: u64,
    /// Entries still non-terminal at finish.
    pub resident: u64,
    /// Skips: fence capacity evicted the entry before drain.
    pub fence_evicted: u64,
    /// Skips: the fallback slot was all-zero.
    pub skipped_empty: u64,
    /// Skips: the fallback KW slot held a foreign checksum.
    pub skipped_mismatch: u64,
    /// Skips: ledger capacity abandoned the entry mid-flight.
    pub abandoned: u64,
    /// Key-Write entries fenced.
    pub kw_fenced: u64,
    /// Key-Increment entries fenced.
    pub inc_fenced: u64,
    /// INC baselines captured.
    pub armed: u64,
    /// Live INC reports deferred behind an un-armed fence entry.
    pub deferred: u64,
    /// Deferred reports released back into the report path.
    pub deferred_flushed: u64,
    /// Live KW reports double-written to the fallback owner.
    pub double_writes: u64,
    /// KW drain replays handed to the report path.
    pub replays: u64,
    /// Per-slot INC delta FETCH_ADDs issued to the victim.
    pub transfer_adds: u64,
    /// Wire emissions attempted (before fault dice; includes retries).
    pub ops_sent: u64,
    /// Wire ops completed (response or cumulative ACK).
    pub ops_completed: u64,
    /// Timer- or NAK-driven re-sends.
    pub retransmits: u64,
    /// Requests the dice dropped.
    pub injected_drops: u64,
    /// Requests the dice duplicated.
    pub injected_dups: u64,
    /// Adjacent emission pairs the dice swapped.
    pub injected_reorders: u64,
    /// Distinct NAKs handled on migration links.
    pub naks: u64,
    /// Routing epoch at the fence bump (drain start).
    pub fence_epoch: u64,
    /// Routing epoch at release.
    pub release_epoch: u64,
    /// 1 once released.
    pub released: u64,
}

impl RebalanceStats {
    /// The `MigrationLedger` closure identity.
    pub fn closes(&self) -> bool {
        self.scanned == self.transferred + self.skipped + self.resident
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Fence recording only (fault window and pre-drain).
    Fencing,
    /// Drain in progress.
    Draining,
    /// Fence retired; routing is single-owner again.
    Released,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Transport-agnostic rebalance state machine. The owning fleet node
/// feeds it reroute events ([`RebalanceDriver::fence_record`]), rejoin,
/// wire completions, and pumps it for emissions; it hands back DTA
/// replays to push through the ordinary (exactly-once) report path.
#[derive(Debug)]
pub struct RebalanceDriver {
    config: RebalanceConfig,
    kw: Option<KwLayout>,
    cms: Option<CmsLayout>,
    /// Own scratch at full family width: the fleet node's routing scratch
    /// is width-1 and cannot derive per-copy slot digests.
    scratch: KeyScratch,
    entries: Vec<FenceEntry>,
    /// `(primitive idx, checksum)` → entry id, dedup only (never iterated).
    index: HashMap<(u32, u32), u32>,
    /// Non-terminal entry count (fence capacity bounds this).
    active: usize,
    /// Oldest entry that might still be active (eviction scan cursor).
    evict_cursor: usize,
    ledger: MigrationLedger,
    ops: Vec<MigOp>,
    /// Per-link next PSN (keyed lookup only).
    next_psn: HashMap<u32, u32>,
    /// NAK dedup: `(link, expected)` pairs already handled.
    naks_seen: HashSet<(u32, u32)>,
    /// Next entry to consider for arming (INC) — monotone cursor.
    arm_cursor: usize,
    /// Next entry to consider for drain — monotone cursor.
    drain_cursor: usize,
    rejoined: bool,
    victim: u32,
    phase: Phase,
    replays: Vec<(DtaReport, ReportOrigin)>,
    dice: u64,
    stats: RebalanceStats,
}

impl RebalanceDriver {
    /// New driver over the fleet's (uniform) collector memory geometry.
    /// A `None` layout disables fencing for that primitive.
    pub fn new(config: RebalanceConfig, kw: Option<KwLayout>, cms: Option<CmsLayout>) -> Self {
        let seed = config.seed;
        RebalanceDriver {
            ledger: MigrationLedger::new(config.ledger_capacity),
            config,
            kw,
            cms,
            scratch: KeyScratch::new(16 * 1024, MAX_REDUNDANCY),
            entries: Vec::new(),
            index: HashMap::new(),
            active: 0,
            evict_cursor: 0,
            ops: Vec::new(),
            next_psn: HashMap::new(),
            naks_seen: HashSet::new(),
            arm_cursor: 0,
            drain_cursor: 0,
            rejoined: false,
            victim: u32::MAX,
            phase: Phase::Fencing,
            replays: Vec::new(),
            dice: seed,
            stats: RebalanceStats::default(),
        }
    }

    /// Current counters (resident not yet folded in; see [`Self::finish`]).
    pub fn stats(&self) -> &RebalanceStats {
        &self.stats
    }

    fn roll(&mut self, chance: f64) -> bool {
        if chance <= 0.0 {
            return false;
        }
        let r = (splitmix64(&mut self.dice) >> 11) as f64 / (1u64 << 53) as f64;
        r < chance
    }

    fn alloc_psn(&mut self, link: u32) -> u32 {
        let next = self.next_psn.entry(link).or_insert(0);
        let psn = *next;
        *next += 1;
        psn
    }

    fn skip_entry(&mut self, id: u32, reason: SkipReason) {
        let e = &mut self.entries[id as usize];
        if e.state.terminal() {
            return;
        }
        e.state = EntryState::Skipped;
        // Live traffic held behind the entry must still reach the primary.
        let deferred = std::mem::take(&mut e.deferred);
        self.stats.deferred_flushed += deferred.len() as u64;
        self.replays.extend(deferred);
        self.active -= 1;
        self.stats.skipped += 1;
        match reason {
            SkipReason::FenceEvicted => self.stats.fence_evicted += 1,
            SkipReason::Empty => self.stats.skipped_empty += 1,
            SkipReason::Mismatch => self.stats.skipped_mismatch += 1,
            SkipReason::Abandoned => self.stats.abandoned += 1,
        }
        self.ledger.remove(id);
    }

    /// Record a reroute: `key` (primary-owned by the dead victim) was
    /// translated to fallback owner `source` instead. Idempotent per
    /// `(primitive, checksum)`. Called from the three reroute sites
    /// (receive, fail-time window replay, NAK replay).
    pub fn fence_record(
        &mut self,
        primitive: MigPrimitive,
        key: &TelemetryKey,
        checksum: u32,
        redundancy: u8,
        source: u32,
    ) {
        match primitive {
            MigPrimitive::KeyWrite if self.kw.is_none() => return,
            MigPrimitive::KeyIncrement if self.cms.is_none() => return,
            _ => {}
        }
        let slot = (primitive.idx(), checksum);
        if self.index.contains_key(&slot) {
            return;
        }
        let redundancy = redundancy.clamp(1, MAX_REDUNDANCY as u8);
        let digests = self.scratch.digests(key.as_bytes(), redundancy as usize);
        debug_assert_eq!(digests.checksum, checksum);
        if self.active >= self.config.fence_capacity {
            // Evict the oldest still-active entry; cursor is monotone, so
            // the scan is amortized O(1).
            while self.evict_cursor < self.entries.len() {
                let victim_id = self.evict_cursor as u32;
                self.evict_cursor += 1;
                if !self.entries[victim_id as usize].state.terminal() {
                    self.skip_entry(victim_id, SkipReason::FenceEvicted);
                    break;
                }
            }
        }
        let id = self.entries.len() as u32;
        let state = match primitive {
            // Write-once: no baseline needed, drain-eligible immediately.
            MigPrimitive::KeyWrite => EntryState::Armed,
            MigPrimitive::KeyIncrement => EntryState::Fenced,
        };
        // Per-slot migration targets, deduplicated: two redundancy digests
        // that alias one CMS slot must be corrected once.
        let vas = match primitive {
            MigPrimitive::KeyIncrement => {
                let cms = self.cms.expect("INC entry without CMS layout");
                let mut vas: Vec<u64> = Vec::with_capacity(redundancy as usize);
                for &digest in &digests.slots[..redundancy as usize] {
                    let va = cms.slot_va_from_digest(digest);
                    if !vas.contains(&va) {
                        vas.push(va);
                    }
                }
                vas
            }
            MigPrimitive::KeyWrite => Vec::new(),
        };
        let width = vas.len();
        self.entries.push(FenceEntry {
            primitive,
            key: *key,
            checksum,
            slots: digests.slots[..redundancy as usize].to_vec(),
            redundancy,
            source,
            state,
            vas,
            baseline: vec![0; width],
            drained: vec![0; width],
            arm_pending: 0,
            read_pending: 0,
            adds_pending: 0,
            zeroes_pending: 0,
            deferred: Vec::new(),
        });
        self.index.insert(slot, id);
        self.active += 1;
        self.stats.scanned += 1;
        match primitive {
            MigPrimitive::KeyWrite => self.stats.kw_fenced += 1,
            MigPrimitive::KeyIncrement => self.stats.inc_fenced += 1,
        }
    }

    /// The victim rejoined: INC baselines may now be read from it.
    pub fn on_rejoin(&mut self, victim: u32) {
        self.rejoined = true;
        self.victim = victim;
    }

    /// Offer a live post-rejoin report for deferral. Returns `true` (and
    /// takes ownership of a copy) when `checksum` has an un-armed INC
    /// fence entry — the report must *not* be translated yet; it will come
    /// back out of [`Self::take_replays`] once the baseline lands.
    pub fn try_defer(
        &mut self,
        primitive: MigPrimitive,
        checksum: u32,
        report: &DtaReport,
        origin: ReportOrigin,
    ) -> bool {
        if primitive != MigPrimitive::KeyIncrement || !self.rejoined {
            return false;
        }
        let Some(&id) = self.index.get(&(primitive.idx(), checksum)) else {
            return false;
        };
        let e = &mut self.entries[id as usize];
        if !matches!(e.state, EntryState::Fenced | EntryState::AwaitArm) {
            return false;
        }
        e.deferred.push((report.clone(), origin));
        self.stats.deferred += 1;
        true
    }

    /// Double-write target for a live KW report: the fallback owner, while
    /// the entry's fallback copy has not been zeroed yet. `None` once
    /// zeroing begins (a late double-write could land after the zero and
    /// break twin identity).
    pub fn double_write_target(&mut self, checksum: u32) -> Option<u32> {
        let id = *self.index.get(&(MigPrimitive::KeyWrite.idx(), checksum))?;
        let e = &self.entries[id as usize];
        if matches!(e.state, EntryState::Armed | EntryState::Reading) {
            self.stats.double_writes += 1;
            Some(e.source)
        } else {
            None
        }
    }

    /// Enter the drain phase. `fence_epoch` is the routing-table epoch
    /// after the fence bump.
    pub fn start_drain(&mut self, fence_epoch: u64) {
        if self.phase == Phase::Fencing {
            self.phase = Phase::Draining;
            self.stats.fence_epoch = fence_epoch;
        }
    }

    #[allow(clippy::too_many_arguments)] // private ctor: one arg per MigOp field
    fn push_op(
        &mut self,
        link: u32,
        kind: WireKind,
        va: u64,
        len: u32,
        arg: u64,
        entry: u32,
        slot: u16,
        purpose: OpPurpose,
    ) {
        let psn = self.alloc_psn(link);
        self.ops.push(MigOp {
            link,
            psn,
            kind,
            va,
            len,
            arg,
            entry,
            slot,
            purpose,
            done: false,
            due_at_ns: 0,
            ever_sent: false,
        });
    }

    /// Advance the state machine and collect wire emissions: arm reads for
    /// fenced INC entries (once rejoined), new drain reads (once
    /// draining, `drain_batch` per pump, ledger-bounded), and every due
    /// (re)send — all dice-faulted per [`MigrationFaults`].
    pub fn pump(&mut self, now_ns: u64, out: &mut Vec<WireEmission>) {
        if self.phase == Phase::Released {
            return;
        }
        // Arming pass: baseline reads to the rejoined victim.
        if self.rejoined {
            let mut started = 0;
            while self.arm_cursor < self.entries.len() && started < self.config.drain_batch {
                let id = self.arm_cursor as u32;
                self.arm_cursor += 1;
                let e = &self.entries[id as usize];
                if e.primitive != MigPrimitive::KeyIncrement || e.state != EntryState::Fenced {
                    continue;
                }
                // One baseline read per slot: a kill can split a report's
                // per-slot packet train, leaving non-uniform baselines.
                let vas = e.vas.clone();
                let link = link_of(self.victim, MigPrimitive::KeyIncrement);
                let e = &mut self.entries[id as usize];
                e.state = EntryState::AwaitArm;
                e.arm_pending = vas.len() as u32;
                for (j, &va) in vas.iter().enumerate() {
                    self.push_op(
                        link,
                        WireKind::Read,
                        va,
                        CmsLayout::SLOT_BYTES,
                        0,
                        id,
                        j as u16,
                        OpPurpose::Arm,
                    );
                }
                started += 1;
            }
        }
        // Drain pass: slot reads from the fallback owners.
        if self.phase == Phase::Draining && self.rejoined {
            let mut started = 0;
            while self.drain_cursor < self.entries.len() && started < self.config.drain_batch {
                let id = self.drain_cursor as u32;
                let state = self.entries[id as usize].state;
                if state != EntryState::Armed {
                    // Un-armed INC entries block the cursor: drain order
                    // follows fence order, and the arm pass is ahead of us.
                    if matches!(state, EntryState::Fenced | EntryState::AwaitArm) {
                        break;
                    }
                    self.drain_cursor += 1;
                    continue;
                }
                self.drain_cursor += 1;
                if let Some(evicted) = self.ledger.record(id) {
                    self.skip_entry(evicted, SkipReason::Abandoned);
                }
                let e = &self.entries[id as usize];
                match e.primitive {
                    MigPrimitive::KeyWrite => {
                        let kw = self.kw.expect("KW entry without KW layout");
                        let va = kw.slot_va_from_digest(e.slots[0]);
                        let len = kw.slot_bytes();
                        let link = link_of(e.source, MigPrimitive::KeyWrite);
                        self.entries[id as usize].state = EntryState::Reading;
                        self.push_op(link, WireKind::Read, va, len, 0, id, 0, OpPurpose::Drain);
                    }
                    MigPrimitive::KeyIncrement => {
                        // One drain read per slot, mirroring the arm pass.
                        let vas = e.vas.clone();
                        let link = link_of(e.source, MigPrimitive::KeyIncrement);
                        let e = &mut self.entries[id as usize];
                        e.state = EntryState::Reading;
                        e.read_pending = vas.len() as u32;
                        for (j, &va) in vas.iter().enumerate() {
                            self.push_op(
                                link,
                                WireKind::Read,
                                va,
                                CmsLayout::SLOT_BYTES,
                                0,
                                id,
                                j as u16,
                                OpPurpose::Drain,
                            );
                        }
                    }
                }
                started += 1;
            }
        }
        // Send pass: everything due, in creation (= per-link PSN) order.
        let batch_start = out.len();
        for i in 0..self.ops.len() {
            let (emit, retransmit) = {
                let op = &self.ops[i];
                if op.done || now_ns < op.due_at_ns {
                    continue;
                }
                (
                    WireEmission {
                        link: op.link,
                        psn: op.psn,
                        kind: op.kind,
                        va: op.va,
                        len: op.len,
                        arg: op.arg,
                    },
                    op.ever_sent,
                )
            };
            self.stats.ops_sent += 1;
            if retransmit {
                self.stats.retransmits += 1;
            }
            let dropped = self.roll(self.config.faults.drop_chance);
            if dropped {
                self.stats.injected_drops += 1;
            } else {
                out.push(emit);
                if self.roll(self.config.faults.duplicate_chance) {
                    self.stats.injected_dups += 1;
                    out.push(emit);
                }
            }
            let op = &mut self.ops[i];
            op.ever_sent = true;
            op.due_at_ns = now_ns + self.config.retry_ns;
        }
        // Reorder pass over this pump's batch.
        if self.config.faults.reorder_chance > 0.0 {
            for i in (batch_start + 1)..out.len() {
                if self.roll(self.config.faults.reorder_chance) {
                    out.swap(i - 1, i);
                    self.stats.injected_reorders += 1;
                }
            }
        }
    }

    fn find_op(&self, link: u32, psn: u32) -> Option<usize> {
        self.ops.iter().position(|op| op.link == link && op.psn == psn && !op.done)
    }

    /// A READ response landed (arm or drain data).
    pub fn on_read_response(&mut self, link: u32, psn: u32, data: &[u8]) {
        let Some(i) = self.find_op(link, psn) else {
            return; // stale or duplicate response
        };
        self.ops[i].done = true;
        self.stats.ops_completed += 1;
        let (entry_id, purpose, len, slot) = (
            self.ops[i].entry,
            self.ops[i].purpose,
            self.ops[i].len as usize,
            self.ops[i].slot as usize,
        );
        if data.len() < len {
            return; // malformed; retry timer will not fire (op done) — treat as lost entry
        }
        let state = self.entries[entry_id as usize].state;
        if state.terminal() {
            return; // abandoned mid-flight; ignore, no double count
        }
        match purpose {
            OpPurpose::Arm => {
                if state != EntryState::AwaitArm {
                    return;
                }
                let v_stale = u64::from_be_bytes(data[..8].try_into().unwrap());
                let e = &mut self.entries[entry_id as usize];
                e.baseline[slot] = v_stale;
                e.arm_pending -= 1;
                if e.arm_pending > 0 {
                    return; // more baselines in flight
                }
                e.state = EntryState::Armed;
                self.stats.armed += 1;
                // Every baseline captured: release the held live reports.
                let deferred = std::mem::take(&mut e.deferred);
                self.stats.deferred_flushed += deferred.len() as u64;
                self.replays.extend(deferred);
            }
            OpPurpose::Drain => {
                if state != EntryState::Reading {
                    return;
                }
                match self.entries[entry_id as usize].primitive {
                    MigPrimitive::KeyWrite => self.on_kw_drain_data(entry_id, &data[..len]),
                    MigPrimitive::KeyIncrement => {
                        let x = u64::from_be_bytes(data[..8].try_into().unwrap());
                        let e = &mut self.entries[entry_id as usize];
                        e.drained[slot] = x;
                        e.read_pending -= 1;
                        if e.read_pending == 0 {
                            self.inc_transfer(entry_id);
                        }
                    }
                }
            }
            OpPurpose::Transfer | OpPurpose::Zero => {
                unreachable!("transfers and zero-writes complete on ACK")
            }
        }
    }

    fn on_kw_drain_data(&mut self, entry_id: u32, data: &[u8]) {
        let (checksum, key, redundancy, source, slots) = {
            let e = &self.entries[entry_id as usize];
            (e.checksum, e.key, e.redundancy, e.source, e.slots.clone())
        };
        if data.iter().all(|&b| b == 0) {
            self.skip_entry(entry_id, SkipReason::Empty);
            return;
        }
        if data[..4] != checksum.to_be_bytes() {
            self.skip_entry(entry_id, SkipReason::Mismatch);
            return;
        }
        let value = data[4..].to_vec();
        self.replays.push((
            DtaReport::key_write(0, key, redundancy, value),
            ReportOrigin::default(),
        ));
        self.stats.replays += 1;
        let kw = self.kw.expect("KW entry without KW layout");
        let len = kw.slot_bytes();
        let link = link_of(source, MigPrimitive::KeyWrite);
        for &digest in &slots {
            let va = kw.slot_va_from_digest(digest);
            self.push_op(link, WireKind::WriteZero, va, len, 0, entry_id, 0, OpPurpose::Zero);
        }
        let e = &mut self.entries[entry_id as usize];
        e.zeroes_pending = e.redundancy as u32;
        e.state = EntryState::Zeroing;
    }

    /// Every drain read landed: issue the per-slot delta FETCH_ADDs to the
    /// victim and the per-slot zero-writes to the fallback owner.
    fn inc_transfer(&mut self, entry_id: u32) {
        let (vas, baseline, drained, source) = {
            let e = &self.entries[entry_id as usize];
            (e.vas.clone(), e.baseline.clone(), e.drained.clone(), e.source)
        };
        if drained.iter().all(|&x| x == 0) {
            // Nothing ever landed at the fallback (or a prior migration
            // already moved it): nothing to transfer, nothing to zero.
            self.skip_entry(entry_id, SkipReason::Empty);
            return;
        }
        let victim_link = link_of(self.victim, MigPrimitive::KeyIncrement);
        let source_link = link_of(source, MigPrimitive::KeyIncrement);
        let mut adds = 0u32;
        for (j, &va) in vas.iter().enumerate() {
            // See the module docs: delta[j] = x[j] - v_stale[j] absorbs the
            // fail-time double-replay and lost in-flight packets per slot.
            let delta = drained[j].wrapping_sub(baseline[j]);
            if delta != 0 {
                self.push_op(
                    victim_link,
                    WireKind::FetchAdd,
                    va,
                    CmsLayout::SLOT_BYTES,
                    delta,
                    entry_id,
                    j as u16,
                    OpPurpose::Transfer,
                );
                adds += 1;
            }
            self.push_op(
                source_link,
                WireKind::WriteZero,
                va,
                CmsLayout::SLOT_BYTES,
                0,
                entry_id,
                j as u16,
                OpPurpose::Zero,
            );
        }
        self.stats.transfer_adds += adds as u64;
        let e = &mut self.entries[entry_id as usize];
        e.adds_pending = adds;
        e.zeroes_pending = vas.len() as u32;
        e.state = EntryState::Zeroing;
    }

    /// A cumulative ACK landed on a migration link: completes every
    /// outstanding zero-write and delta FETCH_ADD with `psn <= ack` on
    /// that link (the responder PSN-orders execution, so an ACK proves all
    /// before it). READs still require their data and never complete here.
    pub fn on_ack(&mut self, link: u32, ack_psn: u32) {
        for i in 0..self.ops.len() {
            let (entry_id, kind) = {
                let op = &self.ops[i];
                if op.done
                    || op.link != link
                    || op.kind == WireKind::Read
                    || op.psn > ack_psn
                {
                    continue;
                }
                (op.entry, op.kind)
            };
            self.ops[i].done = true;
            self.stats.ops_completed += 1;
            let e = &mut self.entries[entry_id as usize];
            match kind {
                WireKind::WriteZero => e.zeroes_pending = e.zeroes_pending.saturating_sub(1),
                WireKind::FetchAdd => e.adds_pending = e.adds_pending.saturating_sub(1),
                WireKind::Read => unreachable!(),
            }
            if e.zeroes_pending == 0 && e.adds_pending == 0 && e.state == EntryState::Zeroing {
                e.state = EntryState::Done;
                self.active -= 1;
                self.stats.transferred += 1;
                self.ledger.remove(entry_id);
            }
        }
    }

    /// A NAK landed: go-back-N. Every undone op on `link` with
    /// `psn >= expected` is due for resend (original PSNs — the send pass
    /// re-emits them in order). Deduped per `(link, expected)`.
    pub fn on_nak(&mut self, link: u32, expected: u32) {
        if !self.naks_seen.insert((link, expected)) {
            return;
        }
        self.stats.naks += 1;
        for op in &mut self.ops {
            if !op.done && op.link == link && op.psn >= expected {
                op.due_at_ns = 0;
            }
        }
    }

    /// Move accumulated DTA replays (drained state, flushed deferrals)
    /// into `out`. The caller routes them through the post-fence table.
    pub fn take_replays(&mut self, out: &mut Vec<(DtaReport, ReportOrigin)>) {
        out.append(&mut self.replays);
    }

    /// True when the fence can retire: draining, every entry terminal,
    /// every wire op completed, and no replay still queued.
    pub fn release_ready(&self) -> bool {
        self.phase == Phase::Draining
            && self.active == 0
            && self.replays.is_empty()
            && self.ops.iter().all(|op| op.done)
    }

    /// Retire the fence at the release epoch bump.
    pub fn mark_released(&mut self, epoch: u64) {
        if self.phase == Phase::Draining {
            self.phase = Phase::Released;
            self.stats.release_epoch = epoch;
            self.stats.released = 1;
        }
    }

    /// Fold residency in and return the final counters.
    pub fn finish(&mut self) -> RebalanceStats {
        self.stats.resident = self.entries.iter().filter(|e| !e.state.terminal()).count() as u64;
        debug_assert!(self.stats.closes(), "rebalance closure violated: {:?}", self.stats);
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts() -> (KwLayout, CmsLayout) {
        (
            KwLayout { base_va: 0x1_0000_0000, slots: 4096, value_bytes: 4 },
            CmsLayout { base_va: 0x4_0000_0000, slots: 1 << 16 },
        )
    }

    fn driver(config: RebalanceConfig) -> RebalanceDriver {
        let (kw, cms) = layouts();
        RebalanceDriver::new(config, Some(kw), Some(cms))
    }

    fn key(n: u8) -> TelemetryKey {
        let mut b = [0u8; 16];
        b[0] = 0x77;
        b[15] = n;
        TelemetryKey(b)
    }

    fn checksum_of(d: &mut RebalanceDriver, k: &TelemetryKey) -> u32 {
        d.scratch.digests(k.as_bytes(), 0).checksum
    }

    /// Fence-record `n` distinct keys of `primitive`; returns checksums.
    fn fence_n(d: &mut RebalanceDriver, primitive: MigPrimitive, n: u8, source: u32) -> Vec<u32> {
        (0..n)
            .map(|i| {
                let k = key(i);
                let csum = checksum_of(d, &k);
                d.fence_record(primitive, &k, csum, 2, source);
                csum
            })
            .collect()
    }

    #[test]
    fn fence_dedups_and_evicts_oldest_active() {
        let mut d = driver(RebalanceConfig { fence_capacity: 2, ..Default::default() });
        let csums = fence_n(&mut d, MigPrimitive::KeyWrite, 3, 1);
        assert_eq!(d.stats().scanned, 3);
        assert_eq!(d.stats().fence_evicted, 1);
        assert_eq!(d.stats().skipped, 1);
        assert_eq!(d.entries[0].state, EntryState::Skipped);
        assert_eq!(d.active, 2);
        // Duplicate record is a no-op.
        let k = key(1);
        d.fence_record(MigPrimitive::KeyWrite, &k, csums[1], 2, 1);
        assert_eq!(d.stats().scanned, 3);
    }

    #[test]
    fn kw_drain_replays_and_zeroes() {
        let mut d = driver(RebalanceConfig::default());
        let k = key(9);
        let csum = checksum_of(&mut d, &k);
        d.fence_record(MigPrimitive::KeyWrite, &k, csum, 2, 1);
        d.on_rejoin(0);
        d.start_drain(3);
        let mut out = Vec::new();
        d.pump(1_000, &mut out);
        assert_eq!(out.len(), 1);
        let read = out[0];
        assert_eq!(read.kind, WireKind::Read);
        assert_eq!(read.collector(), 1);
        assert_eq!(read.primitive(), MigPrimitive::KeyWrite);
        assert_eq!(read.len, 8); // 4B checksum + 4B value
        // Respond with a matching slot: checksum ‖ value.
        let mut data = csum.to_be_bytes().to_vec();
        data.extend_from_slice(&0xAABB_CCDDu32.to_be_bytes());
        d.on_read_response(read.link, read.psn, &data);
        let mut replays = Vec::new();
        d.take_replays(&mut replays);
        assert_eq!(replays.len(), 1);
        // Zero-writes for both redundancy copies, then cumulative ACK.
        out.clear();
        d.pump(2_000, &mut out);
        let zeros: Vec<_> = out.iter().filter(|e| e.kind == WireKind::WriteZero).collect();
        assert_eq!(zeros.len(), 2);
        assert!(!d.release_ready());
        let last_psn = zeros.iter().map(|e| e.psn).max().unwrap();
        d.on_ack(zeros[0].link, last_psn);
        assert_eq!(d.stats().transferred, 1);
        assert!(d.release_ready());
        d.mark_released(4);
        let stats = d.finish();
        assert!(stats.closes());
        assert_eq!(stats.released, 1);
        assert_eq!(stats.release_epoch, 4);
    }

    #[test]
    fn kw_drain_skips_empty_and_foreign_slots() {
        let mut d = driver(RebalanceConfig::default());
        let csums = fence_n(&mut d, MigPrimitive::KeyWrite, 2, 1);
        d.on_rejoin(0);
        d.start_drain(3);
        let mut out = Vec::new();
        d.pump(1_000, &mut out);
        assert_eq!(out.len(), 2);
        // First: all-zero slot; second: foreign checksum.
        d.on_read_response(out[0].link, out[0].psn, &[0u8; 8]);
        let mut foreign = (csums[1] ^ 0xFFFF).to_be_bytes().to_vec();
        foreign.extend_from_slice(&[1, 2, 3, 4]);
        d.on_read_response(out[1].link, out[1].psn, &foreign);
        let stats = *d.stats();
        assert_eq!(stats.skipped_empty, 1);
        assert_eq!(stats.skipped_mismatch, 1);
        assert_eq!(stats.replays, 0);
        assert!(d.release_ready());
        let final_stats = d.finish();
        assert!(final_stats.closes());
    }

    #[test]
    fn inc_arms_defers_and_transfers_delta() {
        let mut d = driver(RebalanceConfig::default());
        let k = key(5);
        let csum = checksum_of(&mut d, &k);
        d.fence_record(MigPrimitive::KeyIncrement, &k, csum, 2, 2);
        // Not rejoined yet: no deferral, no arming.
        let live = DtaReport::key_increment(7, k, 2, 11);
        assert!(!d.try_defer(MigPrimitive::KeyIncrement, csum, &live, ReportOrigin::default()));
        let mut out = Vec::new();
        d.pump(100, &mut out);
        assert!(out.is_empty());
        // Rejoin: one baseline read per redundancy slot, to the victim's
        // CMS link.
        d.on_rejoin(0);
        d.pump(200, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.collector() == 0));
        assert!(out.iter().all(|e| e.primitive() == MigPrimitive::KeyIncrement));
        assert_ne!(out[0].va, out[1].va, "per-slot reads target distinct slots");
        // Live report while the baselines are in flight: deferred.
        assert!(d.try_defer(MigPrimitive::KeyIncrement, csum, &live, ReportOrigin::default()));
        assert_eq!(d.stats().deferred, 1);
        // First baseline alone does not arm; the second does, and the
        // deferral flushes.
        d.on_read_response(out[0].link, out[0].psn, &40u64.to_be_bytes());
        assert_eq!(d.stats().armed, 0);
        assert!(d.try_defer(MigPrimitive::KeyIncrement, csum, &live, ReportOrigin::default()));
        d.on_read_response(out[1].link, out[1].psn, &10u64.to_be_bytes());
        assert_eq!(d.stats().armed, 1);
        let mut replays = Vec::new();
        d.take_replays(&mut replays);
        assert_eq!(replays.len(), 2);
        assert_eq!(d.stats().deferred_flushed, 2);
        // Armed entries no longer defer.
        assert!(!d.try_defer(MigPrimitive::KeyIncrement, csum, &live, ReportOrigin::default()));
        // Drain: x = 100 at the fallback owner in both slots → per-slot
        // deltas 60 and 90 as FETCH_ADDs to the victim, not a report.
        d.start_drain(3);
        out.clear();
        d.pump(300, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.collector() == 2));
        let drains = out.clone();
        d.on_read_response(drains[0].link, drains[0].psn, &100u64.to_be_bytes());
        d.on_read_response(drains[1].link, drains[1].psn, &100u64.to_be_bytes());
        replays.clear();
        d.take_replays(&mut replays);
        assert!(replays.is_empty(), "INC transfers bypass the report path");
        out.clear();
        d.pump(400, &mut out);
        let adds: Vec<_> = out.iter().filter(|e| e.kind == WireKind::FetchAdd).collect();
        assert_eq!(adds.len(), 2);
        assert!(adds.iter().all(|e| e.collector() == 0));
        let mut deltas: Vec<u64> = adds.iter().map(|e| e.arg).collect();
        deltas.sort_unstable();
        assert_eq!(deltas, vec![60, 90]);
        assert_eq!(d.stats().transfer_adds, 2);
        let zeros: Vec<_> = out.iter().filter(|e| e.kind == WireKind::WriteZero).collect();
        assert_eq!(zeros.len(), 2);
        assert!(zeros.iter().all(|e| e.collector() == 2));
        // Cumulative ACKs on both links complete the entry.
        d.on_ack(adds[0].link, adds.iter().map(|e| e.psn).max().unwrap());
        assert_eq!(d.stats().transferred, 0, "zero-writes still outstanding");
        d.on_ack(zeros[0].link, zeros.iter().map(|e| e.psn).max().unwrap());
        let stats = d.finish();
        assert_eq!(stats.transferred, 1);
        assert!(stats.closes());
    }

    #[test]
    fn inc_zero_sum_skips_without_replay() {
        let mut d = driver(RebalanceConfig::default());
        let k = key(5);
        let csum = checksum_of(&mut d, &k);
        d.fence_record(MigPrimitive::KeyIncrement, &k, csum, 1, 2);
        d.on_rejoin(0);
        let mut out = Vec::new();
        d.pump(100, &mut out);
        d.on_read_response(out[0].link, out[0].psn, &0u64.to_be_bytes());
        d.start_drain(3);
        out.clear();
        d.pump(200, &mut out);
        d.on_read_response(out[0].link, out[0].psn, &0u64.to_be_bytes());
        let stats = d.finish();
        assert_eq!(stats.skipped_empty, 1);
        assert_eq!(stats.replays, 0);
        assert!(stats.closes());
    }

    #[test]
    fn nak_resends_in_psn_order_and_dedups() {
        let mut d = driver(RebalanceConfig { retry_ns: 1_000_000, ..Default::default() });
        fence_n(&mut d, MigPrimitive::KeyWrite, 3, 1);
        d.on_rejoin(0);
        d.start_drain(3);
        let mut out = Vec::new();
        d.pump(1_000, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().map(|e| e.psn).collect::<Vec<_>>(), vec![0, 1, 2]);
        // NAK(expected=1): psns 1 and 2 become due again with the SAME psns.
        d.on_nak(out[0].link, 1);
        assert_eq!(d.stats().naks, 1);
        out.clear();
        d.pump(1_001, &mut out);
        assert_eq!(out.iter().map(|e| e.psn).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(d.stats().retransmits, 2);
        // Same NAK again: deduped, nothing due.
        d.on_nak(out[0].link, 1);
        assert_eq!(d.stats().naks, 1);
        out.clear();
        d.pump(1_002, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn retry_timer_resends_undone_ops() {
        let mut d = driver(RebalanceConfig { retry_ns: 500, ..Default::default() });
        fence_n(&mut d, MigPrimitive::KeyWrite, 1, 1);
        d.on_rejoin(0);
        d.start_drain(3);
        let mut out = Vec::new();
        d.pump(1_000, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        d.pump(1_200, &mut out);
        assert!(out.is_empty(), "not yet due");
        d.pump(1_500, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].psn, 0, "retry reuses the original psn");
        assert_eq!(d.stats().retransmits, 1);
    }

    #[test]
    fn ledger_eviction_abandons_but_still_closes() {
        let mut d = driver(RebalanceConfig {
            ledger_capacity: 1,
            drain_batch: 8,
            ..Default::default()
        });
        let csums = fence_n(&mut d, MigPrimitive::KeyWrite, 2, 1);
        d.on_rejoin(0);
        d.start_drain(3);
        let mut out = Vec::new();
        d.pump(1_000, &mut out);
        // Both drain reads issued; recording the second evicted the first.
        assert_eq!(out.len(), 2);
        assert_eq!(d.stats().abandoned, 1);
        // The abandoned entry's late response is ignored (no double count).
        let mut data = csums[0].to_be_bytes().to_vec();
        data.extend_from_slice(&[9, 9, 9, 9]);
        d.on_read_response(out[0].link, out[0].psn, &data);
        assert_eq!(d.stats().replays, 0);
        // The survivor completes normally.
        let mut data = csums[1].to_be_bytes().to_vec();
        data.extend_from_slice(&[1, 1, 1, 1]);
        d.on_read_response(out[1].link, out[1].psn, &data);
        out.clear();
        d.pump(2_000, &mut out);
        let last = out.iter().map(|e| e.psn).max().unwrap();
        d.on_ack(out[0].link, last);
        let stats = d.finish();
        assert_eq!(stats.transferred, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.resident, 0);
        assert!(stats.closes());
    }

    #[test]
    fn dice_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = driver(RebalanceConfig {
                faults: MigrationFaults { drop_chance: 0.5, duplicate_chance: 0.3, reorder_chance: 0.3 },
                seed,
                retry_ns: 100,
                ..Default::default()
            });
            fence_n(&mut d, MigPrimitive::KeyWrite, 8, 1);
            d.on_rejoin(0);
            d.start_drain(3);
            let mut all = Vec::new();
            for t in 0..20u64 {
                d.pump(t * 100, &mut all);
            }
            (all, *d.stats())
        };
        let (a1, s1) = run(42);
        let (a2, s2) = run(42);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        let (a3, _) = run(43);
        assert_ne!(a1, a3, "different seeds should fault differently");
        assert!(s1.injected_drops > 0);
        assert!(s1.injected_dups > 0);
    }

    #[test]
    fn fence_eviction_flushes_deferred_reports() {
        let mut d = driver(RebalanceConfig { fence_capacity: 1, ..Default::default() });
        let k = key(0);
        let csum = checksum_of(&mut d, &k);
        d.fence_record(MigPrimitive::KeyIncrement, &k, csum, 1, 2);
        d.on_rejoin(0);
        let live = DtaReport::key_increment(1, k, 1, 5);
        assert!(d.try_defer(MigPrimitive::KeyIncrement, csum, &live, ReportOrigin::default()));
        // A second key evicts the first, which must release its deferral.
        let k2 = key(1);
        let csum2 = checksum_of(&mut d, &k2);
        d.fence_record(MigPrimitive::KeyIncrement, &k2, csum2, 1, 2);
        assert_eq!(d.stats().fence_evicted, 1);
        let mut replays = Vec::new();
        d.take_replays(&mut replays);
        assert_eq!(replays.len(), 1, "deferred live report survives eviction");
        assert_eq!(d.stats().deferred_flushed, 1);
    }

    #[test]
    fn closure_identity_arithmetic() {
        let s = RebalanceStats {
            scanned: 10,
            transferred: 6,
            skipped: 3,
            resident: 1,
            ..Default::default()
        };
        assert!(s.closes());
        let bad = RebalanceStats { resident: 0, ..s };
        assert!(!bad.closes());
    }
}

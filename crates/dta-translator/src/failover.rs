//! Collector failover: epoch-stamped routing, fail-stop detection, and
//! replay of un-acked writes.
//!
//! The paper's collector is a scale-out tier (§5.3): the translator spreads
//! keys across N collector nodes with the collector-level [`Partitioner`]
//! (salt 0), orthogonal to the shard-level partitioning inside each
//! translator pipe. This module makes that tier lose a node without losing
//! telemetry:
//!
//! * [`CollectorRoutingTable`] — primary owner is the salt-0 reduction over
//!   all N collectors; when the primary is dead the key digest is re-salted
//!   and re-reduced over the ordered survivor set, so re-routing is pure
//!   (no handoff state) and every translator computes the same owner.
//!   Entries are epoch-stamped: each membership change bumps the table
//!   epoch and stamps the affected entry.
//! * fail-stop detection — two signals, matching the two deployments:
//!   the single-threaded [`FleetTranslatorNode`] watches RDMA completions
//!   per collector and declares death after `min_unacked` sends with no
//!   response for `timeout_ns` (completion timeout); the sharded
//!   [`FleetShardedNode`] executes RDMA in-process and instead consumes an
//!   RDMA_CM teardown ([`crate::cm::CmEvent::Disconnect`]) surfaced through
//!   the [`FleetAdmin`] handle.
//! * [`ReplayLedger`] — a bounded, per-collector FIFO window of recently
//!   translated Key-Write / Key-Increment reports. On failover the whole
//!   window for the dead collector is replayed through the survivors.
//!   Acked entries are *not* retired from the window (only capacity evicts
//!   them), because a spurious failover must re-apply even acknowledged
//!   writes at the new owner: queries route by the final table, so the
//!   suspected node's copies stop counting the moment it is marked dead.
//!   Write-once Key-Write and commutative Key-Increment make the replay
//!   order-invariant and (per final-table routing) exactly-once.
//!
//! The convergence claim mirrors the PR 5 congestion loop, in the
//! self-stabilization frame of Dolev et al.: after a fail-stop fault, the
//! surviving fleet's merged memory is byte-identical to a same-seed run
//! that never had the failure.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dta_collector::layout::{CmsLayout, KwLayout};
use dta_collector::service::{CollectorService, SERVICE_CMS, SERVICE_KW};
use dta_core::framing::UdpPacket;
use dta_core::{DtaReport, PrimitiveHeader, TelemetryKey, DTA_UDP_PORT};
use dta_hash::scratch::KeyScratch;
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};
use dta_rdma::cm::CmRequester;
use dta_rdma::mr::MemoryRegion;
use dta_rdma::packet::{Opcode, Reth, RocePacket, ROCE_UDP_PORT};

use crate::node::TranslatorNodeStats;
use crate::partition::{collector_route, collector_route_list};
use crate::rebalance::{
    link_of, MigPrimitive, RebalanceConfig, RebalanceDriver, RebalanceStats, WireEmission, WireKind,
};
use crate::shard::{ReportOrigin, ShardedConfig, ShardedRunReport, ShardedTranslator};
use crate::translator::{Translator, TranslatorConfig, TranslatorOutput, TranslatorStats};

/// Salt for the survivor-fallback reduction. The primary reduction fixes
/// `mix32(checksum)` to a narrow band for any one collector's range, so
/// re-reducing the *same* mix over the survivor count would land the whole
/// dead range on one or two survivors; folding a distinct salt into the
/// mix input (the same domain-separation mechanism as `SHARD_SALT`)
/// decorrelates the two reductions and spreads the range evenly.
const FAILOVER_SALT: u32 = 0xFA11_0E55;

/// Epoch-stamped collector membership and key routing.
///
/// Owner resolution is a pure function of `(key digest, alive set)`:
///
/// 1. `primary = collector_route(checksum, n)` — the salt-0 reduction the
///    [`Partitioner`] uses, over the *full* fleet size, so routing is
///    stable across membership churn for keys whose primary is alive;
/// 2. if the primary is dead, the digest is re-salted with
///    [`FAILOVER_SALT`], re-reduced over the number of survivors, and
///    mapped onto the ordered alive list.
///
/// Rule 1 means a rejoin instantly restores primary routing (new writes go
/// home); rule 2 means survivors share a dead node's range evenly without
/// any coordination or handoff table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorRoutingTable {
    alive: Vec<bool>,
    entry_epoch: Vec<u64>,
    epoch: u64,
}

impl CollectorRoutingTable {
    /// Table over `n` collectors, all alive, epoch 0.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "a fleet needs at least one collector");
        CollectorRoutingTable {
            alive: vec![true; n as usize],
            entry_epoch: vec![0; n as usize],
            epoch: 0,
        }
    }

    /// Fleet size (alive or dead).
    pub fn len(&self) -> u32 {
        self.alive.len() as u32
    }

    /// False — a table always has at least one entry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether collector `c` is currently routed to.
    pub fn is_alive(&self, c: u32) -> bool {
        self.alive[c as usize]
    }

    /// Number of live collectors.
    pub fn alive_count(&self) -> u32 {
        self.alive.iter().filter(|a| **a).count() as u32
    }

    /// The alive bitmap, fleet-indexed.
    pub fn alive_slots(&self) -> &[bool] {
        &self.alive
    }

    /// Current table epoch (bumped once per membership change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch at which collector `c`'s entry last changed (0 = never).
    pub fn entry_epoch(&self, c: u32) -> u64 {
        self.entry_epoch[c as usize]
    }

    /// Mark `c` dead; returns false if it already was (idempotent).
    pub fn mark_dead(&mut self, c: u32) -> bool {
        if !self.alive[c as usize] {
            return false;
        }
        assert!(self.alive_count() > 1, "cannot kill the last live collector");
        self.alive[c as usize] = false;
        self.epoch += 1;
        self.entry_epoch[c as usize] = self.epoch;
        true
    }

    /// Mark `c` alive again; returns false if it already was.
    pub fn mark_alive(&mut self, c: u32) -> bool {
        if self.alive[c as usize] {
            return false;
        }
        self.alive[c as usize] = true;
        self.epoch += 1;
        self.entry_epoch[c as usize] = self.epoch;
        true
    }

    /// Bump the epoch without a membership change — the rebalance fence
    /// and release bumps, which change *interpretation* (double-write vs
    /// single-owner) rather than the alive set.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The always-alive-primary owner for a key checksum.
    pub fn primary_checksum(&self, checksum: u32) -> u32 {
        collector_route(checksum, self.len())
    }

    /// Current owner for a key checksum (primary, or survivor fallback).
    pub fn owner_checksum(&self, checksum: u32) -> u32 {
        let primary = self.primary_checksum(checksum);
        if self.alive[primary as usize] {
            return primary;
        }
        self.nth_alive(collector_route(checksum ^ FAILOVER_SALT, self.alive_count()))
    }

    /// Current owner for an Append list id.
    pub fn owner_list(&self, list_id: u32) -> u32 {
        let primary = collector_route_list(list_id, self.len());
        if self.alive[primary as usize] {
            return primary;
        }
        self.nth_alive(collector_route_list(list_id ^ FAILOVER_SALT, self.alive_count()))
    }

    /// The `k`-th live collector in fleet order.
    fn nth_alive(&self, k: u32) -> u32 {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .nth(k as usize)
            .map(|(i, _)| i as u32)
            .expect("routing with no live collectors")
    }
}

/// Administrative fleet events, delivered to the fleet node between engine
/// steps (pushed by the scenario harness, consumed at the node's next
/// tick — a deterministic boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// RDMA_CM teardown observed for `collector` (the CM-teardown
    /// detection path; the sharded deployment's only fail-stop signal).
    Teardown {
        /// Fleet index of the torn-down collector.
        collector: u32,
    },
    /// Force a failover for a *live* collector (a false-positive
    /// suspicion): exercises replay idempotence.
    ForceFailover {
        /// Fleet index of the suspected collector.
        collector: u32,
    },
    /// Re-admit a previously failed collector.
    Rejoin {
        /// Fleet index of the rejoining collector.
        collector: u32,
    },
    /// Start the epoch-fenced migration of `collector`'s stranded key
    /// range back from its fallback owners (after a rejoin).
    Rebalance {
        /// Fleet index of the rejoined collector.
        collector: u32,
    },
}

/// Cloneable handle for signalling [`FleetEvent`]s into a running fleet
/// node (the node drains it at each tick).
#[derive(Debug, Clone, Default)]
pub struct FleetAdmin(Arc<Mutex<Vec<FleetEvent>>>);

impl FleetAdmin {
    /// Fresh empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an event for the next tick.
    pub fn signal(&self, event: FleetEvent) {
        self.0.lock().unwrap().push(event);
    }

    /// Move all pending events into `into` (FIFO).
    fn drain(&self, into: &mut Vec<FleetEvent>) {
        into.append(&mut self.0.lock().unwrap());
    }
}

/// One ledgered report: everything needed to replay it elsewhere.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Fleet index the report was translated toward.
    pub collector: u32,
    /// Requester-side QPN the resulting RDMA rode on (ACKs name it).
    pub qpn: u32,
    /// PSN of the last RDMA packet of this report; the entry is acked once
    /// the cumulative ACK for its QP reaches this PSN.
    pub last_psn: u32,
    /// Whether the collector acknowledged the report's writes.
    pub acked: bool,
    /// The report itself (replay re-translates it from scratch).
    pub report: DtaReport,
    /// Return address (sharded replay re-ingests with it).
    pub origin: ReportOrigin,
}

/// Bounded per-collector FIFO window of recently translated reports.
///
/// Capacity — not acknowledgement — is the only thing that retires an
/// entry, so a failover can replay acked writes too (required for spurious
/// failovers, see module docs). Accounting closes exactly:
/// `recorded == evicted + drained + resident`, where drains are failover
/// or NAK replays.
#[derive(Debug)]
pub struct ReplayLedger {
    windows: Vec<VecDeque<LedgerEntry>>,
    capacity: usize,
    /// Entries ever recorded (replays re-record at the new owner).
    pub recorded: u64,
    /// Entries evicted by capacity before any failover needed them.
    pub evicted: u64,
}

impl ReplayLedger {
    /// Ledger over `collectors` windows of `capacity` entries each.
    pub fn new(collectors: u32, capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity ledger cannot replay anything");
        ReplayLedger {
            windows: (0..collectors).map(|_| VecDeque::new()).collect(),
            capacity,
            recorded: 0,
            evicted: 0,
        }
    }

    /// Append an entry to its collector's window, evicting the oldest
    /// entry if the window is full.
    pub fn record(&mut self, entry: LedgerEntry) {
        let window = &mut self.windows[entry.collector as usize];
        if window.len() == self.capacity {
            window.pop_front();
            self.evicted += 1;
        }
        window.push_back(entry);
        self.recorded += 1;
    }

    /// Apply a cumulative ACK: every entry on `(collector, qpn)` whose
    /// last PSN is covered by `psn` becomes acked.
    pub fn mark_acked(&mut self, collector: u32, qpn: u32, psn: u32) {
        for e in self.windows[collector as usize].iter_mut() {
            if e.qpn == qpn && !e.acked && e.last_psn <= psn {
                e.acked = true;
            }
        }
    }

    /// Take the whole window of `collector` (failover replay), FIFO order.
    pub fn drain_for(&mut self, collector: u32, into: &mut Vec<LedgerEntry>) {
        into.extend(self.windows[collector as usize].drain(..));
    }

    /// Take the un-acked suffix a NAK proves unexecuted: entries on
    /// `(collector, qpn)` with `last_psn >= expected_psn`. Sound because
    /// the only loss source here is contiguous (a dead/rejoining node
    /// sinks everything from some PSN onward), so a NAK'd suffix contains
    /// no partially executed entries.
    pub fn drain_nak(
        &mut self,
        collector: u32,
        qpn: u32,
        expected_psn: u32,
        into: &mut Vec<LedgerEntry>,
    ) {
        let window = &mut self.windows[collector as usize];
        let mut i = 0;
        while i < window.len() {
            if window[i].qpn == qpn && !window[i].acked && window[i].last_psn >= expected_psn {
                into.push(window.remove(i).unwrap());
            } else {
                i += 1;
            }
        }
    }

    /// Entries currently resident across all windows.
    pub fn resident(&self) -> u64 {
        self.windows.iter().map(|w| w.len() as u64).sum()
    }
}

/// Failover counters, surfaced in `ScenarioReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverStats {
    /// Collectors failed over (genuine or spurious).
    pub failovers: u64,
    /// Failovers forced on a live collector ([`FleetEvent::ForceFailover`]).
    pub spurious: u64,
    /// Collectors re-admitted.
    pub rejoins: u64,
    /// Failovers detected by RDMA completion timeout.
    pub detected_timeout: u64,
    /// Failovers detected by RDMA_CM teardown.
    pub detected_teardown: u64,
    /// CM `Disconnect` (DREQ) events issued/observed during failovers.
    pub cm_disconnects: u64,
    /// Reports routed to a non-primary owner (the re-routed key range).
    pub rerouted: u64,
    /// Ledger entries replayed by failovers.
    pub replayed: u64,
    /// Replayed entries that had already been acked (spurious-failover
    /// idempotence territory).
    pub replayed_acked: u64,
    /// Ledger entries replayed because a NAK proved them unexecuted
    /// (post-rejoin PSN resynchronization).
    pub nak_replayed: u64,
    /// Entries ever recorded in the ledger.
    pub ledger_recorded: u64,
    /// Entries evicted by ledger capacity (un-replayable had a failover
    /// hit their collector; 0 in a well-provisioned run).
    pub ledger_evicted: u64,
    /// Entries still resident at finish.
    pub ledger_resident: u64,
    /// Final routing-table epoch.
    pub epoch: u64,
    /// Duplicate `Kill`/`Rejoin`-class events ignored in the same epoch
    /// (idempotence hardening: a repeat must not double-bump the epoch).
    pub duplicate_events: u64,
}

impl FailoverStats {
    /// The ledger accounting identity: every recorded entry is evicted,
    /// replayed (failover or NAK), or still resident.
    pub fn ledger_closes(&self) -> bool {
        self.ledger_recorded
            == self.ledger_evicted + self.replayed + self.nak_replayed + self.ledger_resident
    }
}

/// Fleet-node sizing and detection thresholds.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-endpoint translator configuration.
    pub translator: TranslatorConfig,
    /// Completion timeout: a collector with `min_unacked` outstanding
    /// sends and no response for this long is declared dead.
    pub timeout_ns: u64,
    /// Outstanding-send floor for the timeout rule. Must exceed the
    /// worst-case *live* backlog from per-QP ACK coalescing — with the two
    /// service QPs a fleet endpoint opens (KW + CMS), that bound is
    /// `2 * (ack_coalesce - 1)` — or a quiet-but-live collector gets
    /// declared dead.
    pub min_unacked: u64,
    /// Per-collector replay-window capacity.
    pub ledger_capacity: usize,
    /// Rebalance sizing; `None` disables migration (no migration QPs are
    /// even connected).
    pub rebalance: Option<RebalanceConfig>,
}

/// Aggregated results of a single-threaded fleet run.
#[derive(Debug)]
pub struct FleetRunReport {
    /// Merged per-endpoint translator counters.
    pub translator: TranslatorStats,
    /// Failover counters.
    pub failover: FailoverStats,
    /// Rebalance counters, when a rebalance was configured.
    pub rebalance: Option<RebalanceStats>,
    /// Final routing table (drives the survivor-side audit).
    pub table: CollectorRoutingTable,
}

/// Aggregated results of a sharded fleet run.
#[derive(Debug)]
pub struct FleetShardedRunReport {
    /// Per-collector pipeline reports, fleet order.
    pub runs: Vec<ShardedRunReport>,
    /// Failover counters.
    pub failover: FailoverStats,
    /// Rebalance counters, when a rebalance was configured.
    pub rebalance: Option<RebalanceStats>,
    /// Final routing table.
    pub table: CollectorRoutingTable,
}

/// One migration QP's addressing inside the single-threaded fleet node.
#[derive(Debug, Clone, Copy)]
struct MigLink {
    /// Requester-side QPN (responses and ACKs name it).
    req_qpn: u32,
    /// Responder QPN at the collector.
    dest_qpn: u32,
    /// Remote key of the target region.
    rkey: u32,
}

/// Rebalance state of the single-threaded fleet node: the driver plus the
/// dedicated migration QPs (slots 2/3 per collector, separate from the
/// report-path service QPs so migration traffic never perturbs report
/// PSNs or the completion-timeout accounting).
#[derive(Debug)]
struct FleetRebalance {
    driver: RebalanceDriver,
    /// Indexed by [`link_of`]; `None` when the service is disabled.
    links: Vec<Option<MigLink>>,
    emission_buf: Vec<WireEmission>,
    replay_buf: Vec<(DtaReport, ReportOrigin)>,
}

/// Rebalance state of the sharded fleet node: migration verbs execute
/// in-process against per-collector region clones, behind a per-link
/// expected-PSN check that mirrors the RoCE responder (so injected
/// duplicates and reorders exercise the same dup-drop / NAK recovery).
#[derive(Debug)]
struct ShardedRebalance {
    driver: RebalanceDriver,
    /// Per-collector `(KW, CMS)` region clones.
    regions: Vec<(Option<MemoryRegion>, Option<MemoryRegion>)>,
    /// Per-link responder expected PSN (indexed by [`link_of`]).
    expected_psn: Vec<u32>,
    emission_buf: Vec<WireEmission>,
    replay_buf: Vec<(DtaReport, ReportOrigin)>,
}

/// `(primitive, key, redundancy)` of a migratable report (KW / INC only;
/// the other primitives are not fleet-routed by key).
fn migratable(report: &DtaReport) -> Option<(MigPrimitive, &TelemetryKey, u8)> {
    match &report.primitive {
        PrimitiveHeader::KeyWrite(h) => Some((MigPrimitive::KeyWrite, &h.key, h.redundancy)),
        PrimitiveHeader::KeyIncrement(h) => {
            Some((MigPrimitive::KeyIncrement, &h.key, h.redundancy))
        }
        _ => None,
    }
}

/// One collector's connection state inside the single-threaded fleet node.
#[derive(Debug)]
struct Endpoint {
    node: NodeId,
    ip: u32,
    translator: Translator,
    /// `(requester QPN, responder QPN)` per connected service. Outgoing
    /// RDMA names the responder QPN; ACKs come back naming the requester
    /// QPN — this is the bridge between the two for ledger bookkeeping.
    links: Vec<(u32, u32)>,
    /// Completion-timeout anchor: the later of the last RoCE response and
    /// the send that pushed `sends_since_response` across the
    /// `min_unacked` floor. Measuring silence from the *crossing* (not
    /// from connect, nor from an arbitrary earlier send) is what makes the
    /// timeout safe for far collectors: once the floor is crossed, one QP
    /// necessarily holds a full ACK-coalescing window, so a live collector
    /// has a response back within one fabric RTT of the anchor.
    last_progress_ns: u64,
    /// RDMA packets sent since the last response.
    sends_since_response: u64,
    /// `(requester QPN, expected PSN)` of the last NAK acted on, per QP.
    /// A responder NAKs *every* out-of-sequence arrival, so one loss
    /// yields a train of identical NAKs; only the first may trigger a
    /// resync + ledger replay (the retransmit for the rest is already in
    /// flight, and PSNs never repeat within a run, so an identical
    /// expected PSN always means a stale duplicate).
    naks_handled: Vec<(u32, u32)>,
}

impl Endpoint {
    fn req_qpn_for(&self, resp_qpn: u32) -> u32 {
        self.links
            .iter()
            .find(|(_, r)| *r == resp_qpn)
            .map(|(q, _)| *q)
            .unwrap_or(resp_qpn)
    }
}

/// Requester QPN base for fleet endpoints: `0x7100 + collector*16 + svc`,
/// clear of the single-collector (0x700+) and shard (0x4000+) ranges.
fn fleet_qpn(collector: u32, service_slot: u32) -> u32 {
    0x7100 + collector * 16 + service_slot
}

/// The multi-collector translator as an intercepting [`NetNode`]
/// (single-threaded deployment: RoCE crosses the simulated network).
///
/// One fully connected [`Translator`] per collector; reports route
/// collector-first through the [`CollectorRoutingTable`], then translate
/// on the owner's endpoint. Fail-stop detection is the completion
/// timeout; [`FleetAdmin`] events layer CM teardown, spurious failover,
/// and rejoin on top.
#[derive(Debug)]
pub struct FleetTranslatorNode {
    endpoints: Vec<Endpoint>,
    table: CollectorRoutingTable,
    ledger: ReplayLedger,
    admin: FleetAdmin,
    timeout_ns: u64,
    min_unacked: u64,
    my_id: NodeId,
    my_ip: u32,
    key_scratch: KeyScratch,
    scratch: TranslatorOutput,
    event_buf: Vec<FleetEvent>,
    replay_buf: Vec<LedgerEntry>,
    rebalance: Option<FleetRebalance>,
    /// Per-node counters (shared shape with the single-collector node).
    pub stats: TranslatorNodeStats,
    /// Failover counters.
    pub failover: FailoverStats,
}

impl FleetTranslatorNode {
    /// Connect one endpoint per collector in `peers` (fleet order), each
    /// with KW + CMS service connections, and return the node plus the
    /// admin handle for signalling fleet events.
    ///
    /// `peers` entries are `(node id, ip, service)`; the handshake runs
    /// against each service's CM before the services move into their own
    /// network nodes.
    pub fn connect(
        config: &FleetConfig,
        peers: &mut [(NodeId, u32, &mut CollectorService)],
        my_id: NodeId,
        my_ip: u32,
    ) -> (Self, FleetAdmin) {
        assert!(!peers.is_empty(), "a fleet needs at least one collector");
        let mut endpoints = Vec::with_capacity(peers.len());
        let mut mig_links: Vec<Option<MigLink>> = vec![None; peers.len() * 2];
        let mut mig_layouts: (Option<KwLayout>, Option<CmsLayout>) = (None, None);
        for (c, (node, ip, svc)) in peers.iter_mut().enumerate() {
            let mut translator = Translator::new(config.translator.clone());
            let mut links = Vec::new();
            for (slot, service) in [SERVICE_KW, SERVICE_CMS].into_iter().enumerate() {
                let requester = CmRequester::new(fleet_qpn(c as u32, slot as u32), 0);
                let reply = svc.handle_cm(&requester.request(service));
                let Ok((qp, params)) = requester.complete(&reply) else {
                    continue; // service disabled on this collector
                };
                links.push((qp.qpn, params.qpn));
                match service {
                    SERVICE_KW => translator.connect_key_write(qp, params),
                    _ => translator.connect_key_increment(qp, params),
                }
            }
            // Dedicated migration QPs (slots 2/3), only when a rebalance is
            // planned: reads + zero-writes ride their own PSN spaces.
            if config.rebalance.is_some() {
                for (slot, service) in [(2u32, SERVICE_KW), (3u32, SERVICE_CMS)] {
                    let requester = CmRequester::new(fleet_qpn(c as u32, slot), 0);
                    // A dedicated responder QP per migration link:
                    // re-accepting the service's published QP would splice
                    // this requester into the service connection's PSN
                    // stream (and repoint its ACKs here).
                    let reply = svc.handle_cm_dedicated(&requester.request(service));
                    let Ok((qp, params)) = requester.complete(&reply) else {
                        continue;
                    };
                    let primitive = if service == SERVICE_KW {
                        mig_layouts.0.get_or_insert(KwLayout {
                            base_va: params.base_va,
                            slots: params.slots,
                            value_bytes: params.slot_bytes - KwLayout::CSUM_BYTES,
                        });
                        MigPrimitive::KeyWrite
                    } else {
                        mig_layouts
                            .1
                            .get_or_insert(CmsLayout { base_va: params.base_va, slots: params.slots });
                        MigPrimitive::KeyIncrement
                    };
                    mig_links[link_of(c as u32, primitive) as usize] = Some(MigLink {
                        req_qpn: qp.qpn,
                        dest_qpn: params.qpn,
                        rkey: params.rkey,
                    });
                }
            }
            endpoints.push(Endpoint {
                node: *node,
                ip: *ip,
                translator,
                links,
                last_progress_ns: 0,
                sends_since_response: 0,
                naks_handled: Vec::new(),
            });
        }
        let rebalance = config.rebalance.map(|rb| FleetRebalance {
            driver: RebalanceDriver::new(rb, mig_layouts.0, mig_layouts.1),
            links: mig_links,
            emission_buf: Vec::new(),
            replay_buf: Vec::new(),
        });
        let n = endpoints.len() as u32;
        let admin = FleetAdmin::new();
        let node = FleetTranslatorNode {
            endpoints,
            table: CollectorRoutingTable::new(n),
            ledger: ReplayLedger::new(n, config.ledger_capacity),
            admin: admin.clone(),
            timeout_ns: config.timeout_ns,
            min_unacked: config.min_unacked,
            my_id,
            my_ip,
            key_scratch: KeyScratch::new(16 * 1024, 1),
            scratch: TranslatorOutput::default(),
            event_buf: Vec::new(),
            replay_buf: Vec::new(),
            rebalance,
            stats: TranslatorNodeStats::default(),
            failover: FailoverStats::default(),
        };
        (node, admin)
    }

    /// The routing table (epoch inspection in tests).
    pub fn table(&self) -> &CollectorRoutingTable {
        &self.table
    }

    /// `(current owner, primary owner)` for a report.
    fn route(&mut self, report: &DtaReport) -> (u32, u32) {
        let key = match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => &h.key,
            PrimitiveHeader::KeyIncrement(h) => &h.key,
            PrimitiveHeader::Postcarding(h) => &h.key,
            PrimitiveHeader::Append(h) => {
                let primary = collector_route_list(h.list_id, self.table.len());
                return (self.table.owner_list(h.list_id), primary);
            }
        };
        let checksum = self.key_scratch.digests(key.as_bytes(), 0).checksum;
        (self.table.owner_checksum(checksum), self.table.primary_checksum(checksum))
    }

    /// Record a reroute in the migration fence (reroute sites: receive,
    /// fail-time window replay, NAK replay).
    fn record_fence(&mut self, report: &DtaReport, fallback_owner: u32) {
        let Some(rb) = self.rebalance.as_mut() else { return };
        let Some((primitive, key, redundancy)) = migratable(report) else { return };
        let checksum = self.key_scratch.digests(key.as_bytes(), 0).checksum;
        rb.driver.fence_record(primitive, key, checksum, redundancy, fallback_owner);
    }

    /// Translate `report` on collector `owner`'s endpoint, emit the RoCE
    /// packets, and ledger the report against that owner.
    fn translate_to(
        &mut self,
        owner: u32,
        now_ns: u64,
        report: &DtaReport,
        origin: ReportOrigin,
        out: &mut Vec<Emission>,
    ) {
        let my_id = self.my_id;
        let my_ip = self.my_ip;
        let min_unacked = self.min_unacked;
        let mut translated = std::mem::take(&mut self.scratch);
        let ep = &mut self.endpoints[owner as usize];
        ep.translator.process_batch(now_ns, std::slice::from_ref(report), &mut translated);
        debug_assert!(translated.nacked.is_empty(), "fleet specs carry no rate limiter");
        for p in &translated.packets {
            let udp = UdpPacket::frame(my_ip, ROCE_UDP_PORT, ep.ip, ROCE_UDP_PORT, p.encode());
            out.push(Emission::now(Packet::rdma(my_id, ep.node, udp.encode())));
        }
        // Sends below the outstanding floor re-anchor the completion
        // timeout: the silence clock starts at the floor crossing.
        if ep.sends_since_response < min_unacked {
            ep.last_progress_ns = now_ns;
        }
        ep.sends_since_response += translated.packets.len() as u64;
        if let Some(last) = translated.packets.last() {
            let qpn = ep.req_qpn_for(last.bth.dest_qp);
            self.ledger.record(LedgerEntry {
                collector: owner,
                qpn,
                last_psn: last.bth.psn,
                acked: false,
                report: report.clone(),
                origin,
            });
        }
        self.scratch = translated;
    }

    /// Fail collector `c`: stamp the table, tear down its CM connections,
    /// and replay its whole ledger window through the survivors.
    fn fail(&mut self, now_ns: u64, c: u32, out: &mut Vec<Emission>) {
        if !self.table.mark_dead(c) {
            self.failover.duplicate_events += 1;
            return; // already failed over: idempotent no-op
        }
        self.failover.failovers += 1;
        self.failover.epoch = self.table.epoch();
        // DREQ each service connection; the DREP may never come (the node
        // is presumed gone), which is fine — CM teardown is stateless.
        self.failover.cm_disconnects += self.endpoints[c as usize].links.len() as u64;
        let mut window = std::mem::take(&mut self.replay_buf);
        self.ledger.drain_for(c, &mut window);
        for entry in window.drain(..) {
            self.failover.replayed += 1;
            if entry.acked {
                self.failover.replayed_acked += 1;
            }
            let (owner, primary) = self.route(&entry.report);
            debug_assert_ne!(owner, c, "table must not route to a dead collector");
            if owner != primary {
                self.record_fence(&entry.report, owner);
            }
            self.translate_to(owner, now_ns, &entry.report, entry.origin, out);
        }
        self.replay_buf = window;
    }

    /// Re-admit collector `c`. Its endpoint QPs are stale by however many
    /// PSNs were sunk while it was dead; the first post-rejoin write is
    /// NAK'd, which resynchronizes the QP and replays the NAK'd suffix
    /// from the ledger.
    fn rejoin(&mut self, now_ns: u64, c: u32) {
        if !self.table.mark_alive(c) {
            self.failover.duplicate_events += 1;
            return;
        }
        self.failover.rejoins += 1;
        self.failover.epoch = self.table.epoch();
        if let Some(rb) = self.rebalance.as_mut() {
            rb.driver.on_rejoin(c);
        }
        let ep = &mut self.endpoints[c as usize];
        ep.last_progress_ns = now_ns;
        ep.sends_since_response = 0;
        // A readmitted node starts a fresh recovery round; its resync
        // NAKs must be handled anew.
        ep.naks_handled.clear();
    }

    /// Fence the routing table and start draining the stranded range.
    fn start_rebalance(&mut self, c: u32) {
        if self.rebalance.is_none() || !self.table.is_alive(c) {
            return; // no plan, or the victim never rejoined
        }
        let epoch = self.table.bump_epoch();
        self.failover.epoch = epoch;
        self.rebalance.as_mut().unwrap().driver.start_drain(epoch);
    }

    /// Migration-link id for a requester QPN, if it names a migration QP.
    fn mig_link_for(&self, req_qpn: u32) -> Option<u32> {
        let rb = self.rebalance.as_ref()?;
        rb.links
            .iter()
            .position(|l| matches!(l, Some(link) if link.req_qpn == req_qpn))
            .map(|i| i as u32)
    }

    /// Drive the migration: release check, wire emissions, and replays.
    fn pump_rebalance(&mut self, now_ns: u64, out: &mut Vec<Emission>) {
        let ready = self.rebalance.as_ref().map(|rb| rb.driver.release_ready()).unwrap_or(false);
        if ready {
            let epoch = self.table.bump_epoch();
            self.failover.epoch = epoch;
            self.rebalance.as_mut().unwrap().driver.mark_released(epoch);
        }
        let Some(rb) = self.rebalance.as_mut() else { return };
        let mut emissions = std::mem::take(&mut rb.emission_buf);
        emissions.clear();
        rb.driver.pump(now_ns, &mut emissions);
        for e in &emissions {
            let Some(link) = self.rebalance.as_ref().unwrap().links[e.link as usize] else {
                continue;
            };
            let ep = &self.endpoints[e.collector() as usize];
            let reth = Reth { va: e.va, rkey: link.rkey, dma_len: e.len };
            let pkt = match e.kind {
                WireKind::Read => RocePacket::read_request(link.dest_qpn, e.psn, reth),
                WireKind::WriteZero => {
                    let mut p =
                        RocePacket::write(link.dest_qpn, e.psn, reth, vec![0u8; e.len as usize].into());
                    // Solicit an immediate ACK: migration completion must
                    // not wait out the service-QP coalescing window.
                    p.bth.solicited = true;
                    p
                }
                WireKind::FetchAdd => {
                    let mut p =
                        RocePacket::fetch_add(link.dest_qpn, e.psn, e.va, link.rkey, e.arg);
                    p.bth.solicited = true;
                    p
                }
            };
            let udp = UdpPacket::frame(self.my_ip, ROCE_UDP_PORT, ep.ip, ROCE_UDP_PORT, pkt.encode());
            out.push(Emission::now(Packet::rdma(self.my_id, ep.node, udp.encode())));
        }
        self.rebalance.as_mut().unwrap().emission_buf = emissions;
        // Drained state and released deferrals re-enter the report path.
        let mut replays = std::mem::take(&mut self.rebalance.as_mut().unwrap().replay_buf);
        replays.clear();
        self.rebalance.as_mut().unwrap().driver.take_replays(&mut replays);
        for (report, origin) in replays.drain(..) {
            let (owner, _) = self.route(&report);
            self.translate_to(owner, now_ns, &report, origin, out);
        }
        self.rebalance.as_mut().unwrap().replay_buf = replays;
    }

    /// Merge per-endpoint counters and close out the ledger accounting.
    pub fn finish(&mut self) -> FleetRunReport {
        let mut translator = TranslatorStats::default();
        for ep in &self.endpoints {
            translator.merge(&ep.translator.stats);
        }
        self.failover.ledger_recorded = self.ledger.recorded;
        self.failover.ledger_evicted = self.ledger.evicted;
        self.failover.ledger_resident = self.ledger.resident();
        FleetRunReport {
            translator,
            failover: self.failover,
            rebalance: self.rebalance.as_mut().map(|rb| rb.driver.finish()),
            table: self.table.clone(),
        }
    }
}

impl NetNode for FleetTranslatorNode {
    fn receive(&mut self, now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        let Ok(udp) = UdpPacket::decode(packet.payload.clone()) else {
            self.stats.malformed += 1;
            return;
        };
        match udp.udp.dst_port {
            DTA_UDP_PORT => {
                let Ok(report) = DtaReport::decode(udp.payload.clone()) else {
                    self.stats.malformed += 1;
                    return;
                };
                self.stats.dta_in += 1;
                let origin = ReportOrigin {
                    node: packet.src.0,
                    ip: udp.ip.src,
                    port: udp.udp.src_port,
                };
                let (owner, primary) = self.route(&report);
                if owner != primary {
                    self.failover.rerouted += 1;
                    self.record_fence(&report, owner);
                } else if self.rebalance.is_some() {
                    // Post-rejoin live traffic for a still-fenced key:
                    // defer INC until its baseline lands, double-write KW
                    // to the fallback owner until its copy is zeroed.
                    if let Some((primitive, key, _)) = migratable(&report) {
                        let checksum = self.key_scratch.digests(key.as_bytes(), 0).checksum;
                        let rb = self.rebalance.as_mut().unwrap();
                        if rb.driver.try_defer(primitive, checksum, &report, origin) {
                            return; // re-emerges via take_replays
                        }
                        if primitive == MigPrimitive::KeyWrite {
                            if let Some(fallback) = rb.driver.double_write_target(checksum) {
                                self.translate_to(fallback, now.as_nanos(), &report, origin, out);
                            }
                        }
                    }
                }
                self.translate_to(owner, now.as_nanos(), &report, origin, out);
            }
            ROCE_UDP_PORT => {
                let Ok(roce) = RocePacket::decode(udp.payload.clone()) else {
                    self.stats.malformed += 1;
                    return;
                };
                self.stats.roce_responses += 1;
                let Some(c) = self.endpoints.iter().position(|ep| ep.node == packet.src) else {
                    return; // response from an unknown node: drop
                };
                {
                    let ep = &mut self.endpoints[c];
                    ep.last_progress_ns = now.as_nanos();
                    ep.sends_since_response = 0;
                }
                // ACKs and NAKs both name the *requester* QPN.
                let qpn = roce.bth.dest_qp;
                // Migration-QP traffic has its own completion protocol.
                if let Some(link) = self.mig_link_for(qpn) {
                    let rb = self.rebalance.as_mut().unwrap();
                    if roce.bth.opcode == Opcode::ReadResponseOnly {
                        rb.driver.on_read_response(link, roce.bth.psn, &roce.payload);
                    } else if roce.is_nak() {
                        rb.driver.on_nak(link, roce.bth.psn);
                    } else {
                        rb.driver.on_ack(link, roce.bth.psn);
                    }
                    return;
                }
                if roce.is_nak() {
                    // The responder NAKs *every* out-of-sequence arrival, so
                    // one gap produces a train of identical NAKs. Only the
                    // first for a given (qpn, expected-psn) resynchronizes
                    // and replays — a repeat resync would rewind the send
                    // PSN mid-recovery. PSNs never repeat within a run, so
                    // remembering the pair is sufficient.
                    let seen = (qpn, roce.bth.psn);
                    let ep = &mut self.endpoints[c];
                    if ep.naks_handled.contains(&seen) {
                        return; // duplicate: liveness credit only
                    }
                    ep.naks_handled.push(seen);
                    ep.translator.on_roce_response(&roce);
                    let mut suffix = std::mem::take(&mut self.replay_buf);
                    self.ledger.drain_nak(c as u32, qpn, roce.bth.psn, &mut suffix);
                    for entry in suffix.drain(..) {
                        self.failover.nak_replayed += 1;
                        let (owner, primary) = self.route(&entry.report);
                        if owner != primary {
                            self.record_fence(&entry.report, owner);
                        }
                        self.translate_to(owner, now.as_nanos(), &entry.report, entry.origin, out);
                    }
                    self.replay_buf = suffix;
                } else {
                    self.ledger.mark_acked(c as u32, qpn, roce.bth.psn);
                }
            }
            _ => {
                self.stats.forwarded += 1;
                out.push(Emission::now(packet));
            }
        }
    }

    fn tick(&mut self, now: SimTime, out: &mut Vec<Emission>) -> bool {
        let now_ns = now.as_nanos();
        // 1. Administrative events (CM teardown, spurious, rejoin).
        let mut events = std::mem::take(&mut self.event_buf);
        self.admin.drain(&mut events);
        for event in events.drain(..) {
            match event {
                FleetEvent::Teardown { collector } => {
                    if self.table.is_alive(collector) {
                        self.failover.detected_teardown += 1;
                    }
                    self.fail(now_ns, collector, out);
                }
                FleetEvent::ForceFailover { collector } => {
                    if self.table.is_alive(collector) {
                        self.failover.spurious += 1;
                    }
                    self.fail(now_ns, collector, out);
                }
                FleetEvent::Rejoin { collector } => self.rejoin(now_ns, collector),
                FleetEvent::Rebalance { collector } => self.start_rebalance(collector),
            }
        }
        self.event_buf = events;
        // 2. Completion-timeout detection.
        let mut victims = Vec::new();
        for (c, ep) in self.endpoints.iter().enumerate() {
            if self.table.is_alive(c as u32)
                && self.table.alive_count() > 1
                && ep.sends_since_response >= self.min_unacked
                && now_ns.saturating_sub(ep.last_progress_ns) >= self.timeout_ns
            {
                victims.push(c as u32);
            }
        }
        for c in victims {
            self.failover.detected_timeout += 1;
            self.fail(now_ns, c, out);
        }
        // 3. Flush live endpoints (batched state; a no-op for KW/INC-only
        // fleet traffic, kept for parity with the single-collector node).
        let my_id = self.my_id;
        let my_ip = self.my_ip;
        let min_unacked = self.min_unacked;
        for (c, ep) in self.endpoints.iter_mut().enumerate() {
            if !self.table.is_alive(c as u32) {
                continue;
            }
            let flushed = ep.translator.flush(now_ns);
            // Same breach-anchor refresh as `translate_to`: the silence
            // clock starts when the outstanding floor is crossed.
            if ep.sends_since_response < min_unacked {
                ep.last_progress_ns = now_ns;
            }
            ep.sends_since_response += flushed.packets.len() as u64;
            for p in &flushed.packets {
                let udp = UdpPacket::frame(my_ip, ROCE_UDP_PORT, ep.ip, ROCE_UDP_PORT, p.encode());
                out.push(Emission::now(Packet::rdma(my_id, ep.node, udp.encode())));
            }
        }
        // 4. Migration progress (release check, wire ops, replays).
        if self.rebalance.is_some() {
            self.pump_rebalance(now_ns, out);
        }
        true
    }
}

/// The multi-collector *sharded* deployment: one [`ShardedTranslator`]
/// pipeline per collector, reports routed collector-first (this node's
/// table, salt 0), then shard-partitioned inside the owning pipeline
/// (`SHARD_SALT`) — the two-level domain separation the adversarial
/// routing test pins.
///
/// RDMA executes in-process (no RoCE on the simulated network), so
/// fail-stop detection cannot ride completion timeouts; the CM-teardown
/// [`FleetEvent::Teardown`] is the detection signal instead. Ledger
/// entries are recorded acked (execution is immediate once ingested), and
/// a failover barriers the victim's pipeline (`wait_idle`) before
/// replaying its window into the survivors, so replay contents are a pure
/// function of the delivered stream.
#[derive(Debug)]
pub struct FleetShardedNode {
    pipelines: Vec<ShardedTranslator>,
    table: CollectorRoutingTable,
    ledger: ReplayLedger,
    admin: FleetAdmin,
    key_scratch: KeyScratch,
    event_buf: Vec<FleetEvent>,
    replay_buf: Vec<LedgerEntry>,
    rebalance: Option<ShardedRebalance>,
    /// Per-node counters (`roce_responses` stays 0 by construction).
    pub stats: TranslatorNodeStats,
    /// Failover counters.
    pub failover: FailoverStats,
}

impl FleetShardedNode {
    /// Build one sharded pipeline per collector in `peers` (fleet order).
    /// Call before moving the services into their own network nodes: shard
    /// NIC endpoints clone each collector's region registry (as do the
    /// migration region handles when `rebalance` is set).
    pub fn connect(
        sharded: &ShardedConfig,
        ledger_capacity: usize,
        rebalance: Option<RebalanceConfig>,
        peers: &mut [(NodeId, u32, &mut CollectorService)],
    ) -> (Self, FleetAdmin) {
        assert!(!peers.is_empty(), "a fleet needs at least one collector");
        let rebalance = rebalance.map(|rb| {
            let regions: Vec<(Option<MemoryRegion>, Option<MemoryRegion>)> = peers
                .iter()
                .map(|(_, _, svc)| {
                    (
                        svc.keywrite.as_ref().map(|s| s.region().clone()),
                        svc.key_increment.as_ref().map(|s| s.region().clone()),
                    )
                })
                .collect();
            let kw = peers[0].2.keywrite.as_ref().map(|s| *s.layout());
            let cms = peers[0].2.key_increment.as_ref().map(|s| *s.layout());
            ShardedRebalance {
                driver: RebalanceDriver::new(rb, kw, cms),
                expected_psn: vec![0; regions.len() * 2],
                regions,
                emission_buf: Vec::new(),
                replay_buf: Vec::new(),
            }
        });
        let pipelines: Vec<ShardedTranslator> = peers
            .iter_mut()
            .map(|(_, _, svc)| ShardedTranslator::connect(sharded.clone(), svc))
            .collect();
        let n = pipelines.len() as u32;
        let admin = FleetAdmin::new();
        let node = FleetShardedNode {
            pipelines,
            table: CollectorRoutingTable::new(n),
            ledger: ReplayLedger::new(n, ledger_capacity),
            admin: admin.clone(),
            key_scratch: KeyScratch::new(16 * 1024, 1),
            event_buf: Vec::new(),
            replay_buf: Vec::new(),
            rebalance,
            stats: TranslatorNodeStats::default(),
            failover: FailoverStats::default(),
        };
        (node, admin)
    }

    /// The routing table (epoch inspection in tests).
    pub fn table(&self) -> &CollectorRoutingTable {
        &self.table
    }

    /// Barrier every live pipeline's shard queues (see
    /// `ShardedTranslatorNode::quiesce`): after this returns, every report
    /// ingested so far has been executed into its collector's memory, so a
    /// mid-run snapshot is a pure function of the delivered stream.
    pub fn quiesce(&mut self) {
        for p in &mut self.pipelines {
            p.wait_idle();
        }
    }

    /// `(current owner, primary owner)` for a report.
    fn route(&mut self, report: &DtaReport) -> (u32, u32) {
        let key = match &report.primitive {
            PrimitiveHeader::KeyWrite(h) => &h.key,
            PrimitiveHeader::KeyIncrement(h) => &h.key,
            PrimitiveHeader::Postcarding(h) => &h.key,
            PrimitiveHeader::Append(h) => {
                let primary = collector_route_list(h.list_id, self.table.len());
                return (self.table.owner_list(h.list_id), primary);
            }
        };
        let checksum = self.key_scratch.digests(key.as_bytes(), 0).checksum;
        (self.table.owner_checksum(checksum), self.table.primary_checksum(checksum))
    }

    /// Record a reroute in the migration fence (mirrors the single-node
    /// reroute sites; the sharded node has no NAK path).
    fn record_fence(&mut self, report: &DtaReport, fallback_owner: u32) {
        let Some(rb) = self.rebalance.as_mut() else { return };
        let Some((primitive, key, redundancy)) = migratable(report) else { return };
        let checksum = self.key_scratch.digests(key.as_bytes(), 0).checksum;
        rb.driver.fence_record(primitive, key, checksum, redundancy, fallback_owner);
    }

    /// Ledger and ingest `report` into collector `owner`'s pipeline.
    fn ingest_to(&mut self, owner: u32, now_ns: u64, report: DtaReport, origin: ReportOrigin) {
        self.ledger.record(LedgerEntry {
            collector: owner,
            qpn: 0,
            last_psn: 0,
            acked: true,
            report: report.clone(),
            origin,
        });
        self.pipelines[owner as usize].ingest_from(now_ns, report, origin);
    }

    /// Fail collector `c`: barrier its pipeline, then replay its window
    /// into the surviving pipelines.
    fn fail(&mut self, now_ns: u64, c: u32) {
        if !self.table.mark_dead(c) {
            self.failover.duplicate_events += 1;
            return;
        }
        self.failover.failovers += 1;
        self.failover.epoch = self.table.epoch();
        self.failover.cm_disconnects += 1;
        self.pipelines[c as usize].wait_idle();
        let mut window = std::mem::take(&mut self.replay_buf);
        self.ledger.drain_for(c, &mut window);
        for entry in window.drain(..) {
            self.failover.replayed += 1;
            if entry.acked {
                self.failover.replayed_acked += 1;
            }
            let (owner, primary) = self.route(&entry.report);
            debug_assert_ne!(owner, c, "table must not route to a dead collector");
            if owner != primary {
                self.record_fence(&entry.report, owner);
            }
            self.ledger.record(LedgerEntry { collector: owner, acked: true, ..entry.clone() });
            self.pipelines[owner as usize].ingest_from(now_ns, entry.report, entry.origin);
        }
        self.replay_buf = window;
    }

    /// Re-admit collector `c`: its pipeline never stopped, so rejoin is
    /// purely a routing change.
    fn rejoin(&mut self, c: u32) {
        if !self.table.mark_alive(c) {
            self.failover.duplicate_events += 1;
            return;
        }
        self.failover.rejoins += 1;
        self.failover.epoch = self.table.epoch();
        if let Some(rb) = self.rebalance.as_mut() {
            rb.driver.on_rejoin(c);
        }
    }

    /// Fence the routing table and start draining the stranded range.
    fn start_rebalance(&mut self, c: u32) {
        if self.rebalance.is_none() || !self.table.is_alive(c) {
            return; // no plan, or the victim never rejoined
        }
        let epoch = self.table.bump_epoch();
        self.failover.epoch = epoch;
        self.rebalance.as_mut().unwrap().driver.start_drain(epoch);
    }

    /// Drive the migration in-process: each emission faces the same
    /// expected-PSN responder discipline as a RoCE NIC (dup → silent
    /// drop, gap → NAK), then executes against the region clone.
    fn pump_rebalance(&mut self, now_ns: u64) {
        let ready = self.rebalance.as_ref().map(|rb| rb.driver.release_ready()).unwrap_or(false);
        if ready {
            let epoch = self.table.bump_epoch();
            self.failover.epoch = epoch;
            self.rebalance.as_mut().unwrap().driver.mark_released(epoch);
        }
        let Some(rb) = self.rebalance.as_mut() else { return };
        let mut emissions = std::mem::take(&mut rb.emission_buf);
        emissions.clear();
        rb.driver.pump(now_ns, &mut emissions);
        for e in emissions.drain(..) {
            let rb = self.rebalance.as_mut().unwrap();
            let expected = rb.expected_psn[e.link as usize];
            if e.psn < expected {
                continue; // duplicate: the responder PSN-drops it silently
            }
            if e.psn > expected {
                rb.driver.on_nak(e.link, expected);
                continue; // gap: NAK names the expected PSN
            }
            let collector = e.collector() as usize;
            let region = match e.primitive() {
                MigPrimitive::KeyWrite => rb.regions[collector].0.clone(),
                MigPrimitive::KeyIncrement => rb.regions[collector].1.clone(),
            };
            let Some(region) = region else { continue };
            // Barrier the target pipeline: in-process "RDMA" must observe
            // every ingested report, like a wire op behind FIFO delivery.
            self.pipelines[collector].wait_idle();
            let rb = self.rebalance.as_mut().unwrap();
            match e.kind {
                WireKind::Read => {
                    let data = region.peek(e.va, e.len as usize).expect("migration read in region");
                    rb.driver.on_read_response(e.link, e.psn, &data);
                }
                WireKind::WriteZero => {
                    region.write(e.va, &vec![0u8; e.len as usize]).expect("migration zero write");
                    rb.driver.on_ack(e.link, e.psn);
                }
                WireKind::FetchAdd => {
                    region.fetch_add(e.va, e.arg).expect("migration fetch-add");
                    rb.driver.on_ack(e.link, e.psn);
                }
            }
            rb.expected_psn[e.link as usize] = e.psn + 1;
        }
        self.rebalance.as_mut().unwrap().emission_buf = emissions;
        let mut replays = std::mem::take(&mut self.rebalance.as_mut().unwrap().replay_buf);
        replays.clear();
        self.rebalance.as_mut().unwrap().driver.take_replays(&mut replays);
        for (report, origin) in replays.drain(..) {
            let (owner, _) = self.route(&report);
            self.ingest_to(owner, now_ns, report, origin);
        }
        self.rebalance.as_mut().unwrap().replay_buf = replays;
    }

    /// Barrier, flush, and join every pipeline; close the ledger
    /// accounting. `None` once already finished.
    pub fn finish(&mut self) -> Option<FleetShardedRunReport> {
        if self.pipelines.is_empty() {
            return None;
        }
        let runs: Vec<ShardedRunReport> = std::mem::take(&mut self.pipelines)
            .into_iter()
            .map(|mut p| {
                p.wait_idle();
                p.flush_and_join()
            })
            .collect();
        self.failover.ledger_recorded = self.ledger.recorded;
        self.failover.ledger_evicted = self.ledger.evicted;
        self.failover.ledger_resident = self.ledger.resident();
        Some(FleetShardedRunReport {
            runs,
            failover: self.failover,
            rebalance: self.rebalance.as_mut().map(|rb| rb.driver.finish()),
            table: self.table.clone(),
        })
    }
}

impl NetNode for FleetShardedNode {
    fn receive(&mut self, now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        if self.pipelines.is_empty() {
            return; // finished: sink
        }
        let Ok(udp) = UdpPacket::decode(packet.payload.clone()) else {
            self.stats.malformed += 1;
            return;
        };
        match udp.udp.dst_port {
            DTA_UDP_PORT => {
                let Ok(report) = DtaReport::decode(udp.payload.clone()) else {
                    self.stats.malformed += 1;
                    return;
                };
                self.stats.dta_in += 1;
                let origin = ReportOrigin {
                    node: packet.src.0,
                    ip: udp.ip.src,
                    port: udp.udp.src_port,
                };
                let (owner, primary) = self.route(&report);
                if owner != primary {
                    self.failover.rerouted += 1;
                    self.record_fence(&report, owner);
                } else if self.rebalance.is_some() {
                    if let Some((primitive, key, _)) = migratable(&report) {
                        let checksum = self.key_scratch.digests(key.as_bytes(), 0).checksum;
                        let rb = self.rebalance.as_mut().unwrap();
                        if rb.driver.try_defer(primitive, checksum, &report, origin) {
                            return; // re-emerges via take_replays
                        }
                        if primitive == MigPrimitive::KeyWrite {
                            if let Some(fallback) = rb.driver.double_write_target(checksum) {
                                self.ingest_to(fallback, now.as_nanos(), report.clone(), origin);
                            }
                        }
                    }
                }
                // Execution is in-process and ordered behind this ingest;
                // the entry is born acked (see type docs).
                self.ingest_to(owner, now.as_nanos(), report, origin);
            }
            ROCE_UDP_PORT => {
                // Shard endpoints answer RDMA in-process; RoCE over the
                // network is a wiring error here.
                self.stats.malformed += 1;
            }
            _ => {
                self.stats.forwarded += 1;
                out.push(Emission::now(packet));
            }
        }
    }

    fn tick(&mut self, now: SimTime, _out: &mut Vec<Emission>) -> bool {
        if self.pipelines.is_empty() {
            return false;
        }
        let mut events = std::mem::take(&mut self.event_buf);
        self.admin.drain(&mut events);
        for event in events.drain(..) {
            match event {
                FleetEvent::Teardown { collector } => {
                    if self.table.is_alive(collector) {
                        self.failover.detected_teardown += 1;
                    }
                    self.fail(now.as_nanos(), collector);
                }
                FleetEvent::ForceFailover { collector } => {
                    if self.table.is_alive(collector) {
                        self.failover.spurious += 1;
                    }
                    self.fail(now.as_nanos(), collector);
                }
                FleetEvent::Rejoin { collector } => self.rejoin(collector),
                FleetEvent::Rebalance { collector } => self.start_rebalance(collector),
            }
        }
        self.event_buf = events;
        if self.rebalance.is_some() {
            self.pump_rebalance(now.as_nanos());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use dta_core::TelemetryKey;

    #[test]
    fn routing_table_owner_is_primary_while_alive() {
        let table = CollectorRoutingTable::new(5);
        let part = Partitioner::new(5);
        for csum in 0..10_000u32 {
            assert_eq!(table.owner_checksum(csum), part.route_checksum(csum));
            assert_eq!(table.primary_checksum(csum), part.route_checksum(csum));
        }
        assert_eq!(table.epoch(), 0);
    }

    #[test]
    fn dead_primary_reroutes_to_survivors_only_and_evenly() {
        let mut table = CollectorRoutingTable::new(4);
        assert!(table.mark_dead(2));
        assert!(!table.mark_dead(2), "second kill is a no-op");
        assert_eq!(table.epoch(), 1);
        assert_eq!(table.entry_epoch(2), 1);
        assert_eq!(table.entry_epoch(0), 0, "unaffected entries keep their stamp");

        let mut moved = [0u64; 4];
        for csum in 0..40_000u32 {
            let owner = table.owner_checksum(csum);
            assert!(table.is_alive(owner), "owner {owner} is dead");
            if table.primary_checksum(csum) == 2 {
                moved[owner as usize] += 1;
            } else {
                // Keys with a live primary must not move.
                assert_eq!(owner, table.primary_checksum(csum));
            }
        }
        assert_eq!(moved[2], 0);
        let total: u64 = moved.iter().sum();
        for (c, &m) in moved.iter().enumerate() {
            if c != 2 {
                assert!(
                    m > total / 6,
                    "survivor {c} took {m}/{total} of the dead range (want ~1/3)"
                );
            }
        }
    }

    #[test]
    fn rejoin_restores_primary_routing_and_bumps_epoch() {
        let mut table = CollectorRoutingTable::new(3);
        table.mark_dead(1);
        assert!(table.mark_alive(1));
        assert!(!table.mark_alive(1));
        assert_eq!(table.epoch(), 2);
        assert_eq!(table.entry_epoch(1), 2);
        let part = Partitioner::new(3);
        for csum in 0..10_000u32 {
            assert_eq!(table.owner_checksum(csum), part.route_checksum(csum));
        }
    }

    #[test]
    #[should_panic(expected = "last live collector")]
    fn killing_the_last_collector_panics() {
        let mut table = CollectorRoutingTable::new(2);
        table.mark_dead(0);
        table.mark_dead(1);
    }

    fn entry(collector: u32, qpn: u32, psn: u32) -> LedgerEntry {
        LedgerEntry {
            collector,
            qpn,
            last_psn: psn,
            acked: false,
            report: DtaReport::key_write(psn, TelemetryKey::from_u64(psn as u64), 1, vec![1; 4]),
            origin: ReportOrigin::default(),
        }
    }

    #[test]
    fn ledger_cumulative_ack_covers_prefix_only() {
        let mut ledger = ReplayLedger::new(2, 16);
        for psn in 0..6u32 {
            ledger.record(entry(0, 7, psn));
        }
        ledger.record(entry(1, 7, 100)); // other collector, same qpn: untouched
        ledger.mark_acked(0, 7, 3);
        let mut window = Vec::new();
        ledger.drain_for(0, &mut window);
        let acked: Vec<bool> = window.iter().map(|e| e.acked).collect();
        assert_eq!(acked, [true, true, true, true, false, false]);
        let mut other = Vec::new();
        ledger.drain_for(1, &mut other);
        assert!(!other[0].acked);
        assert_eq!(ledger.resident(), 0);
        assert_eq!(ledger.recorded, 7);
        assert_eq!(ledger.evicted, 0);
    }

    #[test]
    fn ledger_evicts_per_collector_fifo() {
        let mut ledger = ReplayLedger::new(2, 3);
        for psn in 0..5u32 {
            ledger.record(entry(0, 1, psn));
        }
        ledger.record(entry(1, 1, 9)); // other window unaffected by evictions
        assert_eq!(ledger.evicted, 2);
        assert_eq!(ledger.resident(), 4);
        let mut window = Vec::new();
        ledger.drain_for(0, &mut window);
        let psns: Vec<u32> = window.iter().map(|e| e.last_psn).collect();
        assert_eq!(psns, [2, 3, 4], "oldest entries evicted first");
        // Accounting identity: recorded == evicted + drained + resident.
        assert_eq!(ledger.recorded, ledger.evicted + window.len() as u64 + ledger.resident());
    }

    #[test]
    fn ledger_nak_drains_unacked_suffix_on_one_qp() {
        let mut ledger = ReplayLedger::new(1, 16);
        for psn in 0..8u32 {
            ledger.record(entry(0, 5, psn));
        }
        ledger.record(entry(0, 6, 2)); // other QP: untouched by the NAK
        ledger.mark_acked(0, 5, 3);
        // NAK with expected PSN 4: acked prefix 0..=3 stays, suffix 4..=7
        // drains for replay.
        let mut suffix = Vec::new();
        ledger.drain_nak(0, 5, 4, &mut suffix);
        let psns: Vec<u32> = suffix.iter().map(|e| e.last_psn).collect();
        assert_eq!(psns, [4, 5, 6, 7]);
        assert_eq!(ledger.resident(), 5);
    }

    #[test]
    fn failover_stats_ledger_identity() {
        let stats = FailoverStats {
            ledger_recorded: 10,
            ledger_evicted: 2,
            replayed: 3,
            nak_replayed: 1,
            ledger_resident: 4,
            ..FailoverStats::default()
        };
        assert!(stats.ledger_closes());
        assert!(!FailoverStats { ledger_resident: 3, ..stats }.ledger_closes());
    }

    #[test]
    fn admin_queue_is_fifo_and_shared() {
        let admin = FleetAdmin::new();
        let clone = admin.clone();
        clone.signal(FleetEvent::Teardown { collector: 1 });
        admin.signal(FleetEvent::Rejoin { collector: 1 });
        let mut events = Vec::new();
        admin.drain(&mut events);
        assert_eq!(
            events,
            [FleetEvent::Teardown { collector: 1 }, FleetEvent::Rejoin { collector: 1 }]
        );
        events.clear();
        admin.drain(&mut events);
        assert!(events.is_empty());
    }
}

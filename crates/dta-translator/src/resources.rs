//! Translator hardware resource accounting (Table 3).
//!
//! The paper reports the translator pipeline's Tofino footprint and the
//! incremental cost of Append batching:
//!
//! | resource     | base   | +batching (16×4B) |
//! |--------------|--------|-------------------|
//! | SRAM         | 13.2%  | +3.2%             |
//! | Match XBar   | 10.6%  | +7.2%             |
//! | Table IDs    | 49.0%  | +7.8%             |
//! | Ternary Bus  | 30.7%  | +7.8%             |
//! | Stateful ALU | 25.0%  | +31.3%            |
//!
//! The base figures are decomposed here into per-feature contributions so
//! that "application-dependent operators might reduce their hardware costs
//! by enabling fewer primitives" (§6.4) is expressible, while the enabled-
//! everything total reproduces Table 3 exactly.

use dta_switch::ResourceVector;

/// Which translator features are compiled into the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslatorFeatures {
    /// Key-Write (and its RDMA WRITE crafting path).
    pub key_write: bool,
    /// Postcarding (SRAM cache + chunk writes).
    pub postcarding: bool,
    /// Append (per-list heads; batching configured separately).
    pub append: bool,
    /// Key-Increment (FETCH_ADD crafting).
    pub key_increment: bool,
    /// Append batch size (1 = no batching; Table 3's delta is for 16).
    pub append_batch: u32,
}

impl TranslatorFeatures {
    /// The evaluated configuration: Key-Write + Postcarding + Append with
    /// 16×4B batching (Table 3's rows).
    pub fn paper_eval() -> Self {
        TranslatorFeatures {
            key_write: true,
            postcarding: true,
            append: true,
            key_increment: false,
            append_batch: 16,
        }
    }
}

/// Shared RDMA machinery: RoCEv2 crafting, QP metadata tables, PSN
/// registers, rate limiter ("The RDMA logic is shared by all primitives").
fn rdma_shared() -> ResourceVector {
    ResourceVector {
        sram: 4.0,
        match_xbar: 4.0,
        table_ids: 17.0,
        hash_dist: 6.0,
        ternary_bus: 10.0,
        stateful_alu: 6.3,
    }
}

/// Key-Write path: CRC indexing, checksum concatenation, multicast
/// redundancy.
fn key_write_path() -> ResourceVector {
    ResourceVector {
        sram: 2.0,
        match_xbar: 2.4,
        table_ids: 12.0,
        hash_dist: 5.0,
        ternary_bus: 8.0,
        stateful_alu: 2.0,
    }
}

/// Postcarding path: the 32K-row cache dominates SRAM and needs per-row
/// counters (stateful ALU).
fn postcarding_path() -> ResourceVector {
    ResourceVector {
        sram: 5.2,
        match_xbar: 2.6,
        table_ids: 12.0,
        hash_dist: 5.0,
        ternary_bus: 7.0,
        stateful_alu: 10.4,
    }
}

/// Append path without batching: per-list head pointers.
fn append_path() -> ResourceVector {
    ResourceVector {
        sram: 2.0,
        match_xbar: 1.6,
        table_ids: 8.0,
        hash_dist: 2.0,
        ternary_bus: 5.7,
        stateful_alu: 6.3,
    }
}

/// Key-Increment path (not part of Table 3's evaluated build).
fn key_increment_path() -> ResourceVector {
    ResourceVector {
        sram: 1.2,
        match_xbar: 1.8,
        table_ids: 6.0,
        hash_dist: 4.0,
        ternary_bus: 4.0,
        stateful_alu: 2.0,
    }
}

/// Incremental batching cost for batch size 16 (Table 3's "+batching" row).
/// The paper: batch size "linearly correlate[s] with the number of
/// additional stateful ALU calls", so costs scale with `(batch - 1) / 15`.
fn batching_delta(batch: u32) -> ResourceVector {
    if batch <= 1 {
        return ResourceVector::ZERO;
    }
    let full = ResourceVector {
        sram: 3.2,
        match_xbar: 7.2,
        table_ids: 7.8,
        hash_dist: 0.0,
        ternary_bus: 7.8,
        stateful_alu: 31.3,
    };
    full.scale((batch - 1) as f64 / 15.0)
}

/// Total translator footprint for a feature set.
pub fn translator_footprint(features: TranslatorFeatures) -> ResourceVector {
    let mut v = rdma_shared();
    if features.key_write {
        v += key_write_path();
    }
    if features.postcarding {
        v += postcarding_path();
    }
    if features.append {
        v += append_path();
        v += batching_delta(features.append_batch);
    }
    if features.key_increment {
        v += key_increment_path();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eval_base_matches_table3() {
        let mut f = TranslatorFeatures::paper_eval();
        f.append_batch = 1; // base row excludes batching
        let v = translator_footprint(f);
        assert!((v.sram - 13.2).abs() < 1e-9, "SRAM {}", v.sram);
        assert!((v.match_xbar - 10.6).abs() < 1e-9, "XBar {}", v.match_xbar);
        assert!((v.table_ids - 49.0).abs() < 1e-9, "TableIDs {}", v.table_ids);
        assert!((v.ternary_bus - 30.7).abs() < 1e-9, "Ternary {}", v.ternary_bus);
        assert!((v.stateful_alu - 25.0).abs() < 1e-9, "ALU {}", v.stateful_alu);
    }

    #[test]
    fn paper_eval_with_batching_matches_table3_total() {
        let v = translator_footprint(TranslatorFeatures::paper_eval());
        assert!((v.sram - (13.2 + 3.2)).abs() < 1e-9);
        assert!((v.match_xbar - (10.6 + 7.2)).abs() < 1e-9);
        assert!((v.table_ids - (49.0 + 7.8)).abs() < 1e-9);
        assert!((v.ternary_bus - (30.7 + 7.8)).abs() < 1e-9);
        assert!((v.stateful_alu - (25.0 + 31.3)).abs() < 1e-9);
        // "fits in first-generation programmable switches, while leaving a
        // majority of resources freed up" — largest class must stay < 60%.
        assert!(v.fits());
        assert!(v.bottleneck().1 < 60.0);
    }

    #[test]
    fn fewer_primitives_cost_less() {
        let full = translator_footprint(TranslatorFeatures::paper_eval());
        let kw_only = translator_footprint(TranslatorFeatures {
            key_write: true,
            postcarding: false,
            append: false,
            key_increment: false,
            append_batch: 1,
        });
        assert!(kw_only.sram < full.sram);
        assert!(kw_only.stateful_alu < full.stateful_alu);
    }

    #[test]
    fn batching_cost_scales_linearly() {
        let base = TranslatorFeatures { append_batch: 1, ..TranslatorFeatures::paper_eval() };
        let b8 = TranslatorFeatures { append_batch: 8, ..TranslatorFeatures::paper_eval() };
        let b16 = TranslatorFeatures { append_batch: 16, ..TranslatorFeatures::paper_eval() };
        let alu_base = translator_footprint(base).stateful_alu;
        let alu8 = translator_footprint(b8).stateful_alu;
        let alu16 = translator_footprint(b16).stateful_alu;
        let d8 = alu8 - alu_base;
        let d16 = alu16 - alu_base;
        assert!((d16 / d8 - 15.0 / 7.0).abs() < 1e-9, "linear in batch-1");
    }
}

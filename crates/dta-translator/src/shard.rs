//! The sharded multi-threaded translator runtime.
//!
//! The paper's translator reaches 100M+ reports/s because the Tofino
//! processes reports across parallel hardware pipes; this module is the
//! software equivalent. A [`ShardedTranslator`] key-partitions incoming
//! reports across `N` worker shards:
//!
//! * **dispatch** — the ingest thread routes each report with the
//!   [`Partitioner`], reusing a scratch-cached `checksum32` so routing a
//!   repeat key costs one 16-byte compare, no CRC pass
//!   ([`Partitioner::route_cached`]);
//! * **queues** — one bounded SPSC ring per shard ([`crate::spsc`]);
//!   backpressure is a failed push, answered by yielding, so memory stays
//!   bounded at `shards × queue_depth` reports;
//! * **shards** — each worker owns a full [`Translator`] (its own
//!   [`KeyScratch`] digest cache, image pool, postcard cache, append
//!   batcher) and a private NIC endpoint with dedicated QPs
//!   (`CollectorService::shard_nic` / `handle_cm_shard`), draining its ring
//!   in batches through [`Translator::process_batch`] and issuing the RDMA
//!   writes concurrently into the collector's lock-striped memory.
//!
//! Because all reports for a key hash to one shard and each shard is a
//! FIFO, **per-key write order is preserved** — the property the Key-Write
//! query path depends on — while different keys' writes proceed in
//! parallel. Appends partition by list id the same way, so per-list batch
//! layout is identical to the single-threaded translator's; Key-Increment
//! is commutative and needs no ordering at all.
//!
//! [`KeyScratch`]: dta_hash::scratch::KeyScratch

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dta_collector::service::{
    CollectorService, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta_core::DtaReport;
use dta_hash::scratch::KeyScratch;
use dta_hash::ScratchStats;
use dta_rdma::cm::CmRequester;
use dta_rdma::nic::{NicStats, RdmaNic};

use crate::partition::Partitioner;
use crate::spsc;
use crate::translator::{Translator, TranslatorConfig, TranslatorOutput, TranslatorStats};

/// Sizing knobs of the sharded runtime.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Worker shard count.
    pub shards: usize,
    /// Per-shard SPSC ring capacity (rounded up to a power of two). Deep
    /// enough that a descheduled worker drains big batches when it wakes;
    /// small enough that total queued memory stays bounded.
    pub queue_depth: usize,
    /// Maximum reports a worker drains per wakeup (the
    /// [`Translator::process_batch`] batch).
    pub drain_batch: usize,
    /// Dispatch-side checksum scratch entries (ingest-thread owned,
    /// independent of the per-shard digest scratches).
    pub dispatch_scratch_entries: usize,
    /// Per-shard translator configuration.
    pub translator: TranslatorConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            queue_depth: 4096,
            drain_batch: 256,
            dispatch_scratch_entries: 16 * 1024,
            translator: TranslatorConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// Default sizing at `shards` workers.
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig { shards, ..ShardedConfig::default() }
    }
}

/// State shared between the ingest thread and the workers.
#[derive(Debug)]
struct Shared {
    /// Set once, after the last ingest; workers drain and exit.
    stop: AtomicBool,
    /// Timestamp the ingest thread last announced. Feeds the shutdown
    /// flush; rate limiting instead reads each report's own ingest
    /// timestamp (see [`ShardItem::now_ns`]) so admission decisions are a
    /// pure function of the delivered stream, not of worker scheduling.
    now_ns: AtomicU64,
}

/// Where a report came from — everything the translator needs to address a
/// NACK back to its reporter. Plain integers (not `dta-net` types) so the
/// pipeline stays usable without a simulated network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportOrigin {
    /// Network node id of the reporter host.
    pub node: u32,
    /// Source IP of the report datagram.
    pub ip: u32,
    /// Source UDP port of the report datagram.
    pub port: u16,
}

/// One queued report: the report, its ingest timestamp, and its return
/// address.
struct ShardItem {
    now_ns: u64,
    report: DtaReport,
    origin: ReportOrigin,
}

/// A rate-limited report whose `nack_on_drop` flag requests a reporter
/// NACK: recorded by the shard worker, drained and emitted by the owning
/// node on the engine thread (workers have no network handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NackRecord {
    /// The dropped report's sequence number.
    pub seq: u32,
    /// Its return address.
    pub origin: ReportOrigin,
}

/// Ingest-side handle to one shard.
#[derive(Debug)]
struct Lane {
    /// Report producer; taken (dropped) at shutdown while the NACK
    /// consumer below stays alive for a final post-join drain.
    tx: Option<spsc::Producer<ShardItem>>,
    /// Rate-limited seqs flowing back from the worker (engine-thread side).
    nack_rx: spsc::Consumer<NackRecord>,
    /// Reports pushed (ingest thread private).
    enqueued: u64,
    /// Reports fully processed by the worker (written by the worker).
    processed: Arc<AtomicU64>,
    /// Times the ingest thread yielded on a full ring.
    backpressure_yields: u64,
}

/// Final counters of one shard worker.
#[derive(Debug, Clone)]
pub struct ShardRunReport {
    /// Shard index.
    pub shard: usize,
    /// Translator counters.
    pub translator: TranslatorStats,
    /// NIC endpoint counters (executed verbs, NAKs, ...).
    pub nic: NicStats,
    /// Key-digest scratch hit/miss counters.
    pub scratch: ScratchStats,
    /// Image pool `(recycled, allocated)`.
    pub image_pool: (u64, u64),
}

/// Aggregated outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedRunReport {
    /// Per-shard detail.
    pub shards: Vec<ShardRunReport>,
    /// Merged translator counters.
    pub translator: TranslatorStats,
    /// Total verbs executed across shard NIC endpoints.
    pub executed: u64,
    /// Total ingest-side yields on full rings.
    pub backpressure_yields: u64,
    /// NACK records still undelivered at shutdown (recorded by workers but
    /// never drained via [`ShardedTranslator::take_nacks`]). Zero in any
    /// correctly sized scenario: the owning node drains on every tick.
    pub nacks_pending: u64,
}

/// The sharded translator pipeline (ingest handle).
///
/// Owned by the ingest thread. `ingest`/`ingest_batch` route and enqueue;
/// `wait_idle` barriers until every queued report has been executed;
/// `flush_and_join` drains translator-held state (postcard rows, partial
/// append batches) and returns the aggregated counters. Dropping the handle
/// without flushing still stops and joins the workers.
#[derive(Debug)]
pub struct ShardedTranslator {
    partitioner: Partitioner,
    scratch: KeyScratch,
    lanes: Vec<Lane>,
    workers: Vec<JoinHandle<ShardRunReport>>,
    shared: Arc<Shared>,
    /// NACK records drained off the worker rings but not yet taken by the
    /// caller (the rings are drained opportunistically inside `wait_idle`
    /// so a blocked worker can always make progress).
    pending_nacks: Vec<NackRecord>,
}

impl ShardedTranslator {
    /// Build the pipeline against `collector`: per shard, a fresh
    /// [`Translator`], a private NIC endpoint sharing the collector's
    /// striped regions, and a dedicated QP per enabled service.
    pub fn connect(config: ShardedConfig, collector: &mut CollectorService) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            now_ns: AtomicU64::new(0),
        });
        let mut lanes = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            // Each shard runs an independent limiter; divide a configured
            // RDMA rate budget exactly across them (rate evenly, burst with
            // its remainder spread over the first shards) so the *aggregate*
            // toward the collector equals the configured ceiling instead of
            // silently becoming `shards ×` it. A burst smaller than the
            // shard count leaves some shards with a zero bucket — they
            // admit nothing, which is the only split that keeps the
            // aggregate exact for such degenerate configs.
            let mut shard_translator = config.translator.clone();
            if let Some(limit) = &mut shard_translator.rate_limit {
                let shards = config.shards as u64;
                limit.msgs_per_sec /= config.shards as f64;
                limit.burst = limit.burst / shards
                    + u64::from((shard as u64) < limit.burst % shards);
            }
            let mut nic = collector.shard_nic();
            let mut tr = Translator::new(shard_translator);
            for service in [SERVICE_KW, SERVICE_POSTCARD, SERVICE_APPEND, SERVICE_CMS] {
                // One requester QPN per (shard, service); the collector
                // mints a dedicated responder QPN (own PSN domain).
                let req = CmRequester::new(0x4000 + (shard as u32) * 8 + service as u32, 0);
                let reply = collector.handle_cm_shard(&req.request(service), &mut nic);
                let Ok((qp, params)) = req.complete(&reply) else {
                    continue; // service disabled at the collector
                };
                match service {
                    SERVICE_KW => tr.connect_key_write(qp, params),
                    SERVICE_POSTCARD => tr.connect_postcarding(qp, params),
                    SERVICE_APPEND => tr.connect_append(qp, params),
                    SERVICE_CMS => tr.connect_key_increment(qp, params),
                    _ => unreachable!(),
                }
            }
            let (tx, rx) = spsc::channel::<ShardItem>(config.queue_depth);
            let (nack_tx, nack_rx) = spsc::channel::<NackRecord>(config.queue_depth);
            let processed = Arc::new(AtomicU64::new(0));
            lanes.push(Lane {
                tx: Some(tx),
                nack_rx,
                enqueued: 0,
                processed: processed.clone(),
                backpressure_yields: 0,
            });
            let shared = shared.clone();
            let drain = config.drain_batch.max(1);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dta-shard-{shard}"))
                    .spawn(move || {
                        worker_loop(shard, rx, tr, nic, nack_tx, processed, shared, drain)
                    })
                    .expect("spawn shard worker"),
            );
        }
        ShardedTranslator {
            // Shard-level routing is domain-separated from collector-level
            // routing, so a multi-collector deployment that partitions
            // upstream still spreads each collector's band over all shards.
            partitioner: Partitioner::for_shards(config.shards as u32),
            scratch: KeyScratch::new(config.dispatch_scratch_entries, 1),
            lanes,
            workers,
            shared,
            pending_nacks: Vec::new(),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Route one report to its shard and enqueue it at simulated time
    /// `now_ns`, yielding while that shard's ring is full (bounded-memory
    /// backpressure). The timestamp rides with the report: shard-side rate
    /// limiters admit each report at its ingest time, whenever the worker
    /// actually drains it.
    pub fn ingest(&mut self, now_ns: u64, report: DtaReport) {
        self.ingest_from(now_ns, report, ReportOrigin::default());
    }

    /// [`ShardedTranslator::ingest`] carrying the report's return address,
    /// so a rate-limited `nack_on_drop` report can be NACKed back to its
    /// reporter (records surface via [`ShardedTranslator::take_nacks`]).
    pub fn ingest_from(&mut self, now_ns: u64, report: DtaReport, origin: ReportOrigin) {
        self.shared.now_ns.store(now_ns, Ordering::Relaxed);
        self.dispatch(ShardItem { now_ns, report, origin });
    }

    /// Route and enqueue (the per-report body of every ingest entry point).
    fn dispatch(&mut self, item: ShardItem) {
        let shard = self.partitioner.route_cached(&mut self.scratch, &item.report) as usize;
        let mut item = item;
        let mut spins = 0u32;
        loop {
            let lane = &mut self.lanes[shard];
            match lane.tx.as_mut().expect("dispatch after shutdown").push(item) {
                Ok(()) => break,
                Err(back) => {
                    // A worker exits before shutdown only by panicking;
                    // spinning on its full ring would livelock forever.
                    assert!(
                        !self.workers[shard].is_finished(),
                        "shard {shard} worker died with its queue full; reports cannot drain"
                    );
                    item = back;
                    spins += 1;
                    if spins > 16 {
                        lane.backpressure_yields += 1;
                        // Same rule as every other engine-side blocking
                        // loop: keep the NACK return rings draining, or a
                        // worker blocked pushing a record and this thread
                        // blocked pushing a report deadlock each other.
                        self.drain_nack_rings();
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
        self.lanes[shard].enqueued += 1;
    }

    /// Announce `now_ns` to the shards and ingest a batch of reports, all
    /// stamped with that one timestamp.
    pub fn ingest_batch(&mut self, now_ns: u64, reports: impl IntoIterator<Item = DtaReport>) {
        self.shared.now_ns.store(now_ns, Ordering::Relaxed);
        for report in reports {
            self.dispatch(ShardItem { now_ns, report, origin: ReportOrigin::default() });
        }
    }

    /// Pop every queued NACK record off the worker rings into
    /// `pending_nacks` (shard order, FIFO within a shard — deterministic
    /// once the workers are idle). Records stay parked until
    /// [`ShardedTranslator::take_nacks`]; every engine-side loop that can
    /// block on a worker calls this so a worker blocked pushing a record
    /// always makes progress.
    pub(crate) fn drain_nack_rings(&mut self) {
        for lane in &mut self.lanes {
            while let Some(rec) = lane.nack_rx.pop() {
                self.pending_nacks.push(rec);
            }
        }
    }

    /// Take every NACK recorded so far, in ascending seq order. Call after
    /// a barrier ([`ShardedTranslator::wait_idle`]) to get a deterministic
    /// *set*: all rate-limited `nack_on_drop` reports ingested before the
    /// barrier. The seq sort makes the *order* deterministic too — the
    /// barrier's opportunistic ring drains interleave shards by thread
    /// timing, so raw arrival order is not reproducible (identical-seq
    /// duplicates are identical records, so their relative order is moot).
    pub fn take_nacks(&mut self, out: &mut Vec<NackRecord>) {
        self.drain_nack_rings();
        self.pending_nacks.sort_by_key(|r| r.seq);
        out.append(&mut self.pending_nacks);
    }

    /// Block until every report ingested so far has been translated and
    /// executed (queues empty, workers idle). The barrier benchmarks use to
    /// close a measurement window. Drains the NACK return rings while
    /// waiting — a worker blocked on a full NACK ring must be able to make
    /// progress, or this barrier would deadlock.
    pub fn wait_idle(&mut self) {
        for shard in 0..self.lanes.len() {
            loop {
                let lane = &self.lanes[shard];
                if lane.processed.load(Ordering::Acquire) >= lane.enqueued {
                    break;
                }
                assert!(
                    !self.workers[shard].is_finished(),
                    "shard {shard} worker died with reports still queued"
                );
                self.drain_nack_rings();
                std::thread::yield_now();
            }
        }
    }

    /// Stop the workers, flush translator-held state (postcard cache rows,
    /// partial append batches) through each shard's NIC endpoint, and
    /// return the aggregated counters.
    pub fn flush_and_join(mut self) -> ShardedRunReport {
        let backpressure_yields = self.lanes.iter().map(|l| l.backpressure_yields).sum();
        self.shutdown();
        let handles = std::mem::take(&mut self.workers);
        let mut shards: Vec<ShardRunReport> = Vec::with_capacity(handles.len());
        for h in handles {
            // Keep the NACK rings draining while waiting: a worker blocked
            // pushing a record must be able to finish, or this join hangs.
            while !h.is_finished() {
                self.drain_nack_rings();
                std::thread::yield_now();
            }
            shards.push(h.join().expect("shard worker panicked"));
        }
        shards.sort_by_key(|s| s.shard);
        let mut translator = TranslatorStats::default();
        let mut executed = 0;
        for s in &shards {
            translator.merge(&s.translator);
            executed += s.nic.executed;
        }
        // Anything left on the NACK rings (or parked in `pending_nacks`)
        // can never be emitted now: surface the count instead of silently
        // dropping the records.
        self.drain_nack_rings();
        let nacks_pending = self.pending_nacks.len() as u64;
        ShardedRunReport {
            shards,
            translator,
            executed,
            backpressure_yields,
            nacks_pending,
        }
    }

    /// Signal stop and drop the report producers so workers drain and
    /// exit. NACK consumers stay alive: `flush_and_join` reads the rings
    /// one last time after the workers are gone.
    fn shutdown(&mut self) {
        // Producers must drop before (or with) the stop signal so a worker
        // that observes `stop` and then sees an empty ring can trust it;
        // dropping the whole lane would also drop its NACK consumer, so
        // only the report producers are taken here.
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        self.shared.stop.store(true, Ordering::Release);
    }
}

impl Drop for ShardedTranslator {
    fn drop(&mut self) {
        // `flush_and_join` already took the workers; otherwise stop and
        // join here so no thread outlives the handle.
        if !self.workers.is_empty() {
            self.shutdown();
            for h in std::mem::take(&mut self.workers) {
                while !h.is_finished() {
                    self.drain_nack_rings(); // unblock workers mid-push
                    std::thread::yield_now();
                }
                let _ = h.join();
            }
        }
    }
}

/// One shard's event loop: drain the ring in batches, translate (each
/// report at its own ingest timestamp), execute at the shard NIC endpoint,
/// feed NAKs back, record rate-limited `nack_on_drop` seqs onto the NACK
/// return ring, and flush on shutdown.
#[allow(clippy::too_many_arguments)] // thread entry: each arg is one owned channel/handle
fn worker_loop(
    shard: usize,
    mut rx: spsc::Consumer<ShardItem>,
    mut tr: Translator,
    mut nic: RdmaNic,
    mut nack_tx: spsc::Producer<NackRecord>,
    processed: Arc<AtomicU64>,
    shared: Arc<Shared>,
    drain_batch: usize,
) -> ShardRunReport {
    let mut batch: Vec<ShardItem> = Vec::with_capacity(drain_batch);
    let mut out = TranslatorOutput::default();
    let mut responses = Vec::new();
    let mut stopping = false;
    let mut idle = 0u32;
    loop {
        batch.clear();
        let n = rx.pop_batch(&mut batch, drain_batch);
        if n == 0 {
            if stopping {
                // This pop started after `stop` was observed, and the
                // producer handle is gone: the ring is drained for good.
                break;
            }
            if shared.stop.load(Ordering::Acquire) {
                stopping = true; // re-pop once more after observing stop
                continue;
            }
            idle += 1;
            if idle < 64 {
                std::hint::spin_loop();
            } else {
                // Crucial on machines with fewer cores than shards: an
                // empty-ring worker must surrender the CPU to whoever is
                // producing.
                std::thread::yield_now();
            }
            continue;
        }
        idle = 0;
        out.clear();
        for item in &batch {
            // Per-item timestamps: admission (rate limiting) must see the
            // report's arrival time, not the time this worker happened to
            // drain it, or the decision would depend on thread scheduling.
            tr.process_into(item.now_ns, &item.report, &mut out);
        }
        responses.clear();
        nic.ingress_burst(&out.packets, &mut responses);
        for r in &responses {
            if r.is_nak() {
                tr.on_roce_response(r);
            }
        }
        // Hand rate-limited seqs back to the engine thread with their
        // return addresses (looked up in the batch just processed).
        for &seq in &out.nacked {
            let origin = batch
                .iter()
                .find(|it| it.report.header.seq == seq)
                .map(|it| it.origin)
                .unwrap_or_default();
            let mut rec = NackRecord { seq, origin };
            loop {
                match nack_tx.push(rec) {
                    Ok(()) => break,
                    Err(back) => {
                        // The engine drains this ring on node ticks and
                        // inside `wait_idle`; yield until there is room.
                        rec = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        processed.fetch_add(n as u64, Ordering::Release);
    }
    // Shutdown flush: postcard rows and partial append batches.
    let now = shared.now_ns.load(Ordering::Relaxed);
    let flushed = tr.flush(now);
    responses.clear();
    nic.ingress_burst(&flushed.packets, &mut responses);
    ShardRunReport {
        shard,
        scratch: tr.key_scratch_stats(),
        image_pool: tr.image_pool_stats(),
        translator: tr.stats,
        nic: nic.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_collector::service::ServiceConfig;
    use dta_collector::QueryPolicy;
    use dta_core::TelemetryKey;

    fn sharded(shards: usize) -> (CollectorService, ShardedTranslator) {
        let mut col = CollectorService::new(ServiceConfig::default());
        let st = ShardedTranslator::connect(ShardedConfig::with_shards(shards), &mut col);
        (col, st)
    }

    #[test]
    fn keywrites_land_and_query_across_shards() {
        let (col, mut st) = sharded(4);
        let reports: Vec<DtaReport> = (0..512u64)
            .map(|i| {
                DtaReport::key_write(0, TelemetryKey::from_u64(i), 2, (i as u32).to_be_bytes().to_vec())
            })
            .collect();
        st.ingest_batch(0, reports);
        st.wait_idle();
        let report = st.flush_and_join();
        assert_eq!(report.translator.reports_in, 512);
        assert_eq!(report.executed, 1024, "N=2 -> 2 verbs per report");
        let kw = col.keywrite.as_ref().unwrap();
        for i in 0..512u64 {
            let got = kw.query(&TelemetryKey::from_u64(i), 2, QueryPolicy::Plurality);
            assert_eq!(
                got,
                dta_collector::QueryOutcome::Found((i as u32).to_be_bytes().to_vec()),
                "key {i}"
            );
        }
    }

    #[test]
    fn per_key_order_is_preserved_under_sharding() {
        // Interleaved rewrites of the same keys: the LAST value ingested for
        // each key must win, which only holds if all reports for a key stay
        // on one shard and the shard is a FIFO.
        let (col, mut st) = sharded(4);
        for round in 0..50u32 {
            let reports = (0..64u64).map(move |k| {
                DtaReport::key_write(0, TelemetryKey::from_u64(k), 2, round.to_be_bytes().to_vec())
            });
            st.ingest_batch(0, reports);
        }
        st.wait_idle();
        st.flush_and_join();
        let kw = col.keywrite.as_ref().unwrap();
        for k in 0..64u64 {
            assert_eq!(
                kw.query(&TelemetryKey::from_u64(k), 2, QueryPolicy::Plurality),
                dta_collector::QueryOutcome::Found(49u32.to_be_bytes().to_vec()),
                "stale value surfaced for key {k}"
            );
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let (_col, mut st) = sharded(4);
        let reports: Vec<DtaReport> = (0..4000u64)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![1; 4]))
            .collect();
        st.ingest_batch(0, reports);
        st.wait_idle();
        let report = st.flush_and_join();
        for s in &report.shards {
            assert!(
                (600..=1400).contains(&(s.translator.reports_in as usize)),
                "shard {} took {} of 4000 reports",
                s.shard,
                s.translator.reports_in
            );
        }
    }

    #[test]
    fn tiny_queues_backpressure_without_loss() {
        let mut col = CollectorService::new(ServiceConfig::default());
        let mut st = ShardedTranslator::connect(
            ShardedConfig { shards: 2, queue_depth: 2, drain_batch: 1, ..ShardedConfig::default() },
            &mut col,
        );
        let reports: Vec<DtaReport> = (0..2000u64)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i % 16), 1, vec![7; 4]))
            .collect();
        st.ingest_batch(0, reports);
        st.wait_idle();
        let report = st.flush_and_join();
        assert_eq!(report.translator.reports_in, 2000, "reports lost under backpressure");
    }

    #[test]
    fn flush_emits_partial_postcards_and_append_batches() {
        let (col, mut st) = sharded(2);
        // 3 of 5 hops for one flow + 1 staged append entry: both must be
        // emitted by the shutdown flush.
        let key = TelemetryKey::from_u64(9);
        let reports: Vec<DtaReport> = (0..3u8)
            .map(|hop| DtaReport::postcard(0, key, hop, 5, 42))
            .chain([DtaReport::append(0, 1, vec![5; 4])])
            .collect();
        st.ingest_batch(0, reports);
        st.wait_idle();
        let report = st.flush_and_join();
        assert!(report.executed >= 2, "flush writes not issued");
        let store = col.postcarding.as_ref().unwrap();
        // The early chunk is present (first 3 hops recorded).
        match store.query(&key, 1) {
            dta_collector::PostcardQueryOutcome::Found(path) => {
                assert_eq!(&path[..3], &[42, 42, 42]);
            }
            other => panic!("flushed postcard chunk missing: {other:?}"),
        }
    }

    #[test]
    fn rate_limit_budget_is_aggregate_not_per_shard() {
        use crate::ratelimit::RateLimiterConfig;
        // A configured burst must bound the WHOLE pipeline, not repeat per
        // shard — including bursts the shard count does not divide (the
        // remainder spreads over the first shards) and bursts smaller than
        // the shard count. Time stays at 0, so no tokens refill: exactly
        // `burst` messages may be admitted across all shards combined.
        for burst in [8u64, 10, 2] {
            let mut col = CollectorService::new(ServiceConfig::default());
            let mut st = ShardedTranslator::connect(
                ShardedConfig {
                    shards: 4,
                    translator: TranslatorConfig {
                        rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst }),
                        ..TranslatorConfig::default()
                    },
                    ..ShardedConfig::default()
                },
                &mut col,
            );
            // N=1 key writes: one RDMA message each, keys spread over shards.
            st.ingest_batch(
                0,
                (0..400u64)
                    .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![1; 4])),
            );
            st.wait_idle();
            let report = st.flush_and_join();
            assert_eq!(
                report.executed, burst,
                "aggregate admitted messages != configured burst {burst}"
            );
            assert_eq!(report.translator.rate_limited, 400 - burst);
        }
    }

    #[test]
    fn rate_limited_nack_reports_surface_with_their_origins() {
        use crate::ratelimit::RateLimiterConfig;
        use dta_core::DtaFlags;
        // 1 shard, burst 2, frozen clock: reports 2.. are rate-limited and
        // (with the nack flag) must surface as NackRecords carrying the
        // return address they were ingested with, in FIFO order.
        let mut col = CollectorService::new(ServiceConfig::default());
        let mut st = ShardedTranslator::connect(
            ShardedConfig {
                shards: 1,
                translator: TranslatorConfig {
                    rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst: 2 }),
                    ..TranslatorConfig::default()
                },
                ..ShardedConfig::default()
            },
            &mut col,
        );
        let flags = DtaFlags { immediate: false, nack_on_drop: true };
        for i in 0..6u32 {
            let report = DtaReport::key_write(i, TelemetryKey::from_u64(i as u64), 1, vec![1; 4])
                .with_flags(flags);
            let origin = ReportOrigin { node: 100 + i, ip: 0x0A00_0000 + i, port: 5000 };
            st.ingest_from(0, report, origin);
        }
        st.wait_idle();
        let mut nacks = Vec::new();
        st.take_nacks(&mut nacks);
        assert_eq!(
            nacks,
            (2..6u32)
                .map(|i| NackRecord {
                    seq: i,
                    origin: ReportOrigin { node: 100 + i, ip: 0x0A00_0000 + i, port: 5000 },
                })
                .collect::<Vec<_>>(),
            "burst 2 admits the first two; the rest NACK in ingest order"
        );
        let report = st.flush_and_join();
        assert_eq!(report.translator.rate_limited, 4);
        assert_eq!(report.translator.nacks_sent, 4);
        assert_eq!(report.nacks_pending, 0, "all records were taken before shutdown");
    }

    /// Regression: tiny rings + every report rate-limited-with-nack. The
    /// worker blocks pushing NackRecords once its return ring (capacity =
    /// queue_depth) fills and stops draining reports; the ingest loop
    /// must drain the return rings while backpressured, or the two block
    /// each other forever. Without the dispatch-side drain this test
    /// hangs rather than fails.
    #[test]
    fn dispatch_backpressure_drains_nack_rings_instead_of_deadlocking() {
        use crate::ratelimit::RateLimiterConfig;
        use dta_core::DtaFlags;
        let mut col = CollectorService::new(ServiceConfig::default());
        let mut st = ShardedTranslator::connect(
            ShardedConfig {
                shards: 1,
                queue_depth: 4,
                drain_batch: 2,
                translator: TranslatorConfig {
                    rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst: 0 }),
                    ..TranslatorConfig::default()
                },
                ..ShardedConfig::default()
            },
            &mut col,
        );
        let flags = DtaFlags { immediate: false, nack_on_drop: true };
        for i in 0..500u32 {
            let report = DtaReport::key_write(i, TelemetryKey::from_u64(i as u64), 1, vec![1; 4])
                .with_flags(flags);
            st.ingest_from(0, report, ReportOrigin { node: 1, ip: 2, port: 3 });
        }
        st.wait_idle();
        let mut nacks = Vec::new();
        st.take_nacks(&mut nacks);
        assert_eq!(nacks.len(), 500, "every drop must surface despite tiny rings");
        let report = st.flush_and_join();
        assert_eq!(report.translator.rate_limited, 500);
        assert_eq!(report.nacks_pending, 0);
    }

    #[test]
    fn untaken_nacks_are_counted_at_shutdown() {
        use crate::ratelimit::RateLimiterConfig;
        use dta_core::DtaFlags;
        let mut col = CollectorService::new(ServiceConfig::default());
        let mut st = ShardedTranslator::connect(
            ShardedConfig {
                shards: 2,
                translator: TranslatorConfig {
                    rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1.0, burst: 0 }),
                    ..TranslatorConfig::default()
                },
                ..ShardedConfig::default()
            },
            &mut col,
        );
        let flags = DtaFlags { immediate: false, nack_on_drop: true };
        st.ingest_batch(
            0,
            (0..10u32).map(|i| {
                DtaReport::key_write(i, TelemetryKey::from_u64(i as u64), 1, vec![1; 4])
                    .with_flags(flags)
            }),
        );
        st.wait_idle();
        let report = st.flush_and_join();
        assert_eq!(report.nacks_pending, 10, "nobody drained: shutdown must account them");
    }

    #[test]
    fn single_report_ingest_advances_shard_time() {
        use crate::ratelimit::RateLimiterConfig;
        // Direct `ingest` calls must advance the announced clock, or shard
        // rate limiters would never refill for that entry point.
        let mut col = CollectorService::new(ServiceConfig::default());
        let mut st = ShardedTranslator::connect(
            ShardedConfig {
                shards: 1,
                translator: TranslatorConfig {
                    rate_limit: Some(RateLimiterConfig { msgs_per_sec: 1e9, burst: 1 }),
                    ..TranslatorConfig::default()
                },
                ..ShardedConfig::default()
            },
            &mut col,
        );
        // 1 token at t=0; at 1 msg/ns each later report refills the bucket
        // — every report must be admitted because time advances per ingest.
        for i in 0..50u64 {
            st.ingest(i * 10, DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![1; 4]));
            st.wait_idle();
        }
        let report = st.flush_and_join();
        assert_eq!(report.translator.rate_limited, 0, "clock froze for direct ingest");
        assert_eq!(report.executed, 50);
    }

    #[test]
    fn drop_without_flush_joins_workers() {
        let (_col, mut st) = sharded(4);
        st.ingest_batch(0, (0..100u64).map(|i| {
            DtaReport::key_write(0, TelemetryKey::from_u64(i), 1, vec![1; 4])
        }));
        drop(st); // must not hang or leak threads
    }

    #[test]
    fn disabled_services_are_skipped() {
        let mut col = CollectorService::new(ServiceConfig {
            append_lists: 0,
            cms_slots: 0,
            ..ServiceConfig::default()
        });
        let mut st = ShardedTranslator::connect(ShardedConfig::with_shards(2), &mut col);
        st.ingest_batch(
            0,
            [
                DtaReport::key_write(0, TelemetryKey::from_u64(1), 1, vec![1; 4]),
                DtaReport::append(0, 1, vec![2; 4]),
            ],
        );
        st.wait_idle();
        let report = st.flush_and_join();
        assert_eq!(report.translator.no_service, 1, "append should drop cleanly");
        assert_eq!(report.translator.reports_in, 2);
    }
}

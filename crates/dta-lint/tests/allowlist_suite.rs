//! Allowlist mechanics, end-to-end through the real binary: a seeded
//! violation fails `--check` (the CI-gate demonstration the acceptance
//! criteria ask for — proven here, not by breaking main), a justified
//! allowlist entry clears it, a reason-less entry is a hard error, and a
//! stale entry fails `--check` so the allowlist can only shrink honestly.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A throwaway workspace root holding one sim-facing crate with the given
/// `src/lib.rs` content, torn down on drop.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(case: &str, lib_rs: &str) -> Self {
        let root = std::env::temp_dir().join(format!("dta-lint-it-{}-{case}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates/dta-net/src");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("lib.rs"), lib_rs).unwrap();
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, content: &str) {
        fs::write(self.root.join(rel), content).unwrap();
    }

    /// Run `dta-lint --check` against this root; returns (exit code,
    /// stdout+stderr).
    fn check(&self) -> (i32, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_dta-lint"))
            .args(["--check", "--root"])
            .arg(&self.root)
            .output()
            .expect("spawn dta-lint");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().unwrap_or(-1), text)
    }

    fn report_path(&self) -> PathBuf {
        self.root.join("LINT_report.json")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const VIOLATING_LIB: &str = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
const CLEAN_LIB: &str = "pub fn now_ns(clock: u64) -> u64 { clock }\n";

fn assert_contains(haystack: &str, needle: &str) {
    assert!(haystack.contains(needle), "expected `{needle}` in:\n{haystack}");
}

#[test]
fn seeded_violation_fails_check_and_lands_in_report() {
    let ws = TempWorkspace::new("violation", VIOLATING_LIB);
    let (code, out) = ws.check();
    assert_eq!(code, 1, "seeded D1 violation must fail --check:\n{out}");
    assert_contains(&out, "crates/dta-net/src/lib.rs:1: D1:");
    assert_contains(&out, "FAILED");
    // The machine-readable report is written even on failure, with the
    // per-rule counts the CI log summary is built from.
    let report = fs::read_to_string(ws.report_path()).expect("report written on failure");
    assert_contains(&report, "\"schema\": \"dta-lint/report-v1\"");
    assert_contains(&report, "\"allowed\": false");
}

#[test]
fn justified_allow_entry_clears_the_violation() {
    let ws = TempWorkspace::new("allowed", VIOLATING_LIB);
    ws.write(
        "lint.toml",
        "[[allow]]\nrule = \"D1\"\npath = \"crates/dta-net/src/lib.rs\"\n\
         reason = \"integration-test fixture: deliberately wall-clocked\"\n",
    );
    let (code, out) = ws.check();
    assert_eq!(code, 0, "allowlisted violation must pass --check:\n{out}");
    assert_contains(&out, "[allowed: integration-test fixture");
    let report = fs::read_to_string(ws.report_path()).unwrap();
    assert_contains(&report, "\"allowed\": true");
}

#[test]
fn line_pinned_entry_covers_only_its_line() {
    let two_line = "pub fn a() -> std::time::Instant { std::time::Instant::now() }\n\
                    pub fn b() -> std::time::Instant { std::time::Instant::now() }\n";
    let ws = TempWorkspace::new("linepin", two_line);
    ws.write(
        "lint.toml",
        "[[allow]]\nrule = \"D1\"\npath = \"crates/dta-net/src/lib.rs\"\nline = 1\n\
         reason = \"only line 1 is exempt\"\n",
    );
    let (code, out) = ws.check();
    assert_eq!(code, 1, "line 2 is still a violation:\n{out}");
    assert_contains(&out, "lib.rs:2: D1:");
    assert_contains(&out, "lib.rs:1: D1:");
    assert_contains(&out, "[allowed: only line 1 is exempt]");
}

#[test]
fn entry_without_reason_is_a_hard_error() {
    let ws = TempWorkspace::new("noreason", VIOLATING_LIB);
    ws.write(
        "lint.toml",
        "[[allow]]\nrule = \"D1\"\npath = \"crates/dta-net/src/lib.rs\"\n",
    );
    let (code, out) = ws.check();
    assert_eq!(code, 2, "a reason-less entry is a config error, not a diagnostic:\n{out}");
    assert_contains(&out, "missing `reason`");
}

#[test]
fn empty_reason_is_a_hard_error() {
    let ws = TempWorkspace::new("emptyreason", VIOLATING_LIB);
    ws.write(
        "lint.toml",
        "[[allow]]\nrule = \"D1\"\npath = \"crates/dta-net/src/lib.rs\"\nreason = \"\"\n",
    );
    let (code, out) = ws.check();
    assert_eq!(code, 2, "{out}");
    assert_contains(&out, "justification");
}

#[test]
fn stale_entry_fails_check_so_the_allowlist_only_shrinks() {
    let ws = TempWorkspace::new("stale", CLEAN_LIB);
    ws.write(
        "lint.toml",
        "[[allow]]\nrule = \"D1\"\npath = \"crates/dta-net/src/lib.rs\"\n\
         reason = \"this site was fixed but the entry was kept\"\n",
    );
    let (code, out) = ws.check();
    assert_eq!(code, 1, "a stale entry must fail --check:\n{out}");
    assert_contains(&out, "stale allowlist entry");
    assert_contains(&out, "delete the entry");
    let report = fs::read_to_string(ws.report_path()).unwrap();
    assert_contains(&report, "\"stale\": [\n      {\"rule\": \"D1\"");
}

#[test]
fn clean_tree_passes_and_reports_zero() {
    let ws = TempWorkspace::new("clean", CLEAN_LIB);
    let (code, out) = ws.check();
    assert_eq!(code, 0, "{out}");
    assert_contains(&out, "1 files scanned, 0 diagnostics");
}

/// `--skip` disables a rule *and* its entries' staleness checks (a
/// partial run cannot prove an entry dead), while `--only` scopes the run
/// down to one family.
#[test]
fn rule_toggles() {
    let ws = TempWorkspace::new("toggles", VIOLATING_LIB);
    ws.write(
        "lint.toml",
        "[[allow]]\nrule = \"D1\"\npath = \"crates/dta-net/src/lib.rs\"\n\
         reason = \"covers the violation unless D1 is skipped\"\n",
    );
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_dta-lint"))
            .args(["--check", "--root"])
            .arg(&ws.root)
            .args(args)
            .output()
            .unwrap();
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };
    let (code, out) = run(&["--skip", "D1"]);
    assert_eq!(code, 0, "skipping D1 silences both the diagnostic and the entry:\n{out}");
    assert!(!out.contains("D1  wall-clock"), "D1 must not appear in a skipped summary:\n{out}");
    let (code, _) = run(&["--only", "S1"]);
    assert_eq!(code, 0);
    let (code, _) = run(&["--only", "D1"]);
    assert_eq!(code, 0, "the allow entry still applies under --only D1");
    let (code, out) = run(&["--no-allow"]);
    assert_eq!(code, 1, "--no-allow re-exposes the raw violation:\n{out}");
}

/// Fixture subtrees are invisible to a real run: a `tests/fixtures/` file
/// full of violations must not fail the parent workspace.
#[test]
fn fixtures_are_excluded_from_discovery() {
    let ws = TempWorkspace::new("fixtures", CLEAN_LIB);
    let fdir = ws.root.join("crates/dta-net/tests/fixtures");
    fs::create_dir_all(&fdir).unwrap();
    fs::write(fdir.join("bad.rs"), VIOLATING_LIB).unwrap();
    let (code, out) = ws.check();
    assert_eq!(code, 0, "fixture violations leaked into the run:\n{out}");
}

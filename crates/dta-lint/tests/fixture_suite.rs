//! Fixture-driven rule coverage, PR 8 negative-parse pattern: every rule
//! family has positive (triggering) and negative (clean) source snippets
//! under `tests/fixtures/<rule>/`, the expectation table below is pinned
//! **exhaustive** against the fixtures directory (a fixture file the table
//! does not name fails the suite, and vice versa), and the `pos_`/`neg_`
//! naming convention is enforced against the expected counts.

use std::collections::BTreeSet;
use std::path::PathBuf;

use dta_lint::rules::{analyze, FileKind, Rule, SourceFile};

/// (fixture path, crate the snippet pretends to live in, rule family,
/// expected diagnostic count *for that rule*).
///
/// The crate assignments exercise the scoping table: D1 only fires in
/// sim-facing crates, D2 in deterministic crates, D3/D4/S1/C1 everywhere
/// (bench and analysis included).
const EXPECTED: &[(&str, &str, Rule, usize)] = &[
    ("d1/pos_instant.rs", "dta-sim", Rule::D1, 4),
    ("d1/pos_thread_sleep.rs", "dta-net", Rule::D1, 1),
    ("d1/neg_sim_clock.rs", "dta-sim", Rule::D1, 0),
    ("d2/pos_keys_iter.rs", "dta-translator", Rule::D2, 2),
    ("d2/pos_for_in_map.rs", "dta-rdma", Rule::D2, 1),
    ("d2/neg_lookup_and_btree.rs", "dta-translator", Rule::D2, 0),
    ("d3/pos_static_mut.rs", "bench", Rule::D3, 1),
    ("d3/pos_todo_abort.rs", "dta-core", Rule::D3, 3),
    ("d3/neg_cfg_test_todo.rs", "bench", Rule::D3, 0),
    ("d4/pos_thread_rng.rs", "dta-analysis", Rule::D4, 1),
    ("d4/pos_random_state.rs", "dta-baselines", Rule::D4, 4),
    ("d4/neg_seeded.rs", "dta-analysis", Rule::D4, 0),
    ("s1/pos_missing_comment.rs", "dta-rdma", Rule::S1, 1),
    ("s1/pos_wrong_comment.rs", "dta-telemetry", Rule::S1, 2),
    ("s1/neg_safety_comment.rs", "dta-rdma", Rule::S1, 0),
    ("c1/pos_untested_closes.rs", "dta-reporter", Rule::C1, 1),
    ("c1/pos_plain_closes.rs", "dta-translator", Rule::C1, 1),
    ("c1/neg_tested_closes.rs", "dta-reporter", Rule::C1, 0),
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load(rel: &str, crate_dir: &str) -> SourceFile {
    let path = fixtures_dir().join(rel);
    SourceFile {
        path: format!("crates/{crate_dir}/src/{}", rel.rsplit('/').next().unwrap()),
        crate_dir: crate_dir.to_string(),
        kind: FileKind::Analyzed,
        src: std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display())),
    }
}

#[test]
fn table_matches_every_fixture() {
    for (rel, crate_dir, rule, expected) in EXPECTED {
        let diags = analyze(&[load(rel, crate_dir)]);
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == *rule).collect();
        assert_eq!(
            hits.len(),
            *expected,
            "{rel} (as crate {crate_dir}): expected {expected} {rule} diagnostics, got:\n{}",
            hits.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n"),
        );
    }
}

#[test]
fn naming_convention_matches_expectations() {
    for (rel, _, rule, expected) in EXPECTED {
        let file = rel.rsplit('/').next().unwrap();
        let dir = rel.split('/').next().unwrap();
        assert_eq!(
            dir,
            rule.id().to_ascii_lowercase(),
            "{rel}: fixture lives in the wrong rule directory"
        );
        if file.starts_with("pos_") {
            assert!(*expected > 0, "{rel}: positive fixture expects zero diagnostics");
        } else if file.starts_with("neg_") {
            assert_eq!(*expected, 0, "{rel}: negative fixture expects diagnostics");
        } else {
            panic!("{rel}: fixture names must start with pos_ or neg_");
        }
    }
}

#[test]
fn every_rule_family_has_two_positive_and_one_negative() {
    for rule in Rule::ALL {
        let pos = EXPECTED
            .iter()
            .filter(|(rel, _, r, _)| r == &rule && rel.contains("/pos_"))
            .count();
        let neg = EXPECTED
            .iter()
            .filter(|(rel, _, r, _)| r == &rule && rel.contains("/neg_"))
            .count();
        assert!(pos >= 2, "{rule}: only {pos} positive fixtures (need >= 2)");
        assert!(neg >= 1, "{rule}: no negative fixture");
    }
}

/// The exhaustiveness pin: the table names exactly the files on disk.
#[test]
fn table_is_exhaustive_against_fixtures_dir() {
    let mut on_disk = BTreeSet::new();
    for sub in std::fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let sub = sub.unwrap().path();
        if !sub.is_dir() {
            continue;
        }
        let dirname = sub.file_name().unwrap().to_string_lossy().to_string();
        for f in std::fs::read_dir(&sub).unwrap() {
            let f = f.unwrap().path();
            if f.extension().is_some_and(|e| e == "rs") {
                on_disk.insert(format!(
                    "{dirname}/{}",
                    f.file_name().unwrap().to_string_lossy()
                ));
            }
        }
    }
    let in_table: BTreeSet<String> =
        EXPECTED.iter().map(|(rel, ..)| rel.to_string()).collect();
    assert_eq!(
        in_table, on_disk,
        "fixture table and tests/fixtures/ disagree — add the missing side"
    );
}

/// Diagnostics anchor to real positions: `file:line: RULE: message`.
#[test]
fn diagnostics_carry_file_and_line() {
    let diags = analyze(&[load("d1/pos_thread_sleep.rs", "dta-sim")]);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 3);
    let shown = diags[0].to_string();
    assert!(
        shown.starts_with("crates/dta-sim/src/pos_thread_sleep.rs:3: D1:"),
        "bad anchor: {shown}"
    );
}

// D4 positive: RandomState is the seeded-random hasher behind HashMap,
// and rand::random draws from the ambient thread RNG.
use std::collections::hash_map::RandomState;

pub fn hasher() -> RandomState {
    RandomState::new()
}

pub fn coin() -> bool {
    rand::random()
}

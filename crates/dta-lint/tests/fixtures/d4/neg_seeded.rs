// D4 negative: a seeded, owned RNG threaded from the scenario seed, with
// ambient randomness confined to #[cfg(test)].
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_ambient_randomness() {
        let _ = rand::thread_rng();
    }
}

// D4 positive: ambient, unseeded randomness.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

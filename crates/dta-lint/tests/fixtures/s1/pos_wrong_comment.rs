// S1 positive: a comment that narrates the code instead of stating the
// soundness invariant does not count.
pub struct Cell(*mut u8);

// This makes the type shareable across threads.
unsafe impl Sync for Cell {}

pub fn read(p: *const u8) -> u8 {
    // Dereference the pointer here.
    unsafe { *p }
}

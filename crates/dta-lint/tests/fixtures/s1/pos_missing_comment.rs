// S1 positive: an unsafe block with no SAFETY comment at all.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}

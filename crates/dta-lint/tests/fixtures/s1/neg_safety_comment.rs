// S1 negative: every unsafe site states its invariant — one `// SAFETY:`
// covers a run of consecutive `unsafe impl`s, a statement-level comment
// covers a wrapped expression, and `# Safety` docs cover an unsafe fn.
pub struct Cell(*mut u8);

// SAFETY: the pointer is only dereferenced while the owner's lock is
// held, so no two threads alias it mutably.
unsafe impl Sync for Cell {}
unsafe impl Send for Cell {}

pub fn read(p: *const u8) -> u8 {
    // SAFETY: callers pass pointers derived from a live &u8.
    let v =
        unsafe { *p };
    v
}

/// Reads without a null check.
///
/// # Safety
/// `p` must be non-null, aligned, and live for the read.
pub unsafe fn read_unchecked(p: *const u8) -> u8 {
    // SAFETY: forwarded to the caller's contract above.
    unsafe { *p }
}

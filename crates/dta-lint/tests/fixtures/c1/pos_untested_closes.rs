// C1 positive: a Stats struct with a closure identity no test checks —
// silent accounting drift waiting to happen.
#[derive(Default)]
pub struct MigrationStats {
    pub staged: u64,
    pub replayed: u64,
    pub abandoned: u64,
}

impl MigrationStats {
    pub fn ledger_closes(&self) -> bool {
        self.staged == self.replayed + self.abandoned
    }
}

// C1 positive: the bare `closes()` spelling counts as a closure identity
// too (the workspace has both namings).
pub struct FenceStats {
    pub recorded: u64,
    pub released: u64,
}

impl FenceStats {
    pub fn closes(&self) -> bool {
        self.recorded == self.released
    }
}

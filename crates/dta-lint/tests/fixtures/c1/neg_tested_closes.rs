// C1 negative: the closure identity is pinned by a test, and a
// non-Stats type may name a method `closes` without being accounting.
pub struct WindowStats {
    pub opened: u64,
    pub drained: u64,
}

impl WindowStats {
    pub fn window_closes(&self) -> bool {
        self.opened == self.drained
    }
}

pub struct Door;

impl Door {
    pub fn closes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::WindowStats;

    #[test]
    fn closure_identity_holds() {
        assert!(WindowStats { opened: 3, drained: 3 }.window_closes());
        assert!(!WindowStats { opened: 3, drained: 2 }.window_closes());
    }
}

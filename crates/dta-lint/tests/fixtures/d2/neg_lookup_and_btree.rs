// D2 negative: hash-collection construction and point lookup are fine,
// and BTree containers iterate in key order.
use std::collections::{BTreeMap, HashMap, HashSet};

pub struct Index {
    by_key: HashMap<u64, u32>,
    seen: HashSet<u64>,
    ordered: BTreeMap<u64, u32>,
}

impl Index {
    pub fn lookup(&self, k: u64) -> Option<u32> {
        self.by_key.get(&k).copied()
    }

    pub fn note(&mut self, k: u64) -> bool {
        self.seen.insert(k) && self.seen.contains(&k)
    }

    pub fn in_order(&self) -> Vec<u32> {
        self.ordered.values().copied().collect()
    }
}

// D2 positive: `for … in &set` iterates in seeded-random bucket order.
use std::collections::HashSet;

pub fn sum(used: &HashSet<u64>) -> u64 {
    let mut total = 0;
    for s in used {
        total += s;
    }
    total
}

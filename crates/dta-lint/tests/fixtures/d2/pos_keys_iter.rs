// D2 positive: iterating a hash map's keys feeds seeded-random order
// into whatever consumes the result.
use std::collections::HashMap;

pub struct Index {
    by_key: HashMap<u64, u32>,
}

impl Index {
    pub fn all_keys(&self) -> Vec<u64> {
        self.by_key.keys().copied().collect()
    }

    pub fn drop_everything(&mut self) {
        for (_k, _v) in self.by_key.drain() {}
    }
}

// D3 positive: unfinished code and destructor-skipping aborts.
pub fn not_done() -> u32 {
    todo!()
}

pub fn also_not_done() -> u32 {
    unimplemented!()
}

pub fn bail() {
    std::process::abort();
}

// D3 negative: a scaffolding todo!() inside #[cfg(test)] is exempt, and
// `static` without `mut` is ordinary.
static LIMIT: u64 = 1024;

pub fn limit() -> u64 {
    LIMIT
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn scaffolding() {
        todo!()
    }
}

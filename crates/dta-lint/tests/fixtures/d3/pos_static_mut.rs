// D3 positive: unsynchronized global state.
static mut COUNTER: u64 = 0;

pub fn bump() {
    unsafe {
        COUNTER += 1;
    }
}

// D1 positive: wall-clock types in a simulation-facing crate.
use std::time::{Instant, SystemTime};

pub fn elapsed_ns() -> u64 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_nanos() as u64
}

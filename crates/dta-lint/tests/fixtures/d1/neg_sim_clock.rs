// D1 negative: simulated time only; wall-clock confined to #[cfg(test)],
// where the rule does not apply.
pub struct Clock {
    now_ns: u64,
}

impl Clock {
    pub fn advance(&mut self, dt: u64) {
        self.now_ns += dt;
    }

    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}

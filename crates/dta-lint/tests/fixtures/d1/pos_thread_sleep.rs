// D1 positive: blocking real time desynchronizes the simulated clock.
pub fn wait_a_bit() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

//! Human summary + machine-readable `LINT_report.json`.
//!
//! The JSON writer is hand-rolled (the `BENCH_translator.json` writer in
//! `crates/bench/src/perf.rs` is the precedent — no serde_json in this
//! build environment). Key order is fixed and diagnostics arrive sorted,
//! so the report is byte-stable for a given tree: diffable in CI
//! artifacts.

use std::collections::BTreeMap;

use crate::config::AllowEntry;
use crate::rules::{Diagnostic, Rule};

/// One diagnostic after allowlist resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    pub diag: Diagnostic,
    /// The justification from the matching allowlist entry, when covered.
    pub allowed_reason: Option<String>,
}

impl Finding {
    pub fn allowed(&self) -> bool {
        self.allowed_reason.is_some()
    }
}

/// The full result of a lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Rules that actually ran (after `--skip`/`--only`).
    pub enabled: Vec<Rule>,
    pub files_scanned: usize,
    /// All findings, sorted by file/line/rule.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing: the site was fixed but the
    /// exemption was kept. Fails `--check`.
    pub stale: Vec<AllowEntry>,
    pub allow_entries: usize,
}

impl Outcome {
    /// Findings not covered by the allowlist — what `--check` fails on.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed())
    }

    /// `(violations, allowed)` per enabled rule, zero-filled so the
    /// summary always names every rule that ran.
    pub fn per_rule(&self) -> BTreeMap<Rule, (usize, usize)> {
        let mut m: BTreeMap<Rule, (usize, usize)> =
            self.enabled.iter().map(|r| (*r, (0, 0))).collect();
        for f in &self.findings {
            let e = m.entry(f.diag.rule).or_insert((0, 0));
            if f.allowed() {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        m
    }

    /// The per-rule violation table printed to the CI log, so a regression
    /// is diagnosable without downloading the report artifact.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dta-lint: {} files scanned, {} diagnostics ({} allowed), {} stale allowlist entries\n",
            self.files_scanned,
            self.findings.len(),
            self.findings.iter().filter(|f| f.allowed()).count(),
            self.stale.len(),
        ));
        for (rule, (viol, allowed)) in self.per_rule() {
            out.push_str(&format!(
                "  {}  {:<44} {:>3} violation{} ({} allowed)\n",
                rule.id(),
                rule.title(),
                viol,
                if viol == 1 { "" } else { "s" },
                allowed,
            ));
        }
        out
    }

    /// Render `LINT_report.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"dta-lint/report-v1\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"rules_enabled\": [{}],\n",
            self.enabled
                .iter()
                .map(|r| format!("\"{}\"", r.id()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"rules\": {\n");
        let per_rule = self.per_rule();
        let mut first = true;
        for (rule, (viol, allowed)) in &per_rule {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "    \"{}\": {{\"title\": {}, \"violations\": {}, \"allowed\": {}}}",
                rule.id(),
                json_str(rule.title()),
                viol,
                allowed
            ));
        }
        s.push_str("\n  },\n");
        s.push_str("  \"diagnostics\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"allowed\": {}, \
                 \"reason\": {}, \"message\": {}}}{}\n",
                f.diag.rule.id(),
                json_str(&f.diag.file),
                f.diag.line,
                f.allowed(),
                f.allowed_reason.as_deref().map_or("null".to_string(), json_str_owned),
                json_str(&f.diag.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"allowlist\": {\n");
        s.push_str(&format!("    \"entries\": {},\n", self.allow_entries));
        s.push_str("    \"stale\": [\n");
        for (i, e) in self.stale.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"rule\": \"{}\", \"path\": {}, \"line\": {}, \"decl_line\": {}}}{}\n",
                e.rule.id(),
                json_str(&e.path),
                e.line.map_or("null".to_string(), |l| l.to_string()),
                e.decl_line,
                if i + 1 < self.stale.len() { "," } else { "" }
            ));
        }
        s.push_str("    ]\n  }\n}\n");
        s
    }
}

/// Minimal JSON string escaping — paths and messages are ASCII by
/// construction, but escape the structural characters anyway.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_owned(s: &str) -> String {
    json_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_names_every_enabled_rule_even_at_zero() {
        let o = Outcome {
            enabled: Rule::ALL.to_vec(),
            files_scanned: 3,
            findings: vec![],
            stale: vec![],
            allow_entries: 0,
        };
        let s = o.summary();
        for r in Rule::ALL {
            assert!(s.contains(r.id()), "summary missing {r}: {s}");
        }
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
    }
}
